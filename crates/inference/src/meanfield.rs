//! Variational (mean-field) marginal approximation.
//!
//! One of the two materialization strategies for incremental inference
//! (§4.2: "variational-based materialization (inspired by techniques for
//! approximating graphical models \[49\])"). The materialized artifact is the
//! vector of per-variable approximate marginals `q(v)`; on a delta, only the
//! affected subgraph is relaxed (residual-style worklist), which is what
//! makes the strategy attractive when changes are few and correlations are
//! sparse.

use deepdive_factorgraph::CompiledGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Options for mean-field relaxation.
#[derive(Debug, Clone)]
pub struct MeanFieldOptions {
    /// Convergence threshold on per-variable marginal change.
    pub tolerance: f64,
    /// Hard cap on variable updates (defends against oscillation).
    pub max_updates: usize,
    /// Factor arity above which expectations are Monte-Carlo estimated
    /// instead of enumerated.
    pub enumeration_cap: usize,
    pub seed: u64,
}

impl Default for MeanFieldOptions {
    fn default() -> Self {
        MeanFieldOptions {
            tolerance: 1e-4,
            max_updates: 1_000_000,
            enumeration_cap: 12,
            seed: 7,
        }
    }
}

/// Mean-field state: `q[v] = q(v = 1)`.
#[derive(Debug, Clone)]
pub struct MeanField {
    pub q: Vec<f64>,
    /// Variable updates performed in the last relaxation (effort metric).
    pub last_updates: usize,
}

impl MeanField {
    /// Fresh state: evidence clamped, everything else at 0.5.
    pub fn new(graph: &CompiledGraph) -> Self {
        let q = (0..graph.num_variables)
            .map(|v| {
                if graph.is_evidence[v] {
                    if graph.evidence_value[v] {
                        1.0
                    } else {
                        0.0
                    }
                } else {
                    0.5
                }
            })
            .collect();
        MeanField { q, last_updates: 0 }
    }

    /// Full relaxation: worklist seeded with every free variable.
    pub fn materialize(
        graph: &CompiledGraph,
        weights: &[f64],
        opts: &MeanFieldOptions,
    ) -> MeanField {
        let mut mf = MeanField::new(graph);
        let all: Vec<usize> = (0..graph.num_variables)
            .filter(|&v| !graph.is_evidence[v])
            .collect();
        mf.relax(graph, weights, &all, opts);
        mf
    }

    /// Incremental relaxation: worklist seeded with `changed` variables;
    /// updates propagate outward only while marginals keep moving.
    pub fn relax(
        &mut self,
        graph: &CompiledGraph,
        weights: &[f64],
        changed: &[usize],
        opts: &MeanFieldOptions,
    ) {
        // Re-clamp evidence (a delta may have changed labels).
        for v in 0..graph.num_variables {
            if graph.is_evidence[v] {
                self.q[v] = if graph.evidence_value[v] { 1.0 } else { 0.0 };
            }
        }
        let mut rng = StdRng::seed_from_u64(opts.seed);
        let mut in_queue = vec![false; graph.num_variables];
        let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        for &v in changed {
            if !graph.is_evidence[v] && !in_queue[v] {
                in_queue[v] = true;
                queue.push_back(v);
            }
            // Neighbors of changed evidence variables must react too.
            if graph.is_evidence[v] {
                for &f in graph.factors_of(v) {
                    for idx in graph.args_of(f as usize) {
                        let u = graph.arg_vars[idx] as usize;
                        if !graph.is_evidence[u] && !in_queue[u] {
                            in_queue[u] = true;
                            queue.push_back(u);
                        }
                    }
                }
            }
        }

        let mut updates = 0usize;
        while let Some(v) = queue.pop_front() {
            in_queue[v] = false;
            if updates >= opts.max_updates {
                break;
            }
            updates += 1;
            let new_q = self.update_value(graph, weights, v, opts, &mut rng);
            let delta = (new_q - self.q[v]).abs();
            self.q[v] = new_q;
            if delta > opts.tolerance {
                // Push factor neighbors.
                for &f in graph.factors_of(v) {
                    for idx in graph.args_of(f as usize) {
                        let u = graph.arg_vars[idx] as usize;
                        if u != v && !graph.is_evidence[u] && !in_queue[u] {
                            in_queue[u] = true;
                            queue.push_back(u);
                        }
                    }
                }
            }
        }
        self.last_updates = updates;
    }

    /// One mean-field coordinate update:
    /// `q(v) = σ( Σ_f w_f ( E_q[φ_f | v=1] − E_q[φ_f | v=0] ) )`.
    fn update_value(
        &self,
        graph: &CompiledGraph,
        weights: &[f64],
        v: usize,
        opts: &MeanFieldOptions,
        rng: &mut StdRng,
    ) -> f64 {
        let mut logit = 0.0;
        for &f in graph.factors_of(v) {
            let f = f as usize;
            let w = weights[graph.factor_weight[f] as usize];
            if w == 0.0 {
                continue;
            }
            let (e1, e0) = self.expected_potentials(graph, f, v, opts, rng);
            logit += w * (e1 - e0);
        }
        1.0 / (1.0 + (-logit).exp())
    }

    /// `(E[φ_f | v=1], E[φ_f | v=0])` under the product distribution q.
    fn expected_potentials(
        &self,
        graph: &CompiledGraph,
        f: usize,
        v: usize,
        opts: &MeanFieldOptions,
        rng: &mut StdRng,
    ) -> (f64, f64) {
        let range = graph.args_of(f);
        let base = range.start;
        let n = range.end - range.start;
        let others: Vec<usize> = (0..n)
            .filter(|&i| graph.arg_vars[base + i] as usize != v)
            .collect();

        let eval = |assign: &dyn Fn(usize) -> bool, forced: bool| {
            graph.factor_potential(f, |u| if u == v { forced } else { assign(u) })
        };

        if others.len() <= opts.enumeration_cap {
            // Exact enumeration over the other arguments.
            let mut e1 = 0.0;
            let mut e0 = 0.0;
            let m = others.len();
            for bits in 0..(1u64 << m) {
                let mut prob = 1.0;
                let mut vals: Vec<(usize, bool)> = Vec::with_capacity(m);
                for (j, &ai) in others.iter().enumerate() {
                    let u = graph.arg_vars[base + ai] as usize;
                    let val = (bits >> j) & 1 == 1;
                    prob *= if val { self.q[u] } else { 1.0 - self.q[u] };
                    vals.push((u, val));
                }
                if prob == 0.0 {
                    continue;
                }
                let assign = |u: usize| {
                    vals.iter()
                        .find(|(w, _)| *w == u)
                        .map(|(_, b)| *b)
                        .unwrap_or(false)
                };
                e1 += prob * eval(&assign, true);
                e0 += prob * eval(&assign, false);
            }
            (e1, e0)
        } else {
            // Monte Carlo under q.
            const DRAWS: usize = 64;
            let mut e1 = 0.0;
            let mut e0 = 0.0;
            for _ in 0..DRAWS {
                let vals: Vec<(usize, bool)> = others
                    .iter()
                    .map(|&ai| {
                        let u = graph.arg_vars[base + ai] as usize;
                        (u, rng.gen::<f64>() < self.q[u])
                    })
                    .collect();
                let assign = |u: usize| {
                    vals.iter()
                        .find(|(w, _)| *w == u)
                        .map(|(_, b)| *b)
                        .unwrap_or(false)
                };
                e1 += eval(&assign, true);
                e0 += eval(&assign, false);
            }
            (e1 / DRAWS as f64, e0 / DRAWS as f64)
        }
    }

    pub fn marginals(&self) -> &[f64] {
        &self.q
    }
}

#[allow(clippy::needless_range_loop)] // parallel arrays indexed by var id
#[cfg(test)]
mod tests {
    use super::*;
    use deepdive_factorgraph::{exact_marginals, FactorArg, FactorFunction, FactorGraph, Variable};

    #[test]
    fn single_prior_is_exact() {
        let mut g = FactorGraph::new();
        let v = g.add_variable(Variable::query());
        let w = g.weights.tied("p", 0.8);
        g.add_factor(FactorFunction::IsTrue, vec![FactorArg::pos(v)], w);
        let c = g.compile();
        let mf = MeanField::materialize(&c, &g.weights.values(), &MeanFieldOptions::default());
        let exact = exact_marginals(&c, &g.weights.values());
        assert!(
            (mf.q[0] - exact[0]).abs() < 1e-6,
            "{} vs {}",
            mf.q[0],
            exact[0]
        );
    }

    #[test]
    fn chain_is_approximately_right() {
        let mut g = FactorGraph::new();
        let vs: Vec<_> = (0..5).map(|_| g.add_variable(Variable::query())).collect();
        let wp = g.weights.tied("p", 0.6);
        let ws = g.weights.tied("s", 0.8);
        g.add_factor(FactorFunction::IsTrue, vec![FactorArg::pos(vs[0])], wp);
        for i in 0..4 {
            g.add_factor(
                FactorFunction::Imply,
                vec![FactorArg::pos(vs[i]), FactorArg::pos(vs[i + 1])],
                ws,
            );
        }
        let c = g.compile();
        let mf = MeanField::materialize(&c, &g.weights.values(), &MeanFieldOptions::default());
        let exact = exact_marginals(&c, &g.weights.values());
        for v in 0..5 {
            assert!(
                (mf.q[v] - exact[v]).abs() < 0.12,
                "v{v}: mf {} vs exact {}",
                mf.q[v],
                exact[v]
            );
        }
    }

    #[test]
    fn evidence_is_clamped_and_propagates() {
        let mut g = FactorGraph::new();
        let e = g.add_variable(Variable::evidence(true));
        let q = g.add_variable(Variable::query());
        let w = g.weights.tied("eq", 2.0);
        g.add_factor(
            FactorFunction::Equal,
            vec![FactorArg::pos(e), FactorArg::pos(q)],
            w,
        );
        let c = g.compile();
        let mf = MeanField::materialize(&c, &g.weights.values(), &MeanFieldOptions::default());
        assert_eq!(mf.q[0], 1.0);
        assert!(mf.q[1] > 0.9);
    }

    #[test]
    fn incremental_relax_touches_only_affected_region() {
        // Two disconnected chains; change one, the other must not be updated.
        let mut g = FactorGraph::new();
        let vs: Vec<_> = (0..8).map(|_| g.add_variable(Variable::query())).collect();
        let w = g.weights.tied("s", 1.0);
        for i in 0..3 {
            g.add_factor(
                FactorFunction::Imply,
                vec![FactorArg::pos(vs[i]), FactorArg::pos(vs[i + 1])],
                w,
            );
            g.add_factor(
                FactorFunction::Imply,
                vec![FactorArg::pos(vs[4 + i]), FactorArg::pos(vs[4 + i + 1])],
                w,
            );
        }
        let c = g.compile();
        let opts = MeanFieldOptions::default();
        let mut mf = MeanField::materialize(&c, &g.weights.values(), &opts);
        let full_updates = mf.last_updates;
        // Incremental: poke only variable 0.
        mf.relax(&c, &g.weights.values(), &[0], &opts);
        assert!(
            mf.last_updates < full_updates,
            "incremental ({}) should do less work than full ({})",
            mf.last_updates,
            full_updates
        );
    }

    #[test]
    fn incremental_tracks_evidence_change() {
        let mut g = FactorGraph::new();
        let a = g.add_variable(Variable::query());
        let b = g.add_variable(Variable::query());
        let w = g.weights.tied("eq", 1.5);
        g.add_factor(
            FactorFunction::Equal,
            vec![FactorArg::pos(a), FactorArg::pos(b)],
            w,
        );
        let c = g.compile();
        let opts = MeanFieldOptions::default();
        let mut mf = MeanField::materialize(&c, &g.weights.values(), &opts);
        assert!((mf.q[1] - 0.5).abs() < 0.05);
        // Re-compile with a now evidence=true.
        let mut g2 = g.clone();
        g2.variables[0] = Variable::evidence(true);
        let c2 = g2.compile();
        mf.relax(&c2, &g2.weights.values(), &[0], &opts);
        assert_eq!(mf.q[0], 1.0);
        assert!(mf.q[1] > 0.8, "got {}", mf.q[1]);
    }
}
