//! Sampling-based materialization for incremental inference.
//!
//! §4.2: "sampling-based materialization (inspired by sampling-based
//! probabilistic databases such as MCDB \[22\])". The materialized artifact is
//! a set of stored possible worlds; on a delta, each stored world is
//! warm-started and only the *affected region* (changed variables plus an
//! r-hop factor-graph neighborhood) is re-sampled, so the cost scales with
//! the size of the change, not the graph.

use deepdive_factorgraph::CompiledGraph;
use deepdive_sampler::{sigmoid, GibbsOptions, GibbsSampler, Marginals};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Options for sampling materialization.
#[derive(Debug, Clone)]
pub struct SamplingMatOptions {
    /// Stored worlds.
    pub num_worlds: usize,
    /// Full-inference options used at materialization time.
    pub gibbs: GibbsOptions,
    /// Neighborhood radius re-sampled around changed variables.
    pub radius: usize,
    /// Sweeps over the affected region per stored world on a delta.
    pub delta_sweeps: usize,
    pub seed: u64,
}

impl Default for SamplingMatOptions {
    fn default() -> Self {
        SamplingMatOptions {
            num_worlds: 16,
            gibbs: GibbsOptions::default(),
            radius: 2,
            delta_sweeps: 20,
            seed: 0x5A11,
        }
    }
}

/// Stored possible worlds + the marginal statistics they imply.
pub struct SamplingMaterialization {
    pub worlds: Vec<Vec<bool>>,
    /// Marginals of the last (full or incremental) inference.
    pub marginals: Vec<f64>,
    /// Variable updates performed in the last operation (effort metric).
    pub last_updates: usize,
}

impl SamplingMaterialization {
    /// Full inference + world storage.
    pub fn materialize(
        graph: &CompiledGraph,
        weights: &[f64],
        opts: &SamplingMatOptions,
    ) -> SamplingMaterialization {
        let mut worlds = Vec::with_capacity(opts.num_worlds);
        let mut pooled = Marginals::new(graph.num_variables);
        let mut updates = 0usize;
        for k in 0..opts.num_worlds {
            let mut sampler = GibbsSampler::new(graph, opts.seed ^ (k as u64), true);
            let chain_opts = GibbsOptions {
                burn_in: opts.gibbs.burn_in,
                samples: opts.gibbs.samples / opts.num_worlds.max(1).max(1),
                seed: opts.seed ^ (k as u64) << 8,
                clamp_evidence: true,
                deadline: opts.gibbs.deadline,
            };
            let m = sampler.run(weights, &chain_opts);
            updates += (chain_opts.burn_in + chain_opts.samples) * graph.num_variables;
            // The stored world: one more sweep's final state.
            let mut world = deepdive_factorgraph::initial_world(graph);
            let mut rng = StdRng::seed_from_u64(opts.seed ^ ((k as u64) << 16));
            for (v, w) in world.iter_mut().enumerate() {
                if !graph.is_evidence[v] {
                    *w = rng.gen::<f64>() < m.probability(v);
                }
            }
            pooled.merge(&m);
            worlds.push(world);
        }
        let marginals = pooled.probabilities();
        SamplingMaterialization {
            worlds,
            marginals,
            last_updates: updates,
        }
    }

    /// The r-hop factor neighborhood of the changed variables.
    pub fn affected_region(graph: &CompiledGraph, changed: &[usize], radius: usize) -> Vec<usize> {
        let mut in_region = vec![false; graph.num_variables];
        let mut frontier: Vec<usize> = Vec::new();
        for &v in changed {
            if v < graph.num_variables && !in_region[v] {
                in_region[v] = true;
                frontier.push(v);
            }
        }
        for _ in 0..radius {
            let mut next = Vec::new();
            for &v in &frontier {
                for &f in graph.factors_of(v) {
                    for idx in graph.args_of(f as usize) {
                        let u = graph.arg_vars[idx] as usize;
                        if !in_region[u] {
                            in_region[u] = true;
                            next.push(u);
                        }
                    }
                }
            }
            frontier = next;
        }
        (0..graph.num_variables).filter(|&v| in_region[v]).collect()
    }

    /// Incremental update: re-sample only the affected region in every stored
    /// world, then refresh marginals for that region from the resampled
    /// statistics (unaffected variables keep their materialized marginals).
    pub fn update(
        &mut self,
        graph: &CompiledGraph,
        weights: &[f64],
        changed: &[usize],
        opts: &SamplingMatOptions,
    ) -> &[f64] {
        // Graph may have grown: extend stored worlds and marginals.
        for w in &mut self.worlds {
            while w.len() < graph.num_variables {
                w.push(false);
            }
        }
        while self.marginals.len() < graph.num_variables {
            self.marginals.push(0.5);
        }

        let region = Self::affected_region(graph, changed, opts.radius);
        let mut true_counts = vec![0u64; region.len()];
        let mut samples = 0u64;
        let mut updates = 0usize;
        for (k, world) in self.worlds.iter_mut().enumerate() {
            let mut rng = StdRng::seed_from_u64(opts.seed ^ 0xABCD ^ (k as u64));
            // Re-clamp evidence (labels may have changed).
            for &v in &region {
                if graph.is_evidence[v] {
                    world[v] = graph.evidence_value[v];
                }
            }
            for sweep in 0..opts.delta_sweeps {
                for &v in &region {
                    if graph.is_evidence[v] {
                        continue;
                    }
                    let logit = graph.conditional_logit(v, weights, |i| world[i]);
                    world[v] = rng.gen::<f64>() < sigmoid(logit);
                    updates += 1;
                }
                // Second half of the sweeps counts toward statistics.
                if sweep >= opts.delta_sweeps / 2 {
                    for (o, &v) in region.iter().enumerate() {
                        true_counts[o] += world[v] as u64;
                    }
                    samples += 1;
                }
            }
        }
        if samples > 0 {
            for (o, &v) in region.iter().enumerate() {
                self.marginals[v] = true_counts[o] as f64 / samples as f64;
            }
        }
        self.last_updates = updates;
        &self.marginals
    }
}

#[allow(clippy::needless_range_loop)] // parallel arrays indexed by var id
#[cfg(test)]
mod tests {
    use super::*;
    use deepdive_factorgraph::{exact_marginals, FactorArg, FactorFunction, FactorGraph, Variable};

    fn chain(n: usize, step_w: f64) -> FactorGraph {
        let mut g = FactorGraph::new();
        let vs: Vec<_> = (0..n).map(|_| g.add_variable(Variable::query())).collect();
        let wp = g.weights.tied("p", 0.6);
        let ws = g.weights.tied("s", step_w);
        g.add_factor(FactorFunction::IsTrue, vec![FactorArg::pos(vs[0])], wp);
        for i in 0..n - 1 {
            g.add_factor(
                FactorFunction::Imply,
                vec![FactorArg::pos(vs[i]), FactorArg::pos(vs[i + 1])],
                ws,
            );
        }
        g
    }

    #[test]
    fn materialized_marginals_match_exact() {
        let g = chain(5, 0.9);
        let c = g.compile();
        let opts = SamplingMatOptions {
            num_worlds: 8,
            gibbs: GibbsOptions {
                burn_in: 200,
                samples: 16_000,
                seed: 1,
                clamp_evidence: true,
                deadline: None,
            },
            ..Default::default()
        };
        let mat = SamplingMaterialization::materialize(&c, &g.weights.values(), &opts);
        let exact = exact_marginals(&c, &g.weights.values());
        for v in 0..5 {
            assert!(
                (mat.marginals[v] - exact[v]).abs() < 0.05,
                "v{v}: {} vs {}",
                mat.marginals[v],
                exact[v]
            );
        }
    }

    #[test]
    fn affected_region_respects_radius() {
        let g = chain(10, 1.0);
        let c = g.compile();
        let r0 = SamplingMaterialization::affected_region(&c, &[5], 0);
        assert_eq!(r0, vec![5]);
        let r1 = SamplingMaterialization::affected_region(&c, &[5], 1);
        assert_eq!(r1, vec![4, 5, 6]);
        let r2 = SamplingMaterialization::affected_region(&c, &[5], 2);
        assert_eq!(r2, vec![3, 4, 5, 6, 7]);
    }

    #[test]
    fn incremental_update_tracks_new_evidence() {
        let g = chain(6, 1.2);
        let c = g.compile();
        let opts = SamplingMatOptions {
            num_worlds: 12,
            gibbs: GibbsOptions {
                burn_in: 100,
                samples: 6_000,
                seed: 3,
                clamp_evidence: true,
                deadline: None,
            },
            radius: 6,
            delta_sweeps: 60,
            ..Default::default()
        };
        let mut mat = SamplingMaterialization::materialize(&c, &g.weights.values(), &opts);
        // Clamp v0 true as evidence and update incrementally.
        let mut g2 = g.clone();
        g2.variables[0] = Variable::evidence(true);
        let c2 = g2.compile();
        let exact = exact_marginals(&c2, &g2.weights.values());
        let marg = mat.update(&c2, &g2.weights.values(), &[0], &opts).to_vec();
        for v in 0..6 {
            assert!(
                (marg[v] - exact[v]).abs() < 0.1,
                "v{v}: {} vs {}",
                marg[v],
                exact[v]
            );
        }
    }

    #[test]
    fn incremental_work_scales_with_region_not_graph() {
        let g = chain(200, 0.8);
        let c = g.compile();
        let opts = SamplingMatOptions {
            num_worlds: 4,
            gibbs: GibbsOptions {
                burn_in: 20,
                samples: 200,
                seed: 3,
                clamp_evidence: true,
                deadline: None,
            },
            radius: 2,
            delta_sweeps: 10,
            ..Default::default()
        };
        let mut mat = SamplingMaterialization::materialize(&c, &g.weights.values(), &opts);
        let full = mat.last_updates;
        mat.update(&c, &g.weights.values(), &[100], &opts);
        assert!(
            mat.last_updates * 10 < full,
            "delta updates {} should be far below full {}",
            mat.last_updates,
            full
        );
    }
}
