//! Property-based tests for the DimmWitted engine: sampler estimates must
//! converge to the exact marginals on random small graphs, learning must be
//! deterministic and respect fixed weights.

// Indexing parallel arrays by the same variable id is clearer than zip.
#![allow(clippy::needless_range_loop)]

use deepdive_factorgraph::{exact_marginals, FactorArg, FactorFunction, FactorGraph, Variable};
use deepdive_sampler::{gibbs_marginals, learn_weights, GibbsOptions, LearnOptions};
use proptest::prelude::*;

/// Random small graph with bounded weights (mixing stays fast).
fn graph_strategy() -> impl Strategy<Value = FactorGraph> {
    let nv = 2usize..6;
    nv.prop_flat_map(|nv| {
        let factor = (
            prop_oneof![
                Just(FactorFunction::IsTrue),
                Just(FactorFunction::Imply),
                Just(FactorFunction::Or),
                Just(FactorFunction::Equal),
            ],
            proptest::collection::vec((0..nv, any::<bool>()), 1..3),
            -1.2f64..1.2,
        );
        (proptest::collection::vec(factor, 1..8), Just(nv))
    })
    .prop_map(|(factors, nv)| {
        let mut g = FactorGraph::new();
        let vars: Vec<_> = (0..nv).map(|_| g.add_variable(Variable::query())).collect();
        for (k, (function, args, weight)) in factors.into_iter().enumerate() {
            let args: Vec<FactorArg> = args
                .into_iter()
                .map(|(v, pos)| FactorArg {
                    variable: vars[v],
                    positive: pos,
                })
                .collect();
            let w = g.weights.tied(format!("w{k}"), weight);
            g.add_factor(function, args, w);
        }
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Gibbs estimates converge to the exact marginals (loose tolerance,
    /// bounded weights keep chains fast-mixing).
    #[test]
    fn gibbs_matches_exact_enumeration(g in graph_strategy()) {
        let c = g.compile();
        let weights = g.weights.values();
        let exact = exact_marginals(&c, &weights);
        let est = gibbs_marginals(
            &c,
            &weights,
            &GibbsOptions { burn_in: 400, samples: 12_000, seed: 11, ..Default::default() },
        );
        for v in 0..c.num_variables {
            prop_assert!(
                (est.probability(v) - exact[v]).abs() < 0.06,
                "v{}: gibbs {} vs exact {}",
                v, est.probability(v), exact[v]
            );
        }
    }

    /// Same seed ⇒ identical marginal counts (bit-for-bit determinism).
    #[test]
    fn sampler_is_deterministic(g in graph_strategy(), seed in any::<u64>()) {
        let c = g.compile();
        let weights = g.weights.values();
        let opts = GibbsOptions { burn_in: 20, samples: 100, seed, ..Default::default() };
        let a = gibbs_marginals(&c, &weights, &opts);
        let b = gibbs_marginals(&c, &weights, &opts);
        prop_assert_eq!(a.true_counts, b.true_counts);
    }

    /// Learning is deterministic, bounded under ℓ2, and never touches fixed
    /// weights.
    #[test]
    fn learning_is_deterministic_and_respects_fixed(g in graph_strategy()) {
        // Clamp half the variables as evidence so there is a signal.
        let mut g = g;
        let n = g.variables.len();
        for (i, v) in g.variables.iter_mut().enumerate() {
            if i % 2 == 0 {
                *v = Variable::evidence(i % 4 == 0);
            }
        }
        let fixed = g.weights.fixed("hard", 3.0);
        let anchor = g.add_variable(Variable::query());
        g.add_factor(FactorFunction::IsTrue, vec![FactorArg::pos(anchor)], fixed);
        let _ = n;
        let c = g.compile();
        let opts = LearnOptions { epochs: 30, l2: 0.05, seed: 7, ..Default::default() };

        let mut s1 = g.weights.clone();
        learn_weights(&c, &mut s1, &opts);
        let mut s2 = g.weights.clone();
        learn_weights(&c, &mut s2, &opts);
        prop_assert_eq!(s1.values(), s2.values(), "learning must be deterministic");
        prop_assert_eq!(s1.value(fixed), 3.0, "fixed weight moved");
        for v in s1.values() {
            prop_assert!(v.abs() < 50.0, "weight diverged: {}", v);
        }
    }
}
