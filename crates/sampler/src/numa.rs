//! NUMA topology simulation and NUMA-aware parallel Gibbs (§4.2).
//!
//! The paper's DimmWitted result is architectural: on a multi-socket NUMA
//! machine, a Gibbs engine that keeps each chain's state socket-local (model
//! replication + model averaging \[57\], lock-free within a socket \[29,41\])
//! beats a non-NUMA-aware engine that spreads one chain across sockets,
//! because the latter pays cross-socket memory traffic on most accesses —
//! "we find that we can generate 1,000 samples for all 0.2 billion random
//! variables in 28 minutes. This is more than 4× faster than a
//! non-NUMA-aware implementation."
//!
//! Containers expose no real NUMA topology, so we *simulate* it (see
//! DESIGN.md §3): every variable has an owning socket, and a worker that
//! touches a remote-socket variable is charged a configurable latency. The
//! charge is settled by calibrated busy-waiting, batched so timer overhead
//! does not distort the measurement. The *communication structure* — the
//! thing the paper's result is actually about — is therefore preserved:
//! NUMA-aware execution generates (almost) no remote charges, the shared
//! chain pays them on `(sockets−1)/sockets` of its traffic.

use crate::gibbs::{sigmoid, Marginals};
use deepdive_factorgraph::CompiledGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU8, Ordering};
use std::time::Instant;

/// A simulated NUMA machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Topology {
    pub sockets: usize,
    pub cores_per_socket: usize,
    /// Simulated extra latency of touching memory owned by another socket.
    pub remote_access_penalty_ns: u64,
}

impl Topology {
    /// A single-socket machine: no remote accesses are possible.
    pub fn single_socket(cores: usize) -> Self {
        Topology {
            sockets: 1,
            cores_per_socket: cores,
            remote_access_penalty_ns: 0,
        }
    }

    /// The paper's evaluation machine shape: 4 sockets × 10 cores. The
    /// default penalty (120 ns) approximates one remote DRAM round-trip
    /// minus a local one on 2010s Xeon-EX parts.
    pub fn four_socket() -> Self {
        Topology {
            sockets: 4,
            cores_per_socket: 10,
            remote_access_penalty_ns: 120,
        }
    }

    pub fn new(sockets: usize, cores_per_socket: usize, remote_access_penalty_ns: u64) -> Self {
        assert!(sockets > 0 && cores_per_socket > 0);
        Topology {
            sockets,
            cores_per_socket,
            remote_access_penalty_ns,
        }
    }

    pub fn total_cores(&self) -> usize {
        self.sockets * self.cores_per_socket
    }

    /// Socket owning worker `w` (workers are numbered socket-major).
    pub fn socket_of_worker(&self, w: usize) -> usize {
        w / self.cores_per_socket
    }

    /// Socket owning variable `v` of `nv` (contiguous block partition —
    /// DimmWitted partitions the variable array across nodes).
    pub fn socket_of_variable(&self, v: usize, nv: usize) -> usize {
        if self.sockets == 1 {
            return 0;
        }
        let per = nv.div_ceil(self.sockets);
        (v / per).min(self.sockets - 1)
    }
}

/// Accumulates owed simulated-latency and settles it by busy-waiting in
/// batches (so `Instant::now` overhead stays negligible).
pub struct PenaltyMeter {
    owed_ns: u64,
    batch_ns: u64,
    pub total_charged_ns: u64,
    pub remote_accesses: u64,
}

impl PenaltyMeter {
    pub fn new() -> Self {
        PenaltyMeter {
            owed_ns: 0,
            batch_ns: 50_000,
            total_charged_ns: 0,
            remote_accesses: 0,
        }
    }

    /// Charge one remote access.
    #[inline]
    pub fn charge(&mut self, penalty_ns: u64) {
        self.owed_ns += penalty_ns;
        self.remote_accesses += 1;
        if self.owed_ns >= self.batch_ns {
            self.settle();
        }
    }

    /// Busy-wait the owed time.
    pub fn settle(&mut self) {
        if self.owed_ns == 0 {
            return;
        }
        let start = Instant::now();
        let owed = self.owed_ns;
        while (start.elapsed().as_nanos() as u64) < owed {
            std::hint::spin_loop();
        }
        self.total_charged_ns += owed;
        self.owed_ns = 0;
    }
}

impl Default for PenaltyMeter {
    fn default() -> Self {
        PenaltyMeter::new()
    }
}

/// Execution strategy for parallel sampling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NumaStrategy {
    /// DimmWitted: one independent chain per socket, socket-local state,
    /// lock-free sharing within the socket, marginals pooled across chains
    /// (sample-level model averaging).
    NumaAware,
    /// Baseline: one chain whose variables are spread across all workers;
    /// every cross-socket variable access pays the remote penalty.
    SharedChain,
}

/// Options for a parallel sampling run.
#[derive(Debug, Clone)]
pub struct ParallelGibbsOptions {
    pub topology: Topology,
    pub strategy: NumaStrategy,
    pub burn_in: usize,
    pub samples: usize,
    pub seed: u64,
    pub clamp_evidence: bool,
}

impl Default for ParallelGibbsOptions {
    fn default() -> Self {
        ParallelGibbsOptions {
            topology: Topology::single_socket(4),
            strategy: NumaStrategy::NumaAware,
            burn_in: 50,
            samples: 200,
            seed: 0xD1_D2,
            clamp_evidence: false,
        }
    }
}

/// Outcome of a parallel run: marginals + performance counters.
pub struct ParallelRunStats {
    pub marginals: Marginals,
    /// Total variable updates across all workers and chains.
    pub variable_updates: u64,
    /// Wall-clock of the sampling region.
    pub elapsed: std::time::Duration,
    /// Remote accesses charged (0 for perfectly NUMA-aware runs).
    pub remote_accesses: u64,
}

impl ParallelRunStats {
    /// Variable updates per second — the throughput metric of E3/E4.
    pub fn updates_per_sec(&self) -> f64 {
        self.variable_updates as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Equivalent full-graph samples per second (updates / num_variables).
    pub fn sweeps_per_sec(&self, num_variables: usize) -> f64 {
        self.updates_per_sec() / num_variables.max(1) as f64
    }
}

/// Shared mutable world: one byte per variable, raced benignly (Hogwild-style
/// lock-free sampling \[29,41\]).
pub struct AtomicWorld {
    values: Vec<AtomicU8>,
}

impl AtomicWorld {
    pub fn new(graph: &CompiledGraph, rng: &mut StdRng, clamp_evidence: bool) -> Self {
        let values = (0..graph.num_variables)
            .map(|v| {
                let init = if graph.is_evidence[v] {
                    graph.evidence_value[v]
                } else {
                    rng.gen::<bool>()
                };
                let _ = clamp_evidence; // evidence starts at its label either way
                AtomicU8::new(init as u8)
            })
            .collect();
        AtomicWorld { values }
    }

    #[inline]
    pub fn get(&self, v: usize) -> bool {
        self.values[v].load(Ordering::Relaxed) != 0
    }

    #[inline]
    pub fn set(&self, v: usize, val: bool) {
        self.values[v].store(val as u8, Ordering::Relaxed);
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    pub fn snapshot(&self) -> Vec<bool> {
        (0..self.len()).map(|v| self.get(v)).collect()
    }
}

/// Split `0..n` into `k` contiguous slices.
pub fn partition(n: usize, k: usize) -> Vec<std::ops::Range<usize>> {
    let per = n.div_ceil(k.max(1));
    (0..k)
        .map(|i| (i * per).min(n)..((i + 1) * per).min(n))
        .collect()
}

/// Sample one worker's slice once (one local sweep over the slice).
///
/// `charge_socket` is `Some(my_socket)` when remote accesses must be charged
/// against `meter` (the SharedChain strategy); the owning socket of each
/// *argument variable* is computed by block partition over the full graph.
#[allow(clippy::too_many_arguments)]
fn sweep_slice(
    graph: &CompiledGraph,
    weights: &[f64],
    world: &AtomicWorld,
    slice: std::ops::Range<usize>,
    rng: &mut StdRng,
    clamp_evidence: bool,
    charge: Option<(&Topology, usize, &mut PenaltyMeter)>,
) -> u64 {
    let mut updates = 0;
    let nv = graph.num_variables;
    match charge {
        None => {
            for v in slice {
                if clamp_evidence && graph.is_evidence[v] {
                    world.set(v, graph.evidence_value[v]);
                    continue;
                }
                let logit = graph.conditional_logit(v, weights, |i| world.get(i));
                world.set(v, rng.gen::<f64>() < sigmoid(logit));
                updates += 1;
            }
        }
        Some((topo, my_socket, meter)) => {
            let penalty = topo.remote_access_penalty_ns;
            for v in slice {
                if clamp_evidence && graph.is_evidence[v] {
                    world.set(v, graph.evidence_value[v]);
                    continue;
                }
                // Charge every factor-argument access that crosses sockets,
                // mirroring the pointer-chasing DimmWitted avoids.
                for &f in graph.factors_of(v) {
                    for idx in graph.args_of(f as usize) {
                        let arg = graph.arg_vars[idx] as usize;
                        if topo.socket_of_variable(arg, nv) != my_socket {
                            meter.charge(penalty);
                        }
                    }
                }
                let logit = graph.conditional_logit(v, weights, |i| world.get(i));
                world.set(v, rng.gen::<f64>() < sigmoid(logit));
                updates += 1;
            }
            meter.settle();
        }
    }
    updates
}

/// Run parallel Gibbs under the chosen NUMA strategy and collect marginals
/// plus throughput counters.
pub fn parallel_gibbs(
    graph: &CompiledGraph,
    weights: &[f64],
    opts: &ParallelGibbsOptions,
) -> ParallelRunStats {
    match opts.strategy {
        NumaStrategy::NumaAware => run_numa_aware(graph, weights, opts),
        NumaStrategy::SharedChain => run_shared_chain(graph, weights, opts),
    }
}

fn run_numa_aware(
    graph: &CompiledGraph,
    weights: &[f64],
    opts: &ParallelGibbsOptions,
) -> ParallelRunStats {
    let topo = opts.topology;
    let nv = graph.num_variables;
    let start = Instant::now();
    let mut pooled = Marginals::new(nv);
    let mut total_updates = 0u64;

    // One independent chain per socket; each socket's workers partition the
    // chain's variables. All state is socket-local, so no penalties accrue.
    let chains: Vec<(Marginals, u64)> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..topo.sockets)
            .map(|socket| {
                scope.spawn(move |_| {
                    let mut seed_rng =
                        StdRng::seed_from_u64(opts.seed ^ (socket as u64).wrapping_mul(0x9E37));
                    let world = AtomicWorld::new(graph, &mut seed_rng, opts.clamp_evidence);
                    let world = &world;
                    let slices = partition(nv, topo.cores_per_socket);
                    // Sweep barrier: workers advance in lockstep so no slice
                    // reads neighbor state more than one sweep stale (the
                    // epoch structure of DimmWitted's scans).
                    let sweep_barrier = std::sync::Barrier::new(slices.len());
                    let sweep_barrier = &sweep_barrier;
                    let per_worker: Vec<(std::ops::Range<usize>, Vec<u64>, u64)> =
                        crossbeam::thread::scope(|inner| {
                            let hs: Vec<_> = slices
                                .iter()
                                .cloned()
                                .enumerate()
                                .map(|(wi, slice)| {
                                    inner.spawn(move |_| {
                                        let mut rng = StdRng::seed_from_u64(
                                            opts.seed
                                                ^ ((socket as u64) << 32)
                                                ^ (wi as u64).wrapping_mul(0xABCD_1234),
                                        );
                                        let mut local_counts = vec![0u64; slice.len()];
                                        let mut updates = 0u64;
                                        for _ in 0..opts.burn_in {
                                            updates += sweep_slice(
                                                graph,
                                                weights,
                                                world,
                                                slice.clone(),
                                                &mut rng,
                                                opts.clamp_evidence,
                                                None,
                                            );
                                            sweep_barrier.wait();
                                        }
                                        for _ in 0..opts.samples {
                                            updates += sweep_slice(
                                                graph,
                                                weights,
                                                world,
                                                slice.clone(),
                                                &mut rng,
                                                opts.clamp_evidence,
                                                None,
                                            );
                                            for (o, v) in slice.clone().enumerate() {
                                                local_counts[o] += world.get(v) as u64;
                                            }
                                            sweep_barrier.wait();
                                        }
                                        (slice, local_counts, updates)
                                    })
                                })
                                .collect();
                            hs.into_iter().map(|h| h.join().expect("worker")).collect()
                        })
                        .expect("socket scope");

                    let mut marg = Marginals::new(nv);
                    let mut updates = 0;
                    for (slice, counts, u) in per_worker {
                        for (o, v) in slice.enumerate() {
                            marg.true_counts[v] += counts[o];
                        }
                        updates += u;
                    }
                    marg.samples = opts.samples as u64;
                    (marg, updates)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("socket"))
            .collect()
    })
    .expect("scope");

    for (m, u) in chains {
        pooled.merge(&m);
        total_updates += u;
    }
    ParallelRunStats {
        marginals: pooled,
        variable_updates: total_updates,
        elapsed: start.elapsed(),
        remote_accesses: 0,
    }
}

fn run_shared_chain(
    graph: &CompiledGraph,
    weights: &[f64],
    opts: &ParallelGibbsOptions,
) -> ParallelRunStats {
    let topo = opts.topology;
    let nv = graph.num_variables;
    let workers = topo.total_cores();
    let start = Instant::now();

    let mut seed_rng = StdRng::seed_from_u64(opts.seed);
    let world = AtomicWorld::new(graph, &mut seed_rng, opts.clamp_evidence);
    let world = &world;
    let slices = partition(nv, workers);
    let sweep_barrier = std::sync::Barrier::new(slices.len());
    let sweep_barrier = &sweep_barrier;

    let results: Vec<(Vec<u64>, std::ops::Range<usize>, u64, u64)> =
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = slices
                .iter()
                .cloned()
                .enumerate()
                .map(|(wi, slice)| {
                    scope.spawn(move |_| {
                        let my_socket = topo.socket_of_worker(wi);
                        let mut rng = StdRng::seed_from_u64(
                            opts.seed ^ (wi as u64).wrapping_mul(0x5DEECE66D),
                        );
                        let mut meter = PenaltyMeter::new();
                        let mut counts = vec![0u64; slice.len()];
                        let mut updates = 0u64;
                        for _ in 0..opts.burn_in {
                            updates += sweep_slice(
                                graph,
                                weights,
                                world,
                                slice.clone(),
                                &mut rng,
                                opts.clamp_evidence,
                                Some((&topo, my_socket, &mut meter)),
                            );
                            sweep_barrier.wait();
                        }
                        for _ in 0..opts.samples {
                            updates += sweep_slice(
                                graph,
                                weights,
                                world,
                                slice.clone(),
                                &mut rng,
                                opts.clamp_evidence,
                                Some((&topo, my_socket, &mut meter)),
                            );
                            for (o, v) in slice.clone().enumerate() {
                                counts[o] += world.get(v) as u64;
                            }
                            sweep_barrier.wait();
                        }
                        (counts, slice, updates, meter.remote_accesses)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker"))
                .collect()
        })
        .expect("scope");

    let mut marg = Marginals::new(nv);
    marg.samples = opts.samples as u64;
    let mut total_updates = 0;
    let mut remote = 0;
    for (counts, slice, updates, r) in results {
        for (o, v) in slice.enumerate() {
            marg.true_counts[v] += counts[o];
        }
        total_updates += updates;
        remote += r;
    }
    ParallelRunStats {
        marginals: marg,
        variable_updates: total_updates,
        elapsed: start.elapsed(),
        remote_accesses: remote,
    }
}

#[allow(clippy::needless_range_loop)] // parallel arrays indexed by var id
#[cfg(test)]
mod tests {
    use super::*;
    use deepdive_factorgraph::{exact_marginals, FactorArg, FactorFunction, FactorGraph, Variable};

    fn small_graph() -> FactorGraph {
        let mut g = FactorGraph::new();
        let vs: Vec<_> = (0..6).map(|_| g.add_variable(Variable::query())).collect();
        let wp = g.weights.tied("p", 0.6);
        let ws = g.weights.tied("s", 0.9);
        g.add_factor(FactorFunction::IsTrue, vec![FactorArg::pos(vs[0])], wp);
        for i in 0..5 {
            g.add_factor(
                FactorFunction::Imply,
                vec![FactorArg::pos(vs[i]), FactorArg::pos(vs[i + 1])],
                ws,
            );
        }
        g
    }

    #[test]
    fn topology_partitions_work() {
        let t = Topology::new(4, 10, 100);
        assert_eq!(t.total_cores(), 40);
        assert_eq!(t.socket_of_worker(0), 0);
        assert_eq!(t.socket_of_worker(39), 3);
        assert_eq!(t.socket_of_variable(0, 100), 0);
        assert_eq!(t.socket_of_variable(99, 100), 3);
    }

    #[test]
    fn partition_covers_range_exactly() {
        for (n, k) in [(10, 3), (7, 7), (5, 8), (100, 4)] {
            let parts = partition(n, k);
            let total: usize = parts.iter().map(|r| r.len()).sum();
            assert_eq!(total, n, "n={n} k={k}");
            let mut next = 0;
            for p in &parts {
                assert_eq!(p.start, next.min(n));
                next = p.end;
            }
        }
    }

    #[test]
    fn numa_aware_marginals_close_to_exact() {
        let g = small_graph();
        let c = g.compile();
        let weights = g.weights.values();
        let exact = exact_marginals(&c, &weights);
        let opts = ParallelGibbsOptions {
            topology: Topology::new(2, 2, 0),
            strategy: NumaStrategy::NumaAware,
            burn_in: 300,
            samples: 8000,
            seed: 11,
            clamp_evidence: false,
        };
        let stats = parallel_gibbs(&c, &weights, &opts);
        for v in 0..c.num_variables {
            assert!(
                (stats.marginals.probability(v) - exact[v]).abs() < 0.05,
                "v{v}: {} vs {}",
                stats.marginals.probability(v),
                exact[v]
            );
        }
        assert_eq!(stats.remote_accesses, 0);
    }

    #[test]
    fn shared_chain_marginals_close_to_exact_and_charges_remote() {
        let g = small_graph();
        let c = g.compile();
        let weights = g.weights.values();
        let exact = exact_marginals(&c, &weights);
        let opts = ParallelGibbsOptions {
            topology: Topology::new(2, 1, 10),
            strategy: NumaStrategy::SharedChain,
            burn_in: 300,
            samples: 8000,
            seed: 13,
            clamp_evidence: false,
        };
        let stats = parallel_gibbs(&c, &weights, &opts);
        for v in 0..c.num_variables {
            assert!(
                (stats.marginals.probability(v) - exact[v]).abs() < 0.05,
                "v{v}: {} vs {}",
                stats.marginals.probability(v),
                exact[v]
            );
        }
        assert!(
            stats.remote_accesses > 0,
            "cross-socket factor args must be charged"
        );
    }

    #[test]
    fn penalty_meter_settles_in_batches() {
        let mut m = PenaltyMeter::new();
        for _ in 0..100 {
            m.charge(10);
        }
        m.settle();
        assert_eq!(m.remote_accesses, 100);
        assert_eq!(m.total_charged_ns, 1000);
    }

    #[test]
    fn single_socket_shared_chain_has_no_remote_accesses() {
        let g = small_graph();
        let c = g.compile();
        let weights = g.weights.values();
        let opts = ParallelGibbsOptions {
            topology: Topology::single_socket(3),
            strategy: NumaStrategy::SharedChain,
            burn_in: 5,
            samples: 5,
            seed: 1,
            clamp_evidence: false,
        };
        let stats = parallel_gibbs(&c, &weights, &opts);
        assert_eq!(stats.remote_accesses, 0);
        assert!(stats.variable_updates > 0);
    }
}
