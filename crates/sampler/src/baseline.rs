//! A GraphLab-style comparator sampler (experiment E3).
//!
//! §4.2: "In standard benchmarks, DimmWitted was 3.7× faster than GraphLab's
//! implementation without any application-specific optimization." GraphLab
//! executes vertex programs under a *scope-locking* consistency model with a
//! shared scheduler; both mechanisms cost it dearly against DimmWitted's
//! lock-free sequential scans:
//!
//! * every vertex update acquires locks on the vertex and its neighborhood
//!   (deadlock-avoided by ordered acquisition);
//! * vertices flow through a shared scheduler queue instead of a cache-
//!   friendly linear scan.
//!
//! We use GraphLab's *sweep scheduler*: each round, every vertex is enqueued
//! once and workers drain the queue under scope locks, with a barrier between
//! rounds. (A fully dynamic queue without rounds lets an unfair mutex starve
//! vertices held by blocked workers, freezing parts of the chain — a failure
//! mode we hit empirically; GraphLab's shipped Gibbs used sweep/chromatic
//! scheduling for exactly this reason.)
//!
//! This module implements that execution model over the same
//! [`CompiledGraph`], so throughput comparisons isolate the engine design
//! rather than the model or the workload.

use crate::gibbs::{sigmoid, Marginals};
use crate::numa::AtomicWorld;
use crossbeam::queue::SegQueue;
use deepdive_factorgraph::CompiledGraph;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::Instant;

/// Options for the GraphLab-style run.
#[derive(Debug, Clone)]
pub struct GraphLabOptions {
    pub workers: usize,
    /// Sweeps discarded before collection.
    pub burn_in: usize,
    /// Sweeps collected.
    pub samples: usize,
    pub seed: u64,
    pub clamp_evidence: bool,
}

impl Default for GraphLabOptions {
    fn default() -> Self {
        GraphLabOptions {
            workers: 4,
            burn_in: 50,
            samples: 200,
            seed: 0x61AB,
            clamp_evidence: false,
        }
    }
}

/// Result of a GraphLab-style run.
pub struct GraphLabRunStats {
    pub marginals: Marginals,
    pub variable_updates: u64,
    pub elapsed: std::time::Duration,
}

impl GraphLabRunStats {
    pub fn updates_per_sec(&self) -> f64 {
        self.variable_updates as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Vertex-locking scatter/gather Gibbs over the factor graph.
pub struct GraphLabStyleSampler<'g> {
    graph: &'g CompiledGraph,
    /// One lock per variable (the "scope" locks).
    locks: Vec<Mutex<()>>,
    /// Precomputed sorted neighborhood (self + factor co-arguments) per
    /// variable — the lock-acquisition scope.
    scopes: Vec<Vec<u32>>,
}

impl<'g> GraphLabStyleSampler<'g> {
    pub fn new(graph: &'g CompiledGraph) -> Self {
        let mut scopes = Vec::with_capacity(graph.num_variables);
        for v in 0..graph.num_variables {
            let mut scope: Vec<u32> = vec![v as u32];
            for &f in graph.factors_of(v) {
                for idx in graph.args_of(f as usize) {
                    scope.push(graph.arg_vars[idx]);
                }
            }
            scope.sort_unstable();
            scope.dedup();
            scopes.push(scope);
        }
        let locks = (0..graph.num_variables).map(|_| Mutex::new(())).collect();
        GraphLabStyleSampler {
            graph,
            locks,
            scopes,
        }
    }

    /// Run `burn_in + samples` sweeps under the sweep scheduler.
    pub fn run(&self, weights: &[f64], opts: &GraphLabOptions) -> GraphLabRunStats {
        let start = Instant::now();
        let nv = self.graph.num_variables;
        let mut seed_rng = StdRng::seed_from_u64(opts.seed);
        let world = AtomicWorld::new(self.graph, &mut seed_rng, opts.clamp_evidence);
        let queue: SegQueue<u32> = SegQueue::new();
        let counts: Vec<AtomicU64> = (0..nv).map(|_| AtomicU64::new(0)).collect();
        let updates = AtomicU64::new(0);
        let barrier = Barrier::new(opts.workers);
        let total_sweeps = opts.burn_in + opts.samples;

        let (graph, locks, scopes) = (self.graph, &self.locks, &self.scopes);
        let (world_ref, queue_ref, counts_ref, updates_ref, barrier_ref) =
            (&world, &queue, &counts, &updates, &barrier);

        crossbeam::thread::scope(|scope| {
            for wi in 0..opts.workers {
                scope.spawn(move |_| {
                    let mut rng =
                        StdRng::seed_from_u64(opts.seed ^ (wi as u64).wrapping_mul(0x8088405));
                    let mut local_updates = 0u64;
                    for sweep in 0..total_sweeps {
                        // Leader refills the scheduler queue each round.
                        if barrier_ref.wait().is_leader() {
                            for v in 0..nv {
                                queue_ref.push(v as u32);
                            }
                        }
                        barrier_ref.wait();
                        let collecting = sweep >= opts.burn_in;
                        while let Some(v) = queue_ref.pop() {
                            let v = v as usize;
                            if opts.clamp_evidence && graph.is_evidence[v] {
                                world_ref.set(v, graph.evidence_value[v]);
                                continue;
                            }
                            // Ascending-order scope acquisition (deadlock-free).
                            let guards: Vec<_> = scopes[v]
                                .iter()
                                .map(|&u| locks[u as usize].lock())
                                .collect();
                            let logit = graph.conditional_logit(v, weights, |i| world_ref.get(i));
                            let new = rng.gen::<f64>() < sigmoid(logit);
                            world_ref.set(v, new);
                            drop(guards);
                            local_updates += 1;
                            if collecting {
                                counts_ref[v].fetch_add(new as u64, Ordering::Relaxed);
                            }
                        }
                    }
                    updates_ref.fetch_add(local_updates, Ordering::Relaxed);
                    barrier_ref.wait();
                });
            }
        })
        .expect("graphlab scope");

        let mut marg = Marginals::new(nv);
        for (m, c) in marg.true_counts.iter_mut().zip(&counts) {
            *m = c.load(Ordering::Relaxed);
        }
        marg.samples = opts.samples as u64;
        GraphLabRunStats {
            marginals: marg,
            variable_updates: updates.load(Ordering::Relaxed),
            elapsed: start.elapsed(),
        }
    }
}

#[allow(clippy::needless_range_loop)] // parallel arrays indexed by var id
#[cfg(test)]
mod tests {
    use super::*;
    use deepdive_factorgraph::{exact_marginals, FactorArg, FactorFunction, FactorGraph, Variable};

    fn chain(n: usize) -> FactorGraph {
        let mut g = FactorGraph::new();
        let vs: Vec<_> = (0..n).map(|_| g.add_variable(Variable::query())).collect();
        let wp = g.weights.tied("p", 0.7);
        let ws = g.weights.tied("s", 1.0);
        g.add_factor(FactorFunction::IsTrue, vec![FactorArg::pos(vs[0])], wp);
        for i in 0..n - 1 {
            g.add_factor(
                FactorFunction::Imply,
                vec![FactorArg::pos(vs[i]), FactorArg::pos(vs[i + 1])],
                ws,
            );
        }
        g
    }

    #[test]
    fn graphlab_style_estimates_match_exact() {
        let g = chain(5);
        let c = g.compile();
        let weights = g.weights.values();
        let exact = exact_marginals(&c, &weights);
        let sampler = GraphLabStyleSampler::new(&c);
        let opts = GraphLabOptions {
            workers: 3,
            burn_in: 500,
            samples: 20_000,
            seed: 2,
            clamp_evidence: false,
        };
        let stats = sampler.run(&weights, &opts);
        for v in 0..c.num_variables {
            assert!(
                (stats.marginals.probability(v) - exact[v]).abs() < 0.05,
                "v{v}: {} vs {}",
                stats.marginals.probability(v),
                exact[v]
            );
        }
        assert_eq!(stats.variable_updates, 20_500 * 5);
    }

    #[test]
    fn scopes_cover_neighborhoods() {
        let g = chain(4);
        let c = g.compile();
        let s = GraphLabStyleSampler::new(&c);
        // Middle variable: itself + both chain neighbors.
        assert_eq!(s.scopes[1], vec![0, 1, 2]);
        // Endpoint: itself + one neighbor.
        assert_eq!(s.scopes[3], vec![2, 3]);
    }

    #[test]
    fn evidence_clamped_when_requested() {
        let mut g = FactorGraph::new();
        let e = g.add_variable(Variable::evidence(true));
        let q = g.add_variable(Variable::query());
        let w = g.weights.tied("eq", 1.0);
        g.add_factor(
            FactorFunction::Equal,
            vec![FactorArg::pos(e), FactorArg::pos(q)],
            w,
        );
        let c = g.compile();
        let sampler = GraphLabStyleSampler::new(&c);
        let opts = GraphLabOptions {
            workers: 2,
            burn_in: 100,
            samples: 5_000,
            seed: 4,
            clamp_evidence: true,
        };
        let stats = sampler.run(&g.weights.values(), &opts);
        assert!(stats.marginals.probability(1) > 0.6);
    }
}
