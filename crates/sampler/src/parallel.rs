//! Partitioned inference: per-partition Gibbs chains merged at the end
//! (DimmWitted's model-averaging strategy, §4.2, applied to inference).
//!
//! With `threads <= 1` this is byte-for-byte [`gibbs_marginals`] — same
//! seed, same sweep schedule, same counts. With `threads == k > 1` it runs
//! `k` independent chains, each with its own derived seed and a share of the
//! requested samples, and pools their `true_counts` with
//! [`Marginals::merge`]. Each chain burns in separately, so the estimate
//! trades some statistical efficiency for near-linear hardware scaling —
//! exactly the trade DimmWitted's NUMA replicas make.
//!
//! Determinism: chain `c` always gets seed `seed ^ (c+1)·0x9E3779B97F4A7C15`
//! and a fixed sample share, and chains are merged in index order, so a run
//! with the same `(opts, threads)` reproduces identical counts regardless
//! of scheduling.

use crate::gibbs::{gibbs_marginals, GibbsOptions, Marginals};
use deepdive_factorgraph::CompiledGraph;

/// Derive the RNG seed for one chain of a partitioned run.
pub fn chain_seed(base: u64, chain: usize) -> u64 {
    base ^ (chain as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Number of samples chain `c` of `k` collects out of `total` (first
/// `total % k` chains take the remainder, so shares differ by at most one).
pub fn chain_samples(total: usize, chain: usize, chains: usize) -> usize {
    total / chains + usize::from(chain < total % chains)
}

/// Estimate marginals with `threads` independent seeded chains.
///
/// `threads <= 1` delegates to [`gibbs_marginals`] unchanged (bit-identical
/// output); otherwise each chain runs `opts.burn_in` burn-in sweeps plus its
/// share of `opts.samples`, and the pooled counts are returned.
pub fn parallel_marginals(
    graph: &CompiledGraph,
    weights: &[f64],
    opts: &GibbsOptions,
    threads: usize,
) -> Marginals {
    if threads <= 1 {
        return gibbs_marginals(graph, weights, opts);
    }
    let chains = threads.min(opts.samples.max(1));
    let per_chain: Vec<GibbsOptions> = (0..chains)
        .map(|c| GibbsOptions {
            seed: chain_seed(opts.seed, c),
            samples: chain_samples(opts.samples, c, chains),
            ..opts.clone()
        })
        .collect();
    let partials = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = per_chain
            .iter()
            .map(|chain_opts| s.spawn(move |_| gibbs_marginals(graph, weights, chain_opts)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("gibbs chain panicked"))
            .collect::<Vec<_>>()
    })
    .expect("sampler scope");
    let mut merged = Marginals::new(graph.num_variables);
    for partial in &partials {
        merged.merge(partial);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepdive_factorgraph::{FactorArg, FactorFunction, FactorGraph, Variable};

    fn chain_graph() -> FactorGraph {
        let mut g = FactorGraph::new();
        let vs: Vec<_> = (0..6).map(|_| g.add_variable(Variable::query())).collect();
        let wp = g.weights.tied("p", 0.6);
        let ws = g.weights.tied("s", 1.1);
        g.add_factor(FactorFunction::IsTrue, vec![FactorArg::pos(vs[0])], wp);
        for i in 0..5 {
            g.add_factor(
                FactorFunction::Imply,
                vec![FactorArg::pos(vs[i]), FactorArg::pos(vs[i + 1])],
                ws,
            );
        }
        g
    }

    #[test]
    fn one_thread_is_bit_identical_to_sequential() {
        let g = chain_graph();
        let c = g.compile();
        let weights = g.weights.values();
        let opts = GibbsOptions {
            burn_in: 20,
            samples: 200,
            seed: 42,
            ..Default::default()
        };
        let seq = gibbs_marginals(&c, &weights, &opts);
        let par = parallel_marginals(&c, &weights, &opts, 1);
        assert_eq!(seq.true_counts, par.true_counts);
        assert_eq!(seq.samples, par.samples);
    }

    #[test]
    fn parallel_chains_are_reproducible() {
        let g = chain_graph();
        let c = g.compile();
        let weights = g.weights.values();
        let opts = GibbsOptions {
            burn_in: 20,
            samples: 201,
            seed: 7,
            ..Default::default()
        };
        for threads in [2, 4] {
            let a = parallel_marginals(&c, &weights, &opts, threads);
            let b = parallel_marginals(&c, &weights, &opts, threads);
            assert_eq!(a.true_counts, b.true_counts, "threads={threads}");
            assert_eq!(a.samples, opts.samples as u64);
        }
    }

    #[test]
    fn sample_shares_sum_to_total() {
        for (total, chains) in [(900, 4), (201, 2), (7, 8), (0, 3)] {
            let sum: usize = (0..chains).map(|c| chain_samples(total, c, chains)).sum();
            assert_eq!(sum, total);
        }
    }

    #[test]
    fn pooled_estimate_stays_close_to_sequential() {
        let g = chain_graph();
        let c = g.compile();
        let weights = g.weights.values();
        let opts = GibbsOptions {
            burn_in: 300,
            samples: 8_000,
            seed: 5,
            ..Default::default()
        };
        let seq = gibbs_marginals(&c, &weights, &opts);
        let par = parallel_marginals(&c, &weights, &opts, 4);
        for v in 0..c.num_variables {
            assert!(
                (seq.probability(v) - par.probability(v)).abs() < 0.05,
                "var {v}: seq {} vs pooled {}",
                seq.probability(v),
                par.probability(v)
            );
        }
    }
}
