//! Sequential-scan Gibbs sampling — the core of DimmWitted (§4.2).
//!
//! DeepDive estimates every tuple's marginal probability with Gibbs sampling
//! [Robert & Casella]: repeatedly sweep the variables, resampling each from
//! its conditional given the rest. DimmWitted's distinctive choices, kept
//! here: *sequential scans* over a CSR layout (cache-friendly column-to-row
//! access) rather than random scans or a scheduler, and evidence variables
//! clamped during the evidence-conditioned phase of learning.

use deepdive_factorgraph::{CompiledGraph, World};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Options for a Gibbs run.
#[derive(Debug, Clone)]
pub struct GibbsOptions {
    /// Sweeps discarded before collecting marginal statistics.
    pub burn_in: usize,
    /// Sweeps collected.
    pub samples: usize,
    /// RNG seed (every run is deterministic given the seed).
    pub seed: u64,
    /// Clamp evidence variables to their labels (learning's "evidence
    /// world"); when false, evidence variables are sampled like any other
    /// (learning's "free world", and plain inference over query variables).
    pub clamp_evidence: bool,
    /// Wall-clock budget for the whole run (burn-in + sampling), checked
    /// between sweeps. On expiry the run stops early and the returned
    /// [`Marginals`] are flagged `degraded` — partial results, not an error.
    pub deadline: Option<Duration>,
}

impl Default for GibbsOptions {
    fn default() -> Self {
        GibbsOptions {
            burn_in: 100,
            samples: 900,
            seed: 0xD1_D1,
            clamp_evidence: false,
            deadline: None,
        }
    }
}

/// Accumulated marginal statistics.
#[derive(Debug, Clone)]
pub struct Marginals {
    pub true_counts: Vec<u64>,
    pub samples: u64,
    /// True when the run hit its deadline and stopped before completing the
    /// requested sweeps; estimates are from fewer samples than asked for.
    pub degraded: bool,
}

impl Marginals {
    pub fn new(num_variables: usize) -> Self {
        Marginals {
            true_counts: vec![0; num_variables],
            samples: 0,
            degraded: false,
        }
    }

    /// Estimated `P(v = 1)`.
    pub fn probability(&self, v: usize) -> f64 {
        if self.samples == 0 {
            return 0.5;
        }
        self.true_counts[v] as f64 / self.samples as f64
    }

    pub fn probabilities(&self) -> Vec<f64> {
        (0..self.true_counts.len())
            .map(|v| self.probability(v))
            .collect()
    }

    pub fn record(&mut self, world: &World) {
        for (c, &val) in self.true_counts.iter_mut().zip(world) {
            *c += val as u64;
        }
        self.samples += 1;
    }

    /// Merge statistics from another chain (model averaging across NUMA-node
    /// replicas, §4.2).
    pub fn merge(&mut self, other: &Marginals) {
        assert_eq!(self.true_counts.len(), other.true_counts.len());
        for (a, b) in self.true_counts.iter_mut().zip(&other.true_counts) {
            *a += b;
        }
        self.samples += other.samples;
        self.degraded |= other.degraded;
    }
}

/// Single-threaded sequential-scan Gibbs sampler.
pub struct GibbsSampler<'g> {
    graph: &'g CompiledGraph,
    rng: StdRng,
    clamp_evidence: bool,
}

impl<'g> GibbsSampler<'g> {
    pub fn new(graph: &'g CompiledGraph, seed: u64, clamp_evidence: bool) -> Self {
        GibbsSampler {
            graph,
            rng: StdRng::seed_from_u64(seed),
            clamp_evidence,
        }
    }

    /// One sequential sweep: resample every (non-clamped) variable in index
    /// order. Returns the number of variables whose value changed.
    pub fn sweep(&mut self, weights: &[f64], world: &mut World) -> usize {
        let mut flips = 0;
        for v in 0..self.graph.num_variables {
            if self.clamp_evidence && self.graph.is_evidence[v] {
                world[v] = self.graph.evidence_value[v];
                continue;
            }
            let logit = self.graph.conditional_logit(v, weights, |i| world[i]);
            let p_true = sigmoid(logit);
            let new = self.rng.gen::<f64>() < p_true;
            if new != world[v] {
                flips += 1;
            }
            world[v] = new;
        }
        flips
    }

    /// One random-scan sweep: resample `num_variables` uniformly chosen
    /// variables (the ablation DimmWitted's sequential scan is compared
    /// against — random scan touches memory unpredictably and revisits some
    /// variables while missing others).
    pub fn sweep_random(&mut self, weights: &[f64], world: &mut World) -> usize {
        let mut flips = 0;
        let nv = self.graph.num_variables;
        for _ in 0..nv {
            let v = self.rng.gen_range(0..nv);
            if self.clamp_evidence && self.graph.is_evidence[v] {
                world[v] = self.graph.evidence_value[v];
                continue;
            }
            let logit = self.graph.conditional_logit(v, weights, |i| world[i]);
            let p_true = sigmoid(logit);
            let new = self.rng.gen::<f64>() < p_true;
            if new != world[v] {
                flips += 1;
            }
            world[v] = new;
        }
        flips
    }

    /// Run burn-in + sampling sweeps, collecting marginals. If
    /// `opts.deadline` expires mid-run the sampler stops after the current
    /// sweep and returns whatever it has, flagged `degraded`.
    pub fn run(&mut self, weights: &[f64], opts: &GibbsOptions) -> Marginals {
        let start = Instant::now();
        let expired = || opts.deadline.is_some_and(|d| start.elapsed() >= d);
        let mut world = deepdive_factorgraph::initial_world(self.graph);
        // Randomize non-clamped starting values to decorrelate chains.
        for (v, w) in world.iter_mut().enumerate() {
            if !(self.clamp_evidence && self.graph.is_evidence[v]) {
                *w = self.rng.gen();
            }
        }
        let mut marg = Marginals::new(self.graph.num_variables);
        for _ in 0..opts.burn_in {
            if expired() {
                marg.degraded = true;
                return marg;
            }
            self.sweep(weights, &mut world);
        }
        for _ in 0..opts.samples {
            if expired() {
                marg.degraded = true;
                return marg;
            }
            self.sweep(weights, &mut world);
            marg.record(&world);
        }
        marg
    }
}

/// Convenience: estimate marginals with a fresh sampler.
pub fn gibbs_marginals(graph: &CompiledGraph, weights: &[f64], opts: &GibbsOptions) -> Marginals {
    let mut s = GibbsSampler::new(graph, opts.seed, opts.clamp_evidence);
    s.run(weights, opts)
}

#[inline]
pub fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

#[allow(clippy::needless_range_loop)] // parallel arrays indexed by var id
#[cfg(test)]
mod tests {
    use super::*;
    use deepdive_factorgraph::{exact_marginals, FactorArg, FactorFunction, FactorGraph, Variable};

    fn assert_close_to_exact(g: &FactorGraph, tol: f64) {
        let c = g.compile();
        let weights = g.weights.values();
        let exact = exact_marginals(&c, &weights);
        let opts = GibbsOptions {
            burn_in: 500,
            samples: 20_000,
            seed: 7,
            ..Default::default()
        };
        let est = gibbs_marginals(&c, &weights, &opts);
        for v in 0..c.num_variables {
            if c.is_evidence[v] {
                continue;
            }
            assert!(
                (est.probability(v) - exact[v]).abs() < tol,
                "var {v}: gibbs {} vs exact {}",
                est.probability(v),
                exact[v]
            );
        }
    }

    #[test]
    fn matches_exact_on_single_prior() {
        let mut g = FactorGraph::new();
        let v = g.add_variable(Variable::query());
        let w = g.weights.tied("p", 0.8);
        g.add_factor(FactorFunction::IsTrue, vec![FactorArg::pos(v)], w);
        assert_close_to_exact(&g, 0.02);
    }

    #[test]
    fn matches_exact_on_imply_chain() {
        let mut g = FactorGraph::new();
        let vs: Vec<_> = (0..4).map(|_| g.add_variable(Variable::query())).collect();
        let wp = g.weights.tied("p", 0.5);
        let ws = g.weights.tied("s", 1.2);
        g.add_factor(FactorFunction::IsTrue, vec![FactorArg::pos(vs[0])], wp);
        for i in 0..3 {
            g.add_factor(
                FactorFunction::Imply,
                vec![FactorArg::pos(vs[i]), FactorArg::pos(vs[i + 1])],
                ws,
            );
        }
        assert_close_to_exact(&g, 0.02);
    }

    #[test]
    fn matches_exact_with_negated_args_and_or() {
        let mut g = FactorGraph::new();
        let a = g.add_variable(Variable::query());
        let b = g.add_variable(Variable::query());
        let w1 = g.weights.tied("or", 0.9);
        let w2 = g.weights.tied("na", 0.4);
        g.add_factor(
            FactorFunction::Or,
            vec![FactorArg::pos(a), FactorArg::neg(b)],
            w1,
        );
        g.add_factor(FactorFunction::IsTrue, vec![FactorArg::neg(a)], w2);
        assert_close_to_exact(&g, 0.02);
    }

    #[test]
    fn evidence_clamping_respected_when_enabled() {
        let mut g = FactorGraph::new();
        let e = g.add_variable(Variable::evidence(true));
        let q = g.add_variable(Variable::query());
        let w = g.weights.tied("eq", 1.5);
        g.add_factor(
            FactorFunction::Equal,
            vec![FactorArg::pos(e), FactorArg::pos(q)],
            w,
        );
        let c = g.compile();
        let weights = g.weights.values();
        let opts = GibbsOptions {
            burn_in: 200,
            samples: 5_000,
            seed: 3,
            clamp_evidence: true,
            ..Default::default()
        };
        let est = gibbs_marginals(&c, &weights, &opts);
        assert_eq!(est.probability(0), 1.0, "evidence stays clamped");
        assert!(est.probability(1) > 0.8, "query follows evidence");
    }

    #[test]
    fn determinism_same_seed_same_marginals() {
        let mut g = FactorGraph::new();
        let v = g.add_variable(Variable::query());
        let w = g.weights.tied("p", 0.2);
        g.add_factor(FactorFunction::IsTrue, vec![FactorArg::pos(v)], w);
        let c = g.compile();
        let weights = g.weights.values();
        let opts = GibbsOptions {
            burn_in: 10,
            samples: 100,
            seed: 99,
            ..Default::default()
        };
        let a = gibbs_marginals(&c, &weights, &opts);
        let b = gibbs_marginals(&c, &weights, &opts);
        assert_eq!(a.true_counts, b.true_counts);
    }

    #[test]
    fn expired_deadline_returns_degraded_partial_marginals() {
        let mut g = FactorGraph::new();
        let v = g.add_variable(Variable::query());
        let w = g.weights.tied("p", 0.2);
        g.add_factor(FactorFunction::IsTrue, vec![FactorArg::pos(v)], w);
        let c = g.compile();
        let weights = g.weights.values();
        let opts = GibbsOptions {
            burn_in: 10,
            samples: 100,
            seed: 1,
            deadline: Some(std::time::Duration::ZERO),
            ..Default::default()
        };
        let m = gibbs_marginals(&c, &weights, &opts);
        assert!(m.degraded);
        assert_eq!(m.samples, 0);
        assert_eq!(
            m.probability(0),
            0.5,
            "no samples collected -> uninformative prior"
        );
    }

    #[test]
    fn no_deadline_is_never_degraded() {
        let mut g = FactorGraph::new();
        let v = g.add_variable(Variable::query());
        let w = g.weights.tied("p", 0.2);
        g.add_factor(FactorFunction::IsTrue, vec![FactorArg::pos(v)], w);
        let c = g.compile();
        let m = gibbs_marginals(&c, &g.weights.values(), &GibbsOptions::default());
        assert!(!m.degraded);
        assert_eq!(m.samples, 900);
    }

    #[test]
    fn marginals_merge_pools_counts() {
        let mut a = Marginals::new(2);
        a.record(&vec![true, false]);
        let mut b = Marginals::new(2);
        b.record(&vec![true, true]);
        a.merge(&b);
        assert_eq!(a.samples, 2);
        assert_eq!(a.probability(0), 1.0);
        assert_eq!(a.probability(1), 0.5);
    }
}
