//! Weight learning (§3.3 "train weights", §4.2).
//!
//! DeepDive learns factor weights by maximizing the likelihood of the
//! evidence labels produced by distant supervision. The gradient of the
//! log-likelihood for tied weight `w` is
//! `∂ℓ/∂w = E[Σ_{f: w_f = w} φ_f | evidence clamped] − E[Σ φ_f]`,
//! estimated by running two Gibbs chains — one with evidence variables
//! clamped to their labels, one free — and taking the potential difference
//! (stochastic contrastive gradient, exactly what the open-source DimmWitted
//! gibbs sampler does).
//!
//! Three execution modes, matching the paper's infrastructure story:
//! * [`learn_weights`] — sequential SGD;
//! * [`learn_weights_hogwild`] — lock-free parallel SGD \[41\]: workers
//!   partition variables (sampling) and factors (gradient), racing benignly
//!   on shared atomic weights;
//! * [`learn_weights_model_averaging`] — per-socket weight replicas averaged
//!   periodically \[57\], the NUMA-friendly strategy (§4.2 "DeepDive takes
//!   advantage of the theoretical results of model averaging").

use crate::gibbs::sigmoid;
use crate::numa::{partition, AtomicWorld};
use deepdive_factorgraph::{CompiledGraph, WeightStore};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

/// Options for weight learning.
#[derive(Debug, Clone)]
pub struct LearnOptions {
    pub epochs: usize,
    /// Initial SGD step size.
    pub step_size: f64,
    /// Multiplicative per-epoch step decay (DeepDive's default is 0.95).
    pub decay: f64,
    /// ℓ2 regularization strength — this is the "statistical regularization
    /// to throw away all but the most effective features" of §5.3.
    pub l2: f64,
    pub seed: u64,
    /// Gibbs sweeps of each chain between gradient steps.
    pub sweeps_per_epoch: usize,
    /// Wall-clock budget for the run, checked between epochs. On expiry
    /// learning stops with the weights it has and flags the returned
    /// [`LearnStats`] `degraded` — partial results, not an error.
    pub deadline: Option<Duration>,
}

impl Default for LearnOptions {
    fn default() -> Self {
        LearnOptions {
            epochs: 100,
            step_size: 0.1,
            decay: 0.97,
            l2: 0.01,
            seed: 0x1EA2,
            sweeps_per_epoch: 1,
            deadline: None,
        }
    }
}

/// Diagnostics from a learning run.
#[derive(Debug, Clone, Default)]
pub struct LearnStats {
    pub epochs_run: usize,
    /// ‖gradient‖₂ per epoch (before regularization).
    pub gradient_norms: Vec<f64>,
    /// True when the deadline expired before all requested epochs ran.
    pub degraded: bool,
}

/// Sweep a world sequentially (optionally clamping evidence).
fn sweep(
    graph: &CompiledGraph,
    weights: &[f64],
    world: &mut [bool],
    rng: &mut StdRng,
    clamp_evidence: bool,
) {
    for v in 0..graph.num_variables {
        if clamp_evidence && graph.is_evidence[v] {
            world[v] = graph.evidence_value[v];
            continue;
        }
        let logit = graph.conditional_logit(v, weights, |i| world[i]);
        world[v] = rng.gen::<f64>() < sigmoid(logit);
    }
}

/// Per-weight factor counts (tie sizes): gradients are averaged over a
/// weight's groundings, not summed, so step sizes are invariant to how many
/// factors share a tied weight.
fn tie_sizes(graph: &CompiledGraph) -> Vec<f64> {
    let mut refs = vec![0.0f64; graph.num_weights];
    for f in 0..graph.num_factors {
        refs[graph.factor_weight[f] as usize] += 1.0;
    }
    for r in &mut refs {
        if *r < 1.0 {
            *r = 1.0;
        }
    }
    refs
}

/// Sequential SGD weight learning. Mutates the learnable weights in `store`.
pub fn learn_weights(
    graph: &CompiledGraph,
    store: &mut WeightStore,
    opts: &LearnOptions,
) -> LearnStats {
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut weights = store.values();
    let learnable = store.learnable_mask();
    let nw = weights.len();
    let refs = tie_sizes(graph);

    let mut clamped: Vec<bool> = (0..graph.num_variables)
        .map(|v| {
            if graph.is_evidence[v] {
                graph.evidence_value[v]
            } else {
                rng.gen()
            }
        })
        .collect();
    let mut free: Vec<bool> = (0..graph.num_variables).map(|_| rng.gen()).collect();

    let mut step = opts.step_size;
    let mut gradient_norms = Vec::with_capacity(opts.epochs);
    let mut grad = vec![0.0f64; nw];
    let start = Instant::now();
    let mut epochs_run = 0;
    let mut degraded = false;

    for _ in 0..opts.epochs {
        if opts.deadline.is_some_and(|d| start.elapsed() >= d) {
            degraded = true;
            break;
        }
        for _ in 0..opts.sweeps_per_epoch {
            sweep(graph, &weights, &mut clamped, &mut rng, true);
            sweep(graph, &weights, &mut free, &mut rng, false);
        }
        grad.iter_mut().for_each(|g| *g = 0.0);
        for f in 0..graph.num_factors {
            let w = graph.factor_weight[f] as usize;
            if !learnable[w] {
                continue;
            }
            let pc = graph.factor_potential(f, |v| clamped[v]);
            let pf = graph.factor_potential(f, |v| free[v]);
            grad[w] += pc - pf;
        }
        for (g, r) in grad.iter_mut().zip(&refs) {
            *g /= r;
        }
        let norm = grad.iter().map(|g| g * g).sum::<f64>().sqrt();
        gradient_norms.push(norm);
        for w in 0..nw {
            if learnable[w] {
                weights[w] += step * grad[w] - step * opts.l2 * weights[w];
            }
        }
        step *= opts.decay;
        epochs_run += 1;
    }

    store.load_values(&weights);
    LearnStats {
        epochs_run,
        gradient_norms,
        degraded,
    }
}

/// f64 stored in an `AtomicU64`, with a CAS-free racy add for Hogwild.
pub struct AtomicF64(AtomicU64);

impl AtomicF64 {
    pub fn new(v: f64) -> Self {
        AtomicF64(AtomicU64::new(v.to_bits()))
    }

    #[inline]
    pub fn load(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    #[inline]
    pub fn store(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Hogwild add: read-modify-write without CAS retry. Lost updates are
    /// permitted — that is the whole point of Hogwild \[41\]; the sparsity of
    /// factor-weight access keeps collisions rare and convergence intact.
    #[inline]
    pub fn add_racy(&self, d: f64) {
        self.store(self.load() + d);
    }
}

/// Lock-free parallel SGD (Hogwild). `workers` threads share atomic weights;
/// each epoch they (1) sweep disjoint variable slices of the shared clamped
/// and free worlds, then (2) apply gradient updates for disjoint factor
/// slices directly to the shared weights, with only an epoch barrier.
pub fn learn_weights_hogwild(
    graph: &CompiledGraph,
    store: &mut WeightStore,
    opts: &LearnOptions,
    workers: usize,
) -> LearnStats {
    assert!(workers > 0);
    let learnable = store.learnable_mask();
    let refs = tie_sizes(graph);
    let shared: Vec<AtomicF64> = store.values().into_iter().map(AtomicF64::new).collect();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let clamped = AtomicWorld::new(graph, &mut rng, true);
    let free = AtomicWorld::new(graph, &mut rng, false);
    let var_slices = partition(graph.num_variables, workers);
    let factor_slices = partition(graph.num_factors, workers);
    let barrier = Barrier::new(workers);
    // Deadline coordination: worker 0 checks the clock in its serial slot
    // (between the second and third barriers) and raises `stop`; every
    // worker reads it after the third barrier, so all workers leave the
    // epoch loop at the same iteration and barrier counts stay aligned.
    let stop = AtomicBool::new(false);
    let epochs_done = AtomicU64::new(0);
    let start = Instant::now();

    let (shared_ref, learnable_ref, refs_ref) = (&shared, &learnable, &refs);
    let (clamped_ref, free_ref, barrier_ref) = (&clamped, &free, &barrier);
    let (stop_ref, epochs_done_ref) = (&stop, &epochs_done);

    crossbeam::thread::scope(|scope| {
        for (wi, (vslice, fslice)) in var_slices
            .iter()
            .cloned()
            .zip(factor_slices.iter().cloned())
            .enumerate()
        {
            scope.spawn(move |_| {
                let mut rng =
                    StdRng::seed_from_u64(opts.seed ^ (wi as u64).wrapping_mul(0xB5297A4D));
                let mut step = opts.step_size;
                let mut local_weights = vec![0.0f64; shared_ref.len()];
                for _ in 0..opts.epochs {
                    // Snapshot weights once per epoch (racy but consistent
                    // enough: Hogwild tolerates staleness).
                    for (lw, sw) in local_weights.iter_mut().zip(shared_ref) {
                        *lw = sw.load();
                    }
                    for _ in 0..opts.sweeps_per_epoch {
                        for v in vslice.clone() {
                            if graph.is_evidence[v] {
                                clamped_ref.set(v, graph.evidence_value[v]);
                            } else {
                                let logit = graph
                                    .conditional_logit(v, &local_weights, |i| clamped_ref.get(i));
                                clamped_ref.set(v, rng.gen::<f64>() < sigmoid(logit));
                            }
                            let logit =
                                graph.conditional_logit(v, &local_weights, |i| free_ref.get(i));
                            free_ref.set(v, rng.gen::<f64>() < sigmoid(logit));
                        }
                    }
                    barrier_ref.wait();
                    for f in fslice.clone() {
                        let w = graph.factor_weight[f] as usize;
                        if !learnable_ref[w] {
                            continue;
                        }
                        let pc = graph.factor_potential(f, |v| clamped_ref.get(v));
                        let pf = graph.factor_potential(f, |v| free_ref.get(v));
                        let g = (pc - pf) / refs_ref[w];
                        if g != 0.0 {
                            shared_ref[w].add_racy(step * g);
                        }
                    }
                    barrier_ref.wait();
                    // Regularization applied once per epoch by worker 0.
                    if wi == 0 {
                        if opts.l2 > 0.0 {
                            for (w, s) in shared_ref.iter().enumerate() {
                                if learnable_ref[w] {
                                    s.store(s.load() * (1.0 - step * opts.l2));
                                }
                            }
                        }
                        epochs_done_ref.fetch_add(1, Ordering::Relaxed);
                        if opts.deadline.is_some_and(|d| start.elapsed() >= d) {
                            stop_ref.store(true, Ordering::Relaxed);
                        }
                    }
                    barrier_ref.wait();
                    if stop_ref.load(Ordering::Relaxed) {
                        break;
                    }
                    step *= opts.decay;
                }
            });
        }
    })
    .expect("hogwild scope");

    let final_weights: Vec<f64> = shared.iter().map(AtomicF64::load).collect();
    store.load_values(&final_weights);
    let epochs_run = epochs_done.load(Ordering::Relaxed) as usize;
    LearnStats {
        epochs_run,
        gradient_norms: Vec::new(),
        degraded: epochs_run < opts.epochs,
    }
}

/// Model-averaging parallel learning \[57\]: `replicas` independent learners
/// (one per simulated NUMA node) each run `period` epochs on private weight
/// copies, then the copies are averaged; repeat until `opts.epochs` total.
pub fn learn_weights_model_averaging(
    graph: &CompiledGraph,
    store: &mut WeightStore,
    opts: &LearnOptions,
    replicas: usize,
    period: usize,
) -> LearnStats {
    assert!(replicas > 0 && period > 0);
    let rounds = opts.epochs.div_ceil(period);
    let mut current = store.values();
    let learnable = store.learnable_mask();
    let mut gradient_norms = Vec::new();
    let start = Instant::now();
    let mut epochs_total = 0;
    let mut degraded = false;

    for round in 0..rounds {
        // Hand each round's replicas whatever wall-clock remains.
        let remaining = opts.deadline.map(|d| d.saturating_sub(start.elapsed()));
        if remaining.is_some_and(|r| r.is_zero()) {
            degraded = true;
            break;
        }
        let round_opts = LearnOptions {
            epochs: period,
            step_size: opts.step_size * opts.decay.powi((round * period) as i32),
            seed: opts.seed ^ ((round as u64) << 16),
            deadline: remaining,
            ..opts.clone()
        };
        let results: Vec<(Vec<f64>, LearnStats)> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..replicas)
                .map(|r| {
                    let mut replica_store = store.clone();
                    replica_store.load_values(&current);
                    let ro = LearnOptions {
                        seed: round_opts.seed ^ (r as u64).wrapping_mul(0x2545F491),
                        ..round_opts.clone()
                    };
                    scope.spawn(move |_| {
                        let stats = learn_weights(graph, &mut replica_store, &ro);
                        (replica_store.values(), stats)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("replica"))
                .collect()
        })
        .expect("averaging scope");

        // Average learnable weights across replicas.
        for w in 0..current.len() {
            if learnable[w] {
                current[w] = results.iter().map(|(vals, _)| vals[w]).sum::<f64>() / replicas as f64;
            }
        }
        let round_degraded = results.iter().any(|(_, s)| s.degraded);
        if let Some((_, stats)) = results.into_iter().next() {
            epochs_total += stats.epochs_run;
            gradient_norms.extend(stats.gradient_norms);
        }
        if round_degraded {
            degraded = true;
            break;
        }
    }

    store.load_values(&current);
    LearnStats {
        epochs_run: epochs_total,
        gradient_norms,
        degraded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepdive_factorgraph::{FactorArg, FactorFunction, FactorGraph, Variable};

    /// A graph where feature A fires on positives and feature B on
    /// negatives: learning must drive w(A) up and w(B) down.
    fn supervised_graph(n_pos: usize, n_neg: usize) -> FactorGraph {
        let mut g = FactorGraph::new();
        let wa = g.weights.tied("feat:A", 0.0);
        let wb = g.weights.tied("feat:B", 0.0);
        for _ in 0..n_pos {
            let v = g.add_variable(Variable::evidence(true));
            g.add_factor(FactorFunction::IsTrue, vec![FactorArg::pos(v)], wa);
        }
        for _ in 0..n_neg {
            let v = g.add_variable(Variable::evidence(false));
            g.add_factor(FactorFunction::IsTrue, vec![FactorArg::pos(v)], wb);
        }
        g
    }

    #[test]
    fn sgd_learns_signed_weights_from_evidence() {
        let g = supervised_graph(30, 30);
        let c = g.compile();
        let mut store = g.weights.clone();
        let opts = LearnOptions {
            epochs: 150,
            seed: 5,
            ..LearnOptions::default()
        };
        learn_weights(&c, &mut store, &opts);
        let wa = store.value(store.lookup("feat:A").unwrap());
        let wb = store.value(store.lookup("feat:B").unwrap());
        assert!(wa > 0.3, "positive feature weight should grow, got {wa}");
        assert!(wb < -0.3, "negative feature weight should sink, got {wb}");
    }

    #[test]
    fn learned_weights_classify_held_out_variables() {
        // Train on evidence, then check a query variable with feature A gets
        // probability > 0.5.
        let mut g = supervised_graph(30, 30);
        let wa = g.weights.lookup("feat:A").unwrap();
        let q = g.add_variable(Variable::query());
        g.add_factor(FactorFunction::IsTrue, vec![FactorArg::pos(q)], wa);
        let c = g.compile();
        let mut store = g.weights.clone();
        learn_weights(
            &c,
            &mut store,
            &LearnOptions {
                epochs: 150,
                seed: 5,
                ..Default::default()
            },
        );
        let opts = crate::gibbs::GibbsOptions {
            burn_in: 100,
            samples: 2000,
            seed: 9,
            clamp_evidence: true,
            ..Default::default()
        };
        let m = crate::gibbs::gibbs_marginals(&c, &store.values(), &opts);
        assert!(
            m.probability(q.index()) > 0.7,
            "got {}",
            m.probability(q.index())
        );
    }

    #[test]
    fn fixed_weights_are_untouched() {
        let mut g = FactorGraph::new();
        let wf = g.weights.fixed("rule:prior", 3.0);
        let v = g.add_variable(Variable::evidence(false));
        g.add_factor(FactorFunction::IsTrue, vec![FactorArg::pos(v)], wf);
        let c = g.compile();
        let mut store = g.weights.clone();
        learn_weights(
            &c,
            &mut store,
            &LearnOptions {
                epochs: 50,
                ..Default::default()
            },
        );
        assert_eq!(store.value(wf), 3.0);
    }

    #[test]
    fn l2_regularization_shrinks_weights() {
        let g = supervised_graph(20, 20);
        let c = g.compile();
        let mut strong = g.weights.clone();
        let mut weak = g.weights.clone();
        learn_weights(
            &c,
            &mut weak,
            &LearnOptions {
                epochs: 120,
                l2: 0.0,
                seed: 3,
                ..Default::default()
            },
        );
        learn_weights(
            &c,
            &mut strong,
            &LearnOptions {
                epochs: 120,
                l2: 0.5,
                seed: 3,
                ..Default::default()
            },
        );
        let wa_weak = weak.value(weak.lookup("feat:A").unwrap());
        let wa_strong = strong.value(strong.lookup("feat:A").unwrap());
        assert!(wa_strong.abs() < wa_weak.abs());
    }

    #[test]
    fn hogwild_matches_sequential_direction() {
        let g = supervised_graph(30, 30);
        let c = g.compile();
        let mut store = g.weights.clone();
        let opts = LearnOptions {
            epochs: 150,
            seed: 5,
            ..Default::default()
        };
        learn_weights_hogwild(&c, &mut store, &opts, 4);
        let wa = store.value(store.lookup("feat:A").unwrap());
        let wb = store.value(store.lookup("feat:B").unwrap());
        assert!(wa > 0.3, "hogwild wa={wa}");
        assert!(wb < -0.3, "hogwild wb={wb}");
    }

    #[test]
    fn model_averaging_matches_sequential_direction() {
        let g = supervised_graph(30, 30);
        let c = g.compile();
        let mut store = g.weights.clone();
        let opts = LearnOptions {
            epochs: 120,
            seed: 5,
            ..Default::default()
        };
        learn_weights_model_averaging(&c, &mut store, &opts, 4, 20);
        let wa = store.value(store.lookup("feat:A").unwrap());
        let wb = store.value(store.lookup("feat:B").unwrap());
        assert!(wa > 0.3, "averaged wa={wa}");
        assert!(wb < -0.3, "averaged wb={wb}");
    }

    #[test]
    fn expired_deadline_stops_learning_early() {
        let g = supervised_graph(10, 10);
        let c = g.compile();
        let mut store = g.weights.clone();
        let opts = LearnOptions {
            epochs: 1000,
            deadline: Some(Duration::ZERO),
            ..Default::default()
        };
        let stats = learn_weights(&c, &mut store, &opts);
        assert!(stats.degraded);
        assert_eq!(stats.epochs_run, 0);
    }

    #[test]
    fn hogwild_deadline_stops_all_workers_consistently() {
        let g = supervised_graph(10, 10);
        let c = g.compile();
        let mut store = g.weights.clone();
        let opts = LearnOptions {
            epochs: 100_000,
            deadline: Some(Duration::from_millis(5)),
            ..Default::default()
        };
        let stats = learn_weights_hogwild(&c, &mut store, &opts, 4);
        assert!(stats.degraded, "a 5ms budget cannot fit 100k epochs");
        assert!(stats.epochs_run < 100_000);
    }

    #[test]
    fn model_averaging_respects_deadline() {
        let g = supervised_graph(10, 10);
        let c = g.compile();
        let mut store = g.weights.clone();
        let opts = LearnOptions {
            epochs: 100_000,
            deadline: Some(Duration::from_millis(5)),
            ..Default::default()
        };
        let stats = learn_weights_model_averaging(&c, &mut store, &opts, 2, 1000);
        assert!(stats.degraded);
        assert!(stats.epochs_run < 100_000);
    }

    #[test]
    fn atomic_f64_roundtrips() {
        let a = AtomicF64::new(1.5);
        a.add_racy(2.5);
        assert_eq!(a.load(), 4.0);
        a.store(-1.0);
        assert_eq!(a.load(), -1.0);
    }
}
