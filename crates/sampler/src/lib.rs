//! `deepdive-sampler`: a reproduction of **DimmWitted**, DeepDive's
//! statistical inference and learning engine (§4.2 of the paper; Zhang & Ré,
//! PVLDB 2014).
//!
//! The engine estimates per-tuple marginal probabilities with Gibbs sampling
//! over the compiled factor graph, and learns tied factor weights by
//! stochastic gradient on the evidence-clamped vs. free contrastive
//! objective. Its design axes — the ones the paper's performance claims rest
//! on — are all here:
//!
//! * **column-to-row access**: sequential scans over the CSR graph layout
//!   ([`gibbs`]);
//! * **hardware efficiency**: NUMA-aware execution with socket-local chains
//!   and simulated remote-access penalties ([`numa`]);
//! * **statistical efficiency**: model averaging across sockets and
//!   lock-free Hogwild updates ([`learn`]);
//! * a **GraphLab-style comparator** with scope locking and a scheduler
//!   queue ([`baseline`]), for the "3.7× faster than GraphLab" experiment.

pub mod baseline;
pub mod gibbs;
pub mod learn;
pub mod numa;
pub mod parallel;

pub use baseline::{GraphLabOptions, GraphLabRunStats, GraphLabStyleSampler};
pub use gibbs::{gibbs_marginals, sigmoid, GibbsOptions, GibbsSampler, Marginals};
pub use learn::{
    learn_weights, learn_weights_hogwild, learn_weights_model_averaging, AtomicF64, LearnOptions,
    LearnStats,
};
pub use numa::{
    parallel_gibbs, AtomicWorld, NumaStrategy, ParallelGibbsOptions, ParallelRunStats,
    PenaltyMeter, Topology,
};
pub use parallel::{chain_samples, chain_seed, parallel_marginals};
