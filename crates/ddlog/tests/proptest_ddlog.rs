//! Property-based tests for the DDlog front end: round-tripping through the
//! rule IR's `Display` form, and lexer/parser robustness on arbitrary input.

use deepdive_ddlog::{compile, lex, parse};
use proptest::prelude::*;

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,6}".prop_filter("keywords", |s| s != "weight" && s != "true" && s != "false")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The lexer never panics, on any input.
    #[test]
    fn lexer_total_on_arbitrary_input(s in "\\PC{0,200}") {
        let _ = lex(&s);
    }

    /// The parser never panics, on any input.
    #[test]
    fn parser_total_on_arbitrary_input(s in "\\PC{0,200}") {
        let _ = parse(&s);
    }

    /// Generated single-rule programs (decl + rule) compile, and the lowered
    /// rule's Display form re-parses to an equivalent rule.
    #[test]
    fn generated_rules_compile_and_roundtrip(
        rel_a in ident(),
        rel_b in ident(),
        vars in proptest::collection::vec("[a-z][a-z0-9]{0,3}", 1..4),
    ) {
        prop_assume!(rel_a != rel_b);
        // Distinct variable names.
        let mut vs = vars.clone();
        vs.sort();
        vs.dedup();
        let arity = vs.len();
        let cols = |prefix: &str| {
            (0..arity)
                .map(|i| format!("{prefix}{i} int"))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let terms = vs.join(", ");
        let src = format!(
            "{rel_a}({}).\n{rel_b}({}).\n{rel_b}({terms}) :- {rel_a}({terms}).\n",
            cols("a"),
            cols("b"),
        );
        let prog = compile(&src).expect("generated program must compile");
        prop_assert_eq!(prog.derivation_rules.len(), 1);
        let rule = &prog.derivation_rules[0];

        // Round-trip the rule body through its Display form.
        let rendered = format!("{rule}.");
        let src2 = format!("{rel_a}({}).\n{rel_b}({}).\n{rendered}\n", cols("a"), cols("b"));
        let prog2 = compile(&src2).expect("rendered rule must re-compile");
        prop_assert_eq!(&prog2.derivation_rules[0].head, &rule.head);
        prop_assert_eq!(&prog2.derivation_rules[0].body, &rule.body);
    }

    /// Weight clauses parse for any finite float literal.
    #[test]
    fn fixed_weights_parse(w in -1e6f64..1e6) {
        let src = format!(
            "B(x int).\nA?(x int).\nA(x) :- B(x) weight = {w:?}.\n"
        );
        let prog = compile(&src).expect("weight program");
        prop_assert_eq!(prog.factor_rules.len(), 1);
    }
}
