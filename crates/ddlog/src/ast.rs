//! Abstract syntax for the DDlog dialect.
//!
//! The term/atom/literal layer is shared with `deepdive-storage`'s rule IR so
//! lowering is mostly a re-arrangement, not a translation.

use deepdive_storage::{Atom, Builtin, Literal, UdfCall, ValueType};
use serde::{Deserialize, Serialize};

/// A parsed DDlog program.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProgramAst {
    pub statements: Vec<Statement>,
}

#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    Decl(RelationDecl),
    Rule(RuleStmt),
}

/// `Name(col type, ...)` or `Name?(col type, ...)` — the `?` marks a *query*
/// relation whose tuples become Boolean random variables (§3.3).
///
/// Declarations accept annotations; `@cardinality(N)` hints the expected row
/// count so the join planner can order atoms before the relation is loaded.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RelationDecl {
    pub annotations: Vec<Annotation>,
    pub name: String,
    pub query: bool,
    pub columns: Vec<(String, ValueType)>,
    pub line: usize,
}

/// One rule:
///
/// * derivation rule — `Head(args) :- body.` (candidate mapping,
///   supervision);
/// * factor rule — any rule with a `weight = …` clause, and/or with an
///   implication head `A(x) ^ B(x) => C(x) :- body weight = w.`
#[derive(Debug, Clone, PartialEq)]
pub struct RuleStmt {
    pub annotations: Vec<Annotation>,
    /// Heads. For `=>` rules the consequent is the LAST element and
    /// `implies` is true.
    pub heads: Vec<Atom>,
    pub implies: bool,
    pub body: Vec<Literal>,
    pub builtins: Vec<Builtin>,
    pub udfs: Vec<UdfCall>,
    pub weight: Option<WeightSpec>,
    pub line: usize,
}

/// `@name("...")` / `@function(equal)` annotations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Annotation {
    pub key: String,
    pub value: String,
}

/// The `weight = …` clause of Ex. 3.2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WeightSpec {
    /// `weight = 2.5` — fixed, not learned.
    Fixed(f64),
    /// `weight = f` where `f` is a body variable (usually a UDF output):
    /// groundings with equal values of `f` share one learnable weight
    /// ("weight tying").
    Tied(String),
    /// `weight = ?` spelled as a bare learnable constant: one learnable
    /// weight shared by every grounding of this rule.
    PerRule,
}
