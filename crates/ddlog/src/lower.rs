//! Lowering: AST → validated program (schemas + derivation rules + factor
//! rules).
//!
//! The split mirrors DeepDive's execution phases (§3): derivation rules run
//! on the relational store (candidate generation §3.1, supervision §3.2);
//! factor rules drive grounding (§3.3), each grounding producing one factor
//! whose weight is fixed, per-rule learnable, or tied by a feature value.

use crate::ast::{ProgramAst, RelationDecl, RuleStmt, Statement, WeightSpec};
use crate::parser::{parse, ParseError};
use deepdive_factorgraph::FactorFunction;
use deepdive_storage::{Atom, Builtin, Literal, Rule, Schema, UdfCall};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Semantic error produced during lowering.
#[derive(Debug, Clone, PartialEq)]
pub struct LowerError {
    pub message: String,
    pub line: usize,
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "semantic error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LowerError {}

/// Errors from compiling DDlog source.
#[derive(Debug, Clone, PartialEq)]
pub enum DdlogError {
    Parse(ParseError),
    Lower(LowerError),
}

impl fmt::Display for DdlogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DdlogError::Parse(e) => e.fmt(f),
            DdlogError::Lower(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for DdlogError {}

impl From<ParseError> for DdlogError {
    fn from(e: ParseError) -> Self {
        DdlogError::Parse(e)
    }
}

impl From<LowerError> for DdlogError {
    fn from(e: LowerError) -> Self {
        DdlogError::Lower(e)
    }
}

/// A factor rule ready for grounding: heads become factor arguments (the
/// consequent last for `Imply`), the body is a relational query, and the
/// weight spec picks fixed / per-rule / tied-by-value semantics.
#[derive(Debug, Clone, PartialEq)]
pub struct FactorRule {
    pub name: String,
    pub function: FactorFunction,
    pub heads: Vec<Atom>,
    pub body: Vec<Literal>,
    pub builtins: Vec<Builtin>,
    pub udfs: Vec<UdfCall>,
    pub weight: WeightSpec,
}

/// A fully lowered DDlog program.
#[derive(Debug, Clone, Default)]
pub struct DdlogProgram {
    /// Declared relations, with the query flag (`?`).
    pub schemas: Vec<(Schema, bool)>,
    /// Rules executed on the relational store.
    pub derivation_rules: Vec<Rule>,
    /// Rules grounded into factors.
    pub factor_rules: Vec<FactorRule>,
    /// `@cardinality(N)` declaration hints: relation name → expected row
    /// count, seeding the join planner's statistics before data arrives.
    pub cardinality_hints: HashMap<String, u64>,
}

impl DdlogProgram {
    pub fn query_relations(&self) -> impl Iterator<Item = &Schema> {
        self.schemas.iter().filter(|(_, q)| *q).map(|(s, _)| s)
    }

    pub fn schema(&self, name: &str) -> Option<&Schema> {
        self.schemas
            .iter()
            .find(|(s, _)| s.name == name)
            .map(|(s, _)| s)
    }

    pub fn is_query(&self, name: &str) -> bool {
        self.schemas.iter().any(|(s, q)| *q && s.name == name)
    }
}

/// Compile DDlog source end to end (parse + lower).
pub fn compile(src: &str) -> Result<DdlogProgram, DdlogError> {
    let ast = parse(src)?;
    Ok(lower(&ast)?)
}

/// Lower a parsed AST, validating declarations and rule shapes.
pub fn lower(ast: &ProgramAst) -> Result<DdlogProgram, LowerError> {
    let mut prog = DdlogProgram::default();
    let mut declared: HashMap<String, (usize, bool)> = HashMap::new(); // name -> (arity, query)

    for stmt in &ast.statements {
        if let Statement::Decl(d) = stmt {
            lower_decl(d, &mut prog, &mut declared)?;
        }
    }
    let mut auto_name = 0usize;
    for stmt in &ast.statements {
        if let Statement::Rule(r) = stmt {
            lower_rule(r, &mut prog, &declared, &mut auto_name)?;
        }
    }
    Ok(prog)
}

fn lower_decl(
    d: &RelationDecl,
    prog: &mut DdlogProgram,
    declared: &mut HashMap<String, (usize, bool)>,
) -> Result<(), LowerError> {
    if declared.contains_key(&d.name) {
        return Err(LowerError {
            message: format!("relation `{}` declared twice", d.name),
            line: d.line,
        });
    }
    let mut b = Schema::build(&d.name);
    let mut seen = HashSet::new();
    for (col, ty) in &d.columns {
        if !seen.insert(col.clone()) {
            return Err(LowerError {
                message: format!("duplicate column `{col}` in `{}`", d.name),
                line: d.line,
            });
        }
        b = b.col(col, *ty);
    }
    if let Some(a) = d.annotations.iter().find(|a| a.key == "cardinality") {
        let n: u64 = a.value.parse().map_err(|_| LowerError {
            message: format!(
                "@cardinality on `{}` needs a non-negative integer, got `{}`",
                d.name, a.value
            ),
            line: d.line,
        })?;
        prog.cardinality_hints.insert(d.name.clone(), n);
    }
    declared.insert(d.name.clone(), (d.columns.len(), d.query));
    prog.schemas.push((b.finish(), d.query));
    Ok(())
}

fn lower_rule(
    r: &RuleStmt,
    prog: &mut DdlogProgram,
    declared: &HashMap<String, (usize, bool)>,
    auto_name: &mut usize,
) -> Result<(), LowerError> {
    // All referenced relations must be declared with matching arity.
    let check_atom = |a: &Atom| -> Result<(), LowerError> {
        match declared.get(&a.relation) {
            None => Err(LowerError {
                message: format!("relation `{}` is not declared", a.relation),
                line: r.line,
            }),
            Some((arity, _)) if *arity != a.terms.len() => Err(LowerError {
                message: format!(
                    "`{}` has arity {}, used with {} terms",
                    a.relation,
                    arity,
                    a.terms.len()
                ),
                line: r.line,
            }),
            _ => Ok(()),
        }
    };
    for h in &r.heads {
        check_atom(h)?;
    }
    for l in &r.body {
        check_atom(&l.atom)?;
    }

    let name = r
        .annotations
        .iter()
        .find(|a| a.key == "name")
        .map(|a| a.value.clone())
        .unwrap_or_else(|| {
            *auto_name += 1;
            format!("rule_{auto_name}")
        });

    let is_factor_rule = r.weight.is_some() || r.implies;
    if !is_factor_rule {
        // Derivation rule: exactly one head, executed on the store.
        let rule = Rule {
            name,
            head: r.heads[0].clone(),
            body: r.body.clone(),
            builtins: r.builtins.clone(),
            udfs: r.udfs.clone(),
        };
        prog.derivation_rules.push(rule);
        return Ok(());
    }

    // Factor rule: all heads must be query relations.
    for h in &r.heads {
        let (_, query) = declared[&h.relation];
        if !query {
            return Err(LowerError {
                message: format!(
                    "factor-rule head `{}` must be a query relation (declare it with `?`)",
                    h.relation
                ),
                line: r.line,
            });
        }
    }

    let function = match r.annotations.iter().find(|a| a.key == "function") {
        Some(a) => match a.value.as_str() {
            "imply" => FactorFunction::Imply,
            "and" => FactorFunction::And,
            "or" => FactorFunction::Or,
            "equal" => FactorFunction::Equal,
            "istrue" => FactorFunction::IsTrue,
            "linear" => FactorFunction::Linear,
            "ratio" => FactorFunction::Ratio,
            other => {
                return Err(LowerError {
                    message: format!("unknown factor function `{other}`"),
                    line: r.line,
                })
            }
        },
        None => {
            if r.implies {
                FactorFunction::Imply
            } else {
                FactorFunction::IsTrue
            }
        }
    };
    if function == FactorFunction::IsTrue && r.heads.len() != 1 {
        return Err(LowerError {
            message: "IsTrue factor rules take exactly one head".into(),
            line: r.line,
        });
    }

    let weight = r.weight.clone().unwrap_or(WeightSpec::PerRule);
    prog.factor_rules.push(FactorRule {
        name,
        function,
        heads: r.heads.clone(),
        body: r.body.clone(),
        builtins: r.builtins.clone(),
        udfs: r.udfs.clone(),
        weight,
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPOUSE: &str = r#"
        # Schemas (Figure 3 of the paper)
        PersonCandidate(s id, m id).
        Sentence(s id, content text).
        EL(m id, e text).
        Married(e1 text, e2 text).
        MarriedCandidate(m1 id, m2 id).
        MarriedMentions_Ev(m1 id, m2 id, label bool).
        MarriedMentions?(m1 id, m2 id).

        # (R1) candidate mapping
        MarriedCandidate(m1, m2) :-
            PersonCandidate(s, m1), PersonCandidate(s, m2), m1 < m2.

        # (S1) distant supervision
        MarriedMentions_Ev(m1, m2, true) :-
            MarriedCandidate(m1, m2), EL(m1, e1), EL(m2, e2), Married(e1, e2).

        # (FE1) feature extraction with weight tying
        @name("fe1")
        MarriedMentions(m1, m2) :-
            MarriedCandidate(m1, m2), Sentence(s, sent),
            f = phrase(m1, m2, sent)
            weight = f.
    "#;

    #[test]
    fn lowers_the_paper_example() {
        let p = compile(SPOUSE).unwrap();
        assert_eq!(p.schemas.len(), 7);
        assert_eq!(p.derivation_rules.len(), 2);
        assert_eq!(p.factor_rules.len(), 1);
        let fr = &p.factor_rules[0];
        assert_eq!(fr.name, "fe1");
        assert_eq!(fr.function, FactorFunction::IsTrue);
        assert_eq!(fr.weight, WeightSpec::Tied("f".into()));
        assert!(p.is_query("MarriedMentions"));
        assert!(!p.is_query("MarriedCandidate"));
    }

    #[test]
    fn implication_rules_become_imply_factors() {
        let src = r#"
            A?(x int).
            B?(x int).
            D(x int).
            A(x) => B(x) :- D(x) weight = 3.
        "#;
        let p = compile(src).unwrap();
        let fr = &p.factor_rules[0];
        assert_eq!(fr.function, FactorFunction::Imply);
        assert_eq!(fr.heads.len(), 2);
        assert_eq!(fr.weight, WeightSpec::Fixed(3.0));
    }

    #[test]
    fn function_annotation_overrides() {
        let src = r#"
            A?(x int).
            B?(x int).
            D(x int).
            @function(equal)
            A(x) => B(x) :- D(x) weight = ?.
        "#;
        let p = compile(src).unwrap();
        assert_eq!(p.factor_rules[0].function, FactorFunction::Equal);
        assert_eq!(p.factor_rules[0].weight, WeightSpec::PerRule);
    }

    #[test]
    fn undeclared_relation_rejected() {
        let err = compile("A(x) :- B(x).").unwrap_err();
        assert!(matches!(err, DdlogError::Lower(_)));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let src = "B(x int).\nA(x int).\nA(x) :- B(x, y).";
        let err = compile(src).unwrap_err();
        let DdlogError::Lower(e) = err else { panic!() };
        assert!(e.message.contains("arity"));
    }

    #[test]
    fn factor_head_must_be_query_relation() {
        let src = "A(x int).\nB(x int).\nA(x) :- B(x) weight = 1.";
        let err = compile(src).unwrap_err();
        let DdlogError::Lower(e) = err else { panic!() };
        assert!(e.message.contains("query relation"));
    }

    #[test]
    fn duplicate_declaration_rejected() {
        let err = compile("A(x int).\nA(y int).").unwrap_err();
        assert!(matches!(err, DdlogError::Lower(_)));
    }

    #[test]
    fn duplicate_column_rejected() {
        let err = compile("A(x int, x text).").unwrap_err();
        assert!(matches!(err, DdlogError::Lower(_)));
    }

    #[test]
    fn cardinality_hints_are_collected() {
        let src = "@cardinality(24000) B(x int).\nA(x int).\nA(x) :- B(x).";
        let p = compile(src).unwrap();
        assert_eq!(p.cardinality_hints.get("B"), Some(&24000));
        assert!(!p.cardinality_hints.contains_key("A"));
    }

    #[test]
    fn bad_cardinality_hint_rejected() {
        let err = compile("@cardinality(lots) B(x int).").unwrap_err();
        let DdlogError::Lower(e) = err else { panic!() };
        assert!(e.message.contains("cardinality"));
    }

    #[test]
    fn rules_get_auto_names() {
        let src = "B(x int).\nA(x int).\nA(x) :- B(x).";
        let p = compile(src).unwrap();
        assert_eq!(p.derivation_rules[0].name, "rule_1");
    }
}
