//! Lexer for the DDlog dialect.
//!
//! DDlog is the "high-level datalog-like language" of §2.3 that DeepDive
//! programs are written in. Tokens: identifiers, numbers, strings,
//! punctuation (`:- , ( ) . ! = != < <= > >= => ? @ ^`), comments (`#` and
//! `//` to end of line).

use std::fmt;

/// One token with its source position (1-based line/column).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: usize,
    pub col: usize,
}

#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    /// `:-`
    Turnstile,
    /// `=>`
    Implies,
    Comma,
    LParen,
    RParen,
    Dot,
    Bang,
    Question,
    At,
    Caret,
    Underscore,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Int(i) => write!(f, "integer `{i}`"),
            TokenKind::Float(x) => write!(f, "float `{x}`"),
            TokenKind::Str(s) => write!(f, "string {s:?}"),
            TokenKind::Turnstile => f.write_str("`:-`"),
            TokenKind::Implies => f.write_str("`=>`"),
            TokenKind::Comma => f.write_str("`,`"),
            TokenKind::LParen => f.write_str("`(`"),
            TokenKind::RParen => f.write_str("`)`"),
            TokenKind::Dot => f.write_str("`.`"),
            TokenKind::Bang => f.write_str("`!`"),
            TokenKind::Question => f.write_str("`?`"),
            TokenKind::At => f.write_str("`@`"),
            TokenKind::Caret => f.write_str("`^`"),
            TokenKind::Underscore => f.write_str("`_`"),
            TokenKind::Eq => f.write_str("`=`"),
            TokenKind::Ne => f.write_str("`!=`"),
            TokenKind::Lt => f.write_str("`<`"),
            TokenKind::Le => f.write_str("`<=`"),
            TokenKind::Gt => f.write_str("`>`"),
            TokenKind::Ge => f.write_str("`>=`"),
            TokenKind::Eof => f.write_str("end of input"),
        }
    }
}

/// Lexing error with position.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    pub message: String,
    pub line: usize,
    pub col: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lex error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for LexError {}

/// Tokenize a DDlog source string.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;
    let mut line = 1usize;
    let mut col = 1usize;

    macro_rules! bump {
        () => {{
            if chars[i] == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < chars.len() {
        let (l, c) = (line, col);
        let ch = chars[i];
        match ch {
            ' ' | '\t' | '\r' | '\n' => bump!(),
            '#' => {
                while i < chars.len() && chars[i] != '\n' {
                    bump!();
                }
            }
            '/' if i + 1 < chars.len() && chars[i + 1] == '/' => {
                while i < chars.len() && chars[i] != '\n' {
                    bump!();
                }
            }
            ',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    line: l,
                    col: c,
                });
                bump!();
            }
            '(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    line: l,
                    col: c,
                });
                bump!();
            }
            ')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    line: l,
                    col: c,
                });
                bump!();
            }
            '.' => {
                tokens.push(Token {
                    kind: TokenKind::Dot,
                    line: l,
                    col: c,
                });
                bump!();
            }
            '?' => {
                tokens.push(Token {
                    kind: TokenKind::Question,
                    line: l,
                    col: c,
                });
                bump!();
            }
            '@' => {
                tokens.push(Token {
                    kind: TokenKind::At,
                    line: l,
                    col: c,
                });
                bump!();
            }
            '^' => {
                tokens.push(Token {
                    kind: TokenKind::Caret,
                    line: l,
                    col: c,
                });
                bump!();
            }
            '!' => {
                bump!();
                if i < chars.len() && chars[i] == '=' {
                    bump!();
                    tokens.push(Token {
                        kind: TokenKind::Ne,
                        line: l,
                        col: c,
                    });
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Bang,
                        line: l,
                        col: c,
                    });
                }
            }
            '=' => {
                bump!();
                if i < chars.len() && chars[i] == '>' {
                    bump!();
                    tokens.push(Token {
                        kind: TokenKind::Implies,
                        line: l,
                        col: c,
                    });
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Eq,
                        line: l,
                        col: c,
                    });
                }
            }
            '<' => {
                bump!();
                if i < chars.len() && chars[i] == '=' {
                    bump!();
                    tokens.push(Token {
                        kind: TokenKind::Le,
                        line: l,
                        col: c,
                    });
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Lt,
                        line: l,
                        col: c,
                    });
                }
            }
            '>' => {
                bump!();
                if i < chars.len() && chars[i] == '=' {
                    bump!();
                    tokens.push(Token {
                        kind: TokenKind::Ge,
                        line: l,
                        col: c,
                    });
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Gt,
                        line: l,
                        col: c,
                    });
                }
            }
            ':' => {
                bump!();
                if i < chars.len() && chars[i] == '-' {
                    bump!();
                    tokens.push(Token {
                        kind: TokenKind::Turnstile,
                        line: l,
                        col: c,
                    });
                } else {
                    return Err(LexError {
                        message: "expected `-` after `:`".into(),
                        line: l,
                        col: c,
                    });
                }
            }
            '"' => {
                bump!();
                let mut s = String::new();
                loop {
                    if i >= chars.len() {
                        return Err(LexError {
                            message: "unterminated string literal".into(),
                            line: l,
                            col: c,
                        });
                    }
                    match chars[i] {
                        '"' => {
                            bump!();
                            break;
                        }
                        '\\' => {
                            bump!();
                            if i >= chars.len() {
                                return Err(LexError {
                                    message: "dangling escape".into(),
                                    line: l,
                                    col: c,
                                });
                            }
                            let esc = chars[i];
                            s.push(match esc {
                                'n' => '\n',
                                't' => '\t',
                                '\\' => '\\',
                                '"' => '"',
                                other => other,
                            });
                            bump!();
                        }
                        other => {
                            s.push(other);
                            bump!();
                        }
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Str(s),
                    line: l,
                    col: c,
                });
            }
            '-' | '0'..='9' => {
                let mut s = String::new();
                if ch == '-' {
                    s.push('-');
                    bump!();
                    if i >= chars.len() || !chars[i].is_ascii_digit() {
                        return Err(LexError {
                            message: "expected digit after `-`".into(),
                            line: l,
                            col: c,
                        });
                    }
                }
                let mut is_float = false;
                while i < chars.len()
                    && (chars[i].is_ascii_digit()
                        || (chars[i] == '.'
                            && !is_float
                            && i + 1 < chars.len()
                            && chars[i + 1].is_ascii_digit()))
                {
                    if chars[i] == '.' {
                        is_float = true;
                    }
                    s.push(chars[i]);
                    bump!();
                }
                if is_float {
                    let v = s.parse::<f64>().map_err(|e| LexError {
                        message: format!("bad float `{s}`: {e}"),
                        line: l,
                        col: c,
                    })?;
                    tokens.push(Token {
                        kind: TokenKind::Float(v),
                        line: l,
                        col: c,
                    });
                } else {
                    let v = s.parse::<i64>().map_err(|e| LexError {
                        message: format!("bad integer `{s}`: {e}"),
                        line: l,
                        col: c,
                    })?;
                    tokens.push(Token {
                        kind: TokenKind::Int(v),
                        line: l,
                        col: c,
                    });
                }
            }
            '_' if i + 1 >= chars.len() || !is_ident_char(chars[i + 1]) => {
                tokens.push(Token {
                    kind: TokenKind::Underscore,
                    line: l,
                    col: c,
                });
                bump!();
            }
            c0 if c0.is_alphabetic() || c0 == '_' => {
                let mut s = String::new();
                while i < chars.len() && is_ident_char(chars[i]) {
                    s.push(chars[i]);
                    bump!();
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(s),
                    line: l,
                    col: c,
                });
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character `{other}`"),
                    line: l,
                    col: c,
                });
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
        col,
    });
    Ok(tokens)
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_rule_punctuation() {
        let ks = kinds("Q(x) :- R(x, _), x != 3.");
        assert!(ks.contains(&TokenKind::Turnstile));
        assert!(ks.contains(&TokenKind::Underscore));
        assert!(ks.contains(&TokenKind::Ne));
        assert_eq!(*ks.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn lexes_numbers_and_strings() {
        let ks = kinds(r#"W(1, -2, 3.5, "a\"b")"#);
        assert!(ks.contains(&TokenKind::Int(1)));
        assert!(ks.contains(&TokenKind::Int(-2)));
        assert!(ks.contains(&TokenKind::Float(3.5)));
        assert!(ks.contains(&TokenKind::Str("a\"b".into())));
    }

    #[test]
    fn comments_are_skipped() {
        let ks = kinds("# full line\nQ(x) // trailing\n:- R(x).");
        assert!(ks
            .iter()
            .any(|k| matches!(k, TokenKind::Ident(s) if s == "Q")));
        assert!(ks.contains(&TokenKind::Turnstile));
    }

    #[test]
    fn implies_vs_eq_and_ge() {
        let ks = kinds("A => B, x >= 1, y = 2");
        assert!(ks.contains(&TokenKind::Implies));
        assert!(ks.contains(&TokenKind::Ge));
        assert!(ks.contains(&TokenKind::Eq));
    }

    #[test]
    fn positions_are_tracked() {
        let ts = lex("Q(x)\n  :- R(x).").unwrap();
        let turnstile = ts.iter().find(|t| t.kind == TokenKind::Turnstile).unwrap();
        assert_eq!(turnstile.line, 2);
        assert_eq!(turnstile.col, 3);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("Q(\"oops)").is_err());
    }

    #[test]
    fn underscore_prefixed_ident_is_ident() {
        let ks = kinds("_foo _");
        assert!(matches!(&ks[0], TokenKind::Ident(s) if s == "_foo"));
        assert_eq!(ks[1], TokenKind::Underscore);
    }
}
