//! Recursive-descent parser for the DDlog dialect.
//!
//! ```text
//! program    := statement* EOF
//! statement  := decl | rule
//! decl       := IDENT '?'? '(' IDENT TYPE (',' IDENT TYPE)* ')' '.'
//! rule       := annotation* atom ('^' atom)* ('=>' atom)? ':-' body wclause? '.'
//! annotation := '@' IDENT '(' (STRING | IDENT) ')'
//! body       := item (',' item)*
//! item       := '!'? atom | term CMP term | IDENT '=' IDENT '(' terms ')'
//! atom       := IDENT '(' term (',' term)* ')'
//! term       := IDENT | '_' | INT | FLOAT | STRING | 'true' | 'false'
//! wclause    := 'weight' '=' (NUMBER | IDENT | '?')
//! ```

use crate::ast::{Annotation, ProgramAst, RelationDecl, RuleStmt, Statement, WeightSpec};
use crate::lexer::{lex, Token, TokenKind};
use deepdive_storage::{Atom, CmpOp, Literal, Term, UdfCall, Value, ValueType};
use std::fmt;

/// Parse error with source position.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub message: String,
    pub line: usize,
    pub col: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse DDlog source into an AST.
pub fn parse(src: &str) -> Result<ProgramAst, ParseError> {
    let tokens = lex(src).map_err(|e| ParseError {
        message: e.message.clone(),
        line: e.line,
        col: e.col,
    })?;
    Parser { tokens, pos: 0 }.program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn peek_at(&self, off: usize) -> &TokenKind {
        &self.tokens[(self.pos + off).min(self.tokens.len() - 1)].kind
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        let t = self.peek();
        Err(ParseError {
            message: message.into(),
            line: t.line,
            col: t.col,
        })
    }

    fn expect(&mut self, kind: TokenKind) -> Result<Token, ParseError> {
        if self.peek().kind == kind {
            Ok(self.bump())
        } else {
            self.err(format!("expected {kind}, found {}", self.peek().kind))
        }
    }

    fn eat(&mut self, kind: TokenKind) -> bool {
        if self.peek().kind == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().kind.clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    fn program(&mut self) -> Result<ProgramAst, ParseError> {
        let mut statements = Vec::new();
        while self.peek().kind != TokenKind::Eof {
            statements.push(self.statement()?);
        }
        Ok(ProgramAst { statements })
    }

    fn statement(&mut self) -> Result<Statement, ParseError> {
        // Annotations may precede either a decl (`@cardinality(N)`) or a rule
        // (`@name(...)`, `@function(...)`), so parse them first.
        let mut annotations = Vec::new();
        while self.peek().kind == TokenKind::At {
            annotations.push(self.annotation()?);
        }
        // Decl lookahead: IDENT ('?')? '(' IDENT IDENT — two consecutive
        // identifiers inside the parens means `name type` column defs.
        if matches!(self.peek().kind, TokenKind::Ident(_)) {
            let mut off = 1;
            if *self.peek_at(off) == TokenKind::Question {
                off += 1;
            }
            if *self.peek_at(off) == TokenKind::LParen
                && matches!(self.peek_at(off + 1), TokenKind::Ident(_))
                && matches!(self.peek_at(off + 2), TokenKind::Ident(_))
            {
                return Ok(Statement::Decl(self.decl(annotations)?));
            }
        }
        Ok(Statement::Rule(self.rule(annotations)?))
    }

    fn decl(&mut self, annotations: Vec<Annotation>) -> Result<RelationDecl, ParseError> {
        let line = self.peek().line;
        let name = self.ident()?;
        let query = self.eat(TokenKind::Question);
        self.expect(TokenKind::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col = self.ident()?;
            let ty_tok = self.peek().clone();
            let ty_name = self.ident()?;
            let ty = match ty_name.as_str() {
                "int" => ValueType::Int,
                "float" => ValueType::Float,
                "text" => ValueType::Text,
                "bool" => ValueType::Bool,
                "id" => ValueType::Id,
                other => {
                    return Err(ParseError {
                        message: format!(
                            "unknown column type `{other}` (expected int/float/text/bool/id)"
                        ),
                        line: ty_tok.line,
                        col: ty_tok.col,
                    })
                }
            };
            columns.push((col, ty));
            if !self.eat(TokenKind::Comma) {
                break;
            }
        }
        self.expect(TokenKind::RParen)?;
        self.expect(TokenKind::Dot)?;
        Ok(RelationDecl {
            annotations,
            name,
            query,
            columns,
            line,
        })
    }

    fn annotation(&mut self) -> Result<Annotation, ParseError> {
        self.expect(TokenKind::At)?;
        let key = self.ident()?;
        self.expect(TokenKind::LParen)?;
        let value = match self.peek().kind.clone() {
            TokenKind::Str(s) => {
                self.bump();
                s
            }
            TokenKind::Ident(s) => {
                self.bump();
                s
            }
            // `@cardinality(50000)` — numeric annotation values are kept as
            // their decimal rendering; lowering parses them back.
            TokenKind::Int(i) => {
                self.bump();
                i.to_string()
            }
            other => {
                return self.err(format!(
                    "expected string, identifier, or integer, found {other}"
                ))
            }
        };
        self.expect(TokenKind::RParen)?;
        Ok(Annotation { key, value })
    }

    fn rule(&mut self, annotations: Vec<Annotation>) -> Result<RuleStmt, ParseError> {
        let line = self.peek().line;
        let mut heads = vec![self.atom()?];
        while self.eat(TokenKind::Caret) {
            heads.push(self.atom()?);
        }
        let implies = if self.eat(TokenKind::Implies) {
            heads.push(self.atom()?);
            true
        } else {
            if heads.len() > 1 {
                return self.err("multiple heads require `=>` (e.g. `A(x) ^ B(x) => C(x)`)");
            }
            false
        };
        self.expect(TokenKind::Turnstile)?;

        let mut body = Vec::new();
        let mut builtins = Vec::new();
        let mut udfs = Vec::new();
        let mut weight = None;
        let at_weight_clause = |p: &Self| {
            matches!(&p.peek().kind, TokenKind::Ident(s) if s == "weight")
                && *p.peek_at(1) == TokenKind::Eq
        };
        loop {
            // The `weight = …` clause trails the body with no comma (the
            // paper's FE1 syntax), but tolerate a comma before it too.
            if at_weight_clause(self) {
                break;
            }
            self.body_item(&mut body, &mut builtins, &mut udfs)?;
            if !self.eat(TokenKind::Comma) {
                break;
            }
        }
        if at_weight_clause(self) {
            self.bump();
            self.bump();
            weight = Some(match self.peek().kind.clone() {
                TokenKind::Float(x) => {
                    self.bump();
                    WeightSpec::Fixed(x)
                }
                TokenKind::Int(i) => {
                    self.bump();
                    WeightSpec::Fixed(i as f64)
                }
                TokenKind::Question => {
                    self.bump();
                    WeightSpec::PerRule
                }
                TokenKind::Ident(v) => {
                    self.bump();
                    WeightSpec::Tied(v)
                }
                other => return self.err(format!("bad weight spec: {other}")),
            });
        }
        self.expect(TokenKind::Dot)?;
        Ok(RuleStmt {
            annotations,
            heads,
            implies,
            body,
            builtins,
            udfs,
            weight,
            line,
        })
    }

    fn body_item(
        &mut self,
        body: &mut Vec<Literal>,
        builtins: &mut Vec<deepdive_storage::Builtin>,
        udfs: &mut Vec<UdfCall>,
    ) -> Result<(), ParseError> {
        // Negated atom.
        if self.eat(TokenKind::Bang) {
            body.push(Literal::neg(self.atom()?));
            return Ok(());
        }
        // UDF binding: IDENT '=' IDENT '('
        if matches!(self.peek().kind, TokenKind::Ident(_))
            && *self.peek_at(1) == TokenKind::Eq
            && matches!(self.peek_at(2), TokenKind::Ident(_))
            && *self.peek_at(3) == TokenKind::LParen
        {
            let out = self.ident()?;
            self.expect(TokenKind::Eq)?;
            let name = self.ident()?;
            self.expect(TokenKind::LParen)?;
            let mut args = Vec::new();
            if self.peek().kind != TokenKind::RParen {
                loop {
                    args.push(self.term()?);
                    if !self.eat(TokenKind::Comma) {
                        break;
                    }
                }
            }
            self.expect(TokenKind::RParen)?;
            udfs.push(UdfCall { name, args, out });
            return Ok(());
        }
        // Positive atom: IDENT '('
        if matches!(self.peek().kind, TokenKind::Ident(_)) && *self.peek_at(1) == TokenKind::LParen
        {
            body.push(Literal::pos(self.atom()?));
            return Ok(());
        }
        // Comparison: term CMP term.
        let left = self.term()?;
        let op = match self.peek().kind {
            TokenKind::Eq => CmpOp::Eq,
            TokenKind::Ne => CmpOp::Ne,
            TokenKind::Lt => CmpOp::Lt,
            TokenKind::Le => CmpOp::Le,
            TokenKind::Gt => CmpOp::Gt,
            TokenKind::Ge => CmpOp::Ge,
            ref other => return self.err(format!("expected comparison operator, found {other}")),
        };
        self.bump();
        let right = self.term()?;
        builtins.push(deepdive_storage::Builtin { left, op, right });
        Ok(())
    }

    fn atom(&mut self) -> Result<Atom, ParseError> {
        let relation = self.ident()?;
        self.expect(TokenKind::LParen)?;
        let mut terms = Vec::new();
        if self.peek().kind != TokenKind::RParen {
            loop {
                terms.push(self.term()?);
                if !self.eat(TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen)?;
        Ok(Atom { relation, terms })
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        match self.peek().kind.clone() {
            TokenKind::Underscore => {
                self.bump();
                Ok(Term::Wildcard)
            }
            TokenKind::Int(i) => {
                self.bump();
                Ok(Term::Const(Value::Int(i)))
            }
            TokenKind::Float(x) => {
                self.bump();
                Ok(Term::Const(Value::Float(x)))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Term::Const(Value::text(s)))
            }
            TokenKind::Ident(s) if s == "true" => {
                self.bump();
                Ok(Term::Const(Value::Bool(true)))
            }
            TokenKind::Ident(s) if s == "false" => {
                self.bump();
                Ok(Term::Const(Value::Bool(false)))
            }
            TokenKind::Ident(s) => {
                self.bump();
                Ok(Term::Var(s))
            }
            other => self.err(format!("expected term, found {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_declarations() {
        let p = parse("PersonCandidate(s id, m id).\nMarried?(m1 id, m2 id).").unwrap();
        assert_eq!(p.statements.len(), 2);
        let Statement::Decl(d) = &p.statements[0] else {
            panic!("decl")
        };
        assert_eq!(d.name, "PersonCandidate");
        assert!(!d.query);
        let Statement::Decl(d) = &p.statements[1] else {
            panic!("decl")
        };
        assert!(d.query);
        assert_eq!(d.columns[1], ("m2".into(), ValueType::Id));
    }

    #[test]
    fn parses_candidate_mapping_rule() {
        let src =
            "MarriedCandidate(m1, m2) :- PersonCandidate(s, m1), PersonCandidate(s, m2), m1 < m2.";
        let p = parse(src).unwrap();
        let Statement::Rule(r) = &p.statements[0] else {
            panic!("rule")
        };
        assert_eq!(r.heads.len(), 1);
        assert_eq!(r.body.len(), 2);
        assert_eq!(r.builtins.len(), 1);
        assert!(r.weight.is_none());
    }

    #[test]
    fn parses_feature_rule_with_udf_and_tied_weight() {
        let src = "MarriedMentions(m1, m2) :- MarriedCandidate(m1, m2), Sentence(s, sent), f = phrase(m1, m2, sent) weight = f.";
        let p = parse(src).unwrap();
        let Statement::Rule(r) = &p.statements[0] else {
            panic!("rule")
        };
        assert_eq!(r.udfs.len(), 1);
        assert_eq!(r.udfs[0].name, "phrase");
        assert_eq!(r.weight, Some(WeightSpec::Tied("f".into())));
    }

    #[test]
    fn parses_fixed_and_per_rule_weights() {
        let p = parse("A(x) :- B(x) weight = 2.5.\nC(x) :- D(x) weight = ?.").unwrap();
        let Statement::Rule(r) = &p.statements[0] else {
            panic!()
        };
        assert_eq!(r.weight, Some(WeightSpec::Fixed(2.5)));
        let Statement::Rule(r) = &p.statements[1] else {
            panic!()
        };
        assert_eq!(r.weight, Some(WeightSpec::PerRule));
    }

    #[test]
    fn parses_implication_factor_rule() {
        let src = "@name(\"spouse-symmetry\") HasSpouse(a, b) => HasSpouse(b, a) :- PersonPair(a, b) weight = 5.";
        let p = parse(src).unwrap();
        let Statement::Rule(r) = &p.statements[0] else {
            panic!()
        };
        assert!(r.implies);
        assert_eq!(r.heads.len(), 2);
        assert_eq!(r.annotations[0].value, "spouse-symmetry");
        assert_eq!(r.weight, Some(WeightSpec::Fixed(5.0)));
    }

    #[test]
    fn parses_conjunction_heads() {
        let src = "A(x) ^ B(x) => C(x) :- D(x) weight = 1.";
        let p = parse(src).unwrap();
        let Statement::Rule(r) = &p.statements[0] else {
            panic!()
        };
        assert_eq!(r.heads.len(), 3);
        assert!(r.implies);
    }

    #[test]
    fn parses_negation_and_constants() {
        let src = r#"Ev(m, true) :- Cand(m), !Excl(m), Label(m, "pos")."#;
        let p = parse(src).unwrap();
        let Statement::Rule(r) = &p.statements[0] else {
            panic!()
        };
        assert!(r.body[1].negated);
        assert_eq!(r.heads[0].terms[1], Term::Const(Value::Bool(true)));
    }

    #[test]
    fn parses_cardinality_annotation_on_decl() {
        let p = parse("@cardinality(50000) Mention(s id, m id).").unwrap();
        let Statement::Decl(d) = &p.statements[0] else {
            panic!("decl")
        };
        assert_eq!(d.annotations.len(), 1);
        assert_eq!(d.annotations[0].key, "cardinality");
        assert_eq!(d.annotations[0].value, "50000");
    }

    #[test]
    fn rejects_multi_head_without_implies() {
        assert!(parse("A(x) ^ B(x) :- C(x).").is_err());
    }

    #[test]
    fn rejects_unknown_column_type() {
        assert!(parse("R(x blob).").is_err());
    }

    #[test]
    fn reports_error_position() {
        let err = parse("A(x) :-\n  %").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn empty_arg_atoms_allowed() {
        let p = parse("Flag() :- Other(x).").unwrap();
        let Statement::Rule(r) = &p.statements[0] else {
            panic!()
        };
        assert!(r.heads[0].terms.is_empty());
    }
}
