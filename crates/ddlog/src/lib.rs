//! `deepdive-ddlog`: the DDlog declarative language of the DeepDive paper
//! (§2.3: "the developer uses a high-level datalog-like language called
//! DDlog to describe the structured extraction problem").
//!
//! The dialect implemented here covers everything the paper's examples use:
//!
//! ```text
//! # Relation declarations; `?` marks a query relation whose tuples become
//! # Boolean random variables (§3.3).
//! PersonCandidate(s id, m id).
//! MarriedMentions?(m1 id, m2 id).
//!
//! # (R1) candidate mapping — plain datalog, runs on the relational store.
//! MarriedCandidate(m1, m2) :-
//!     PersonCandidate(s, m1), PersonCandidate(s, m2), m1 < m2.
//!
//! # (S1) distant supervision — derives the evidence relation.
//! MarriedMentions_Ev(m1, m2, true) :-
//!     MarriedCandidate(m1, m2), EL(m1, e1), EL(m2, e2), Married(e1, e2).
//!
//! # (FE1) feature extraction with WEIGHT TYING: groundings that share the
//! # value of `f` share one learnable weight (Ex. 3.2).
//! MarriedMentions(m1, m2) :-
//!     MarriedCandidate(m1, m2), Sentence(s, sent),
//!     f = phrase(m1, m2, sent)
//!     weight = f.
//!
//! # Correlation rules (Markov-logic style, §3.1 "rich correlations"):
//! HasSpouse(a, b) => HasSpouse(b, a) :- PersonPair(a, b) weight = 5.
//! ```
//!
//! Weight specs: `weight = 2.5` (fixed), `weight = ?` (one learnable weight
//! per rule), `weight = v` (tied by the value of body variable `v`).

pub mod ast;
pub mod lexer;
pub mod lower;
pub mod parser;

pub use ast::{Annotation, ProgramAst, RelationDecl, RuleStmt, Statement, WeightSpec};
pub use lexer::{lex, LexError, Token, TokenKind};
pub use lower::{compile, lower, DdlogError, DdlogProgram, FactorRule, LowerError};
pub use parser::{parse, ParseError};
