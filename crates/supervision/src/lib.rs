//! `deepdive-supervision`: entity linking and distant supervision (§3.2 of
//! the DeepDive paper).
//!
//! "As a rule, we use distant supervision to obtain labels rather than
//! manual efforts." The [`EntityLinker`] maps mention text to candidate
//! real-world entities; the [`DistantSupervisor`] labels candidate mention
//! pairs through an incomplete [`PairKb`] — positives from the target
//! relation's known instances, negatives from a largely disjoint relation
//! (e.g. siblings for marriage). Absence from the KB is *not* negative
//! evidence; unlabeled candidates stay query variables.

pub mod distant;
pub mod lfs;
pub mod linker;

pub use distant::{DistantSupervisor, LabelStats, PairKb};
pub use lfs::{LabelMatrix, LabelingFunction, LfStats};
pub use linker::EntityLinker;
