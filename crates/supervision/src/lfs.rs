//! Labeling functions: programmatic supervision rules as first-class,
//! debuggable objects.
//!
//! §3.2 treats distant supervision as *code*: "distant supervision rules can
//! be revised, debugged, and cheaply reexecuted; in contrast, a flaw in the
//! human labeling process can only be fixed by expensively redoing all of
//! the work." This module generalizes the single-KB rule into a set of
//! independent labeling functions over candidates, with the diagnostics an
//! engineer needs to debug them: per-function coverage, pairwise overlap and
//! conflict, and agreement-weighted combination. (This is the abstraction
//! the DeepDive lineage later grew into Snorkel.)

use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A labeling function: maps a candidate to `Some(label)` or abstains.
pub type LabelFn<C> = Arc<dyn Fn(&C) -> Option<bool> + Send + Sync>;

/// One named labeling function.
pub struct LabelingFunction<C> {
    pub name: String,
    pub f: LabelFn<C>,
}

impl<C> LabelingFunction<C> {
    pub fn new(
        name: impl Into<String>,
        f: impl Fn(&C) -> Option<bool> + Send + Sync + 'static,
    ) -> Self {
        LabelingFunction {
            name: name.into(),
            f: Arc::new(f),
        }
    }

    pub fn apply(&self, candidate: &C) -> Option<bool> {
        (self.f)(candidate)
    }
}

/// The label matrix: per candidate, per function, the emitted label.
pub struct LabelMatrix {
    /// `labels[i][j]` = function j's vote on candidate i.
    pub labels: Vec<Vec<Option<bool>>>,
    pub function_names: Vec<String>,
}

/// Per-function diagnostics (the §5.2 error-analysis companion for
/// supervision code).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LfStats {
    pub name: String,
    /// Fraction of candidates the function labels at all.
    pub coverage: f64,
    /// Fraction labeled positive (of those labeled).
    pub positive_rate: f64,
    /// Fraction of its labeled candidates also labeled by another function.
    pub overlap: f64,
    /// Fraction of its labeled candidates where some other function
    /// disagrees.
    pub conflict: f64,
}

impl LabelMatrix {
    /// Apply every function to every candidate.
    pub fn build<C>(functions: &[LabelingFunction<C>], candidates: &[C]) -> LabelMatrix {
        let labels = candidates
            .iter()
            .map(|c| functions.iter().map(|lf| lf.apply(c)).collect())
            .collect();
        LabelMatrix {
            labels,
            function_names: functions.iter().map(|lf| lf.name.clone()).collect(),
        }
    }

    pub fn num_candidates(&self) -> usize {
        self.labels.len()
    }

    pub fn num_functions(&self) -> usize {
        self.function_names.len()
    }

    /// Majority-vote combination: `Some(label)` when votes are non-empty and
    /// untied (the same conflict policy evidence relations use).
    pub fn majority(&self, candidate: usize) -> Option<bool> {
        let mut pos = 0usize;
        let mut neg = 0usize;
        for l in &self.labels[candidate] {
            match l {
                Some(true) => pos += 1,
                Some(false) => neg += 1,
                None => {}
            }
        }
        match pos.cmp(&neg) {
            std::cmp::Ordering::Greater => Some(true),
            std::cmp::Ordering::Less => Some(false),
            std::cmp::Ordering::Equal => None,
        }
    }

    /// Majority labels for the whole matrix.
    pub fn majority_labels(&self) -> Vec<Option<bool>> {
        (0..self.num_candidates())
            .map(|i| self.majority(i))
            .collect()
    }

    /// Fraction of candidates receiving at least one label.
    pub fn total_coverage(&self) -> f64 {
        if self.labels.is_empty() {
            return 0.0;
        }
        let covered = self
            .labels
            .iter()
            .filter(|row| row.iter().any(Option::is_some))
            .count();
        covered as f64 / self.labels.len() as f64
    }

    /// Per-function coverage / overlap / conflict diagnostics.
    pub fn stats(&self) -> Vec<LfStats> {
        let n = self.num_candidates().max(1);
        (0..self.num_functions())
            .map(|j| {
                let mut labeled = 0usize;
                let mut positive = 0usize;
                let mut overlap = 0usize;
                let mut conflict = 0usize;
                for row in &self.labels {
                    let Some(mine) = row[j] else { continue };
                    labeled += 1;
                    if mine {
                        positive += 1;
                    }
                    let mut saw_other = false;
                    let mut saw_disagree = false;
                    for (k, other) in row.iter().enumerate() {
                        if k == j {
                            continue;
                        }
                        if let Some(o) = other {
                            saw_other = true;
                            if *o != mine {
                                saw_disagree = true;
                            }
                        }
                    }
                    overlap += saw_other as usize;
                    conflict += saw_disagree as usize;
                }
                let denom = labeled.max(1) as f64;
                LfStats {
                    name: self.function_names[j].clone(),
                    coverage: labeled as f64 / n as f64,
                    positive_rate: positive as f64 / denom,
                    overlap: overlap as f64 / denom,
                    conflict: conflict as f64 / denom,
                }
            })
            .collect()
    }

    /// Render the diagnostics table (the supervision half of the §5.2
    /// error-analysis document).
    pub fn render_stats(&self) -> String {
        let mut out =
            String::from("labeling function        coverage  pos-rate  overlap  conflict\n");
        for s in self.stats() {
            out.push_str(&format!(
                "{:<24} {:>7.3}  {:>7.3}  {:>7.3}  {:>7.3}\n",
                s.name, s.coverage, s.positive_rate, s.overlap, s.conflict
            ));
        }
        out.push_str(&format!("total coverage: {:.3}\n", self.total_coverage()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Candidates: (phrase, in_kb, is_sibling).
    type Cand = (&'static str, bool, bool);

    fn functions() -> Vec<LabelingFunction<Cand>> {
        vec![
            LabelingFunction::new("kb_married", |c: &Cand| c.1.then_some(true)),
            LabelingFunction::new("kb_sibling", |c: &Cand| c.2.then_some(false)),
            LabelingFunction::new("phrase_wife", |c: &Cand| {
                c.0.contains("wife").then_some(true)
            }),
            LabelingFunction::new("phrase_brother", |c: &Cand| {
                c.0.contains("brother").then_some(false)
            }),
        ]
    }

    fn candidates() -> Vec<Cand> {
        vec![
            ("and his wife", true, false),    // kb+phrase agree positive
            ("and his brother", false, true), // kb+phrase agree negative
            ("met at work", false, false),    // nobody labels
            ("and his wife", false, true),    // CONFLICT: wife phrase vs sibling kb
        ]
    }

    #[test]
    fn matrix_applies_all_functions() {
        let m = LabelMatrix::build(&functions(), &candidates());
        assert_eq!(m.num_candidates(), 4);
        assert_eq!(m.num_functions(), 4);
        assert_eq!(m.labels[0][0], Some(true));
        assert_eq!(m.labels[2], vec![None, None, None, None]);
    }

    #[test]
    fn majority_vote_resolves_and_abstains() {
        let m = LabelMatrix::build(&functions(), &candidates());
        assert_eq!(m.majority(0), Some(true));
        assert_eq!(m.majority(1), Some(false));
        assert_eq!(m.majority(2), None, "no votes");
        assert_eq!(m.majority(3), None, "tied votes abstain");
    }

    #[test]
    fn coverage_and_conflict_statistics() {
        let m = LabelMatrix::build(&functions(), &candidates());
        assert!((m.total_coverage() - 0.75).abs() < 1e-12);
        let stats = m.stats();
        let wife = stats.iter().find(|s| s.name == "phrase_wife").unwrap();
        // Labels candidates 0 and 3 → coverage 0.5.
        assert!((wife.coverage - 0.5).abs() < 1e-12);
        assert_eq!(wife.positive_rate, 1.0);
        // Candidate 3 conflicts with kb_sibling → conflict 0.5.
        assert!((wife.conflict - 0.5).abs() < 1e-12);
        let kb = stats.iter().find(|s| s.name == "kb_married").unwrap();
        assert_eq!(kb.conflict, 0.0);
    }

    #[test]
    fn render_is_a_table() {
        let m = LabelMatrix::build(&functions(), &candidates());
        let t = m.render_stats();
        assert!(t.contains("phrase_wife"));
        assert!(t.contains("total coverage"));
        assert_eq!(t.lines().count(), 6);
    }

    #[test]
    fn empty_matrix_is_benign() {
        let m = LabelMatrix::build(&functions(), &[]);
        assert_eq!(m.total_coverage(), 0.0);
        assert!(m.majority_labels().is_empty());
        assert!(m.stats().iter().all(|s| s.coverage == 0.0));
    }

    /// The §8 failure-mode detector: a labeling function that never
    /// conflicts and fully overlaps with another is suspicious (it may be
    /// recomputing the same signal a feature uses).
    #[test]
    fn duplicate_functions_show_full_overlap_zero_conflict() {
        let mut fns = functions();
        fns.push(LabelingFunction::new("kb_married_copy", |c: &Cand| {
            c.1.then_some(true)
        }));
        let m = LabelMatrix::build(&fns, &candidates());
        let copy = m
            .stats()
            .into_iter()
            .find(|s| s.name == "kb_married_copy")
            .unwrap();
        assert_eq!(copy.overlap, 1.0);
        assert_eq!(copy.conflict, 0.0);
    }
}
