//! Entity linking: mention text → candidate real-world entities.
//!
//! §3.2: "The relation EL is for 'entity linking' that maps mentions to
//! their candidate entities." Linking is deliberately candidate-generating
//! (possibly several entities per mention); distant supervision tolerates
//! the noise and inference resolves it.

use deepdive_nlp::Gazetteer;
use std::collections::HashMap;

/// Dictionary-driven entity linker with name-shape heuristics:
/// exact/alias matches, unique-last-name matches, and `B. Obama`-style
/// initial+surname matches.
#[derive(Debug, Clone, Default)]
pub struct EntityLinker {
    /// alias (normalized) → canonical entity.
    aliases: Gazetteer,
    /// last name (lowercased) → canonical entities carrying it.
    by_last_name: HashMap<String, Vec<String>>,
    /// (first initial, last name) → canonical entities.
    by_initial: HashMap<(char, String), Vec<String>>,
    entities: Vec<String>,
}

impl EntityLinker {
    pub fn new() -> Self {
        EntityLinker::default()
    }

    /// Register a canonical entity (e.g. "Barack Obama").
    pub fn add_entity(&mut self, canonical: &str) {
        self.aliases.insert_alias(canonical, canonical);
        self.entities.push(canonical.to_string());
        let parts: Vec<&str> = canonical.split_whitespace().collect();
        if let Some(last) = parts.last() {
            self.by_last_name
                .entry(last.to_lowercase())
                .or_default()
                .push(canonical.to_string());
            if let Some(first) = parts.first() {
                if let Some(init) = first.chars().next() {
                    self.by_initial
                        .entry((init.to_ascii_uppercase(), last.to_lowercase()))
                        .or_default()
                        .push(canonical.to_string());
                }
            }
        }
    }

    /// Register an additional alias for an entity.
    pub fn add_alias(&mut self, alias: &str, canonical: &str) {
        self.aliases.insert_alias(alias, canonical);
    }

    pub fn num_entities(&self) -> usize {
        self.entities.len()
    }

    /// Candidate entities for a mention, best-effort ordered: exact/alias
    /// match first, then initial+surname, then unique-last-name.
    pub fn link(&self, mention: &str) -> Vec<String> {
        let mention = mention.trim();
        if let Some(c) = self.aliases.canonical_of(mention) {
            return vec![c.to_string()];
        }
        let parts: Vec<&str> = mention.split_whitespace().collect();
        // "B. Obama" / "B Obama": initial + surname.
        if parts.len() == 2 {
            let first = parts[0].trim_end_matches('.');
            if first.chars().count() == 1 {
                if let Some(init) = first.chars().next() {
                    let key = (init.to_ascii_uppercase(), parts[1].to_lowercase());
                    if let Some(cands) = self.by_initial.get(&key) {
                        return cands.clone();
                    }
                }
            }
        }
        // Bare surname: all entities sharing it (ambiguous on purpose).
        if parts.len() == 1 {
            if let Some(cands) = self.by_last_name.get(&mention.to_lowercase()) {
                return cands.clone();
            }
        }
        Vec::new()
    }

    /// Link and keep only unambiguous (single-candidate) results.
    pub fn link_unique(&self, mention: &str) -> Option<String> {
        let mut cands = self.link(mention);
        if cands.len() == 1 {
            cands.pop()
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linker() -> EntityLinker {
        let mut l = EntityLinker::new();
        l.add_entity("Barack Obama");
        l.add_entity("Michelle Obama");
        l.add_entity("John Smith");
        l.add_entity("Jane Smith");
        l.add_alias("POTUS 44", "Barack Obama");
        l
    }

    #[test]
    fn exact_and_alias_matches() {
        let l = linker();
        assert_eq!(l.link("Barack Obama"), vec!["Barack Obama"]);
        assert_eq!(l.link("potus 44"), vec!["Barack Obama"]);
    }

    #[test]
    fn initial_plus_surname_matches() {
        let l = linker();
        assert_eq!(l.link("B. Obama"), vec!["Barack Obama"]);
        assert_eq!(l.link("M Obama"), vec!["Michelle Obama"]);
    }

    #[test]
    fn bare_surname_is_ambiguous() {
        let l = linker();
        let cands = l.link("Smith");
        assert_eq!(cands.len(), 2);
        assert!(l.link_unique("Smith").is_none());
        assert_eq!(l.link_unique("Obama").map(|_| ()), None, "two Obamas");
    }

    #[test]
    fn unknown_mentions_link_to_nothing() {
        let l = linker();
        assert!(l.link("Zardoz Quux").is_empty());
    }

    #[test]
    fn link_unique_resolves_unambiguous() {
        let l = linker();
        assert_eq!(l.link_unique("J. Smith"), None, "John and Jane");
        assert_eq!(l.link_unique("B. Obama"), Some("Barack Obama".into()));
    }
}
