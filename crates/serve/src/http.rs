//! A deliberately small HTTP/1.1 codec over [`std::net::TcpStream`].
//!
//! The daemon serves structured JSON to trusted operators on a loopback or
//! LAN address; it does not need (and the offline build cannot take) a web
//! framework. This module covers exactly what the endpoints use: one request
//! per connection (`Connection: close`), `Content-Length` bodies with a hard
//! cap, query-string parsing with percent-decoding, and JSON responses.

use std::io::{self, BufRead, Write};

/// Largest request body the daemon accepts (ingest batches are documents,
/// not datasets — bulk loads belong to `deepdive run`).
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;
/// Request line + each header line are capped to keep a hostile peer from
/// growing an unbounded buffer.
const MAX_LINE_BYTES: usize = 16 * 1024;

/// A parsed request: method, decoded path, decoded query pairs, raw body.
#[derive(Debug, Clone)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub query: Vec<(String, String)>,
    pub body: Vec<u8>,
}

/// Why a request could not be parsed, mapped onto a status code.
#[derive(Debug)]
pub enum ParseError {
    /// Network-level failure; no response possible.
    Io(io::Error),
    /// Malformed request; respond with this status and message.
    Bad { status: u16, message: String },
}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        ParseError::Io(e)
    }
}

fn bad(status: u16, message: impl Into<String>) -> ParseError {
    ParseError::Bad {
        status,
        message: message.into(),
    }
}

/// Read one `\r\n`-terminated line, enforcing the line cap.
fn read_line(r: &mut impl BufRead) -> Result<String, ParseError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match r.read_exact(&mut byte) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof && !line.is_empty() => break,
            Err(e) => return Err(ParseError::Io(e)),
        }
        if byte[0] == b'\n' {
            break;
        }
        if byte[0] != b'\r' {
            line.push(byte[0]);
        }
        if line.len() > MAX_LINE_BYTES {
            return Err(bad(431, "header line too long"));
        }
    }
    String::from_utf8(line).map_err(|_| bad(400, "header line is not UTF-8"))
}

/// Decode `%XX` escapes and `+`-for-space in a query component.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' if i + 2 < bytes.len() => {
                let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).ok();
                match hex.and_then(|h| u8::from_str_radix(h, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn parse_query(raw: &str) -> Vec<(String, String)> {
    raw.split('&')
        .filter(|p| !p.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(pair), String::new()),
        })
        .collect()
}

impl Request {
    /// Parse one request from the stream. Headers other than
    /// `Content-Length` are ignored — every response closes the connection.
    pub fn parse(r: &mut impl BufRead) -> Result<Request, ParseError> {
        let request_line = read_line(r)?;
        let mut parts = request_line.split_whitespace();
        let method = parts
            .next()
            .ok_or_else(|| bad(400, "empty request line"))?
            .to_string();
        let target = parts
            .next()
            .ok_or_else(|| bad(400, "request line has no target"))?;
        let (raw_path, raw_query) = match target.split_once('?') {
            Some((p, q)) => (p, q),
            None => (target, ""),
        };

        let mut content_length = 0usize;
        loop {
            let line = read_line(r)?;
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value
                        .trim()
                        .parse()
                        .map_err(|_| bad(400, "bad Content-Length"))?;
                }
            }
        }
        if content_length > MAX_BODY_BYTES {
            return Err(bad(413, "request body over the 8 MiB cap"));
        }
        let mut body = vec![0u8; content_length];
        r.read_exact(&mut body)?;

        Ok(Request {
            method,
            path: percent_decode(raw_path),
            query: parse_query(raw_query),
            body,
        })
    }

    /// First value of a query parameter.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// A response ready to serialize; always `Connection: close`.
#[derive(Debug, Clone)]
pub struct Response {
    pub status: u16,
    pub body: String,
    content_type: &'static str,
}

impl Response {
    pub fn json(status: u16, value: &serde_json::Value) -> Response {
        Response {
            status,
            body: serde_json::to_string_pretty(value).expect("a Value renders infallibly"),
            content_type: "application/json",
        }
    }

    /// Standard error envelope: `{"error": message}`.
    pub fn error(status: u16, message: &str) -> Response {
        Response::json(status, &serde_json::json!({ "error": message }))
    }

    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len(),
            self.body
        )?;
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse_str(raw: &str) -> Result<Request, ParseError> {
        Request::parse(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_request_line_query_and_body() {
        let req = parse_str(
            "POST /documents?min_p=0.9&name=Barack%20Obama HTTP/1.1\r\n\
             Host: localhost\r\nContent-Length: 4\r\n\r\nbody",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/documents");
        assert_eq!(req.query_param("min_p"), Some("0.9"));
        assert_eq!(req.query_param("name"), Some("Barack Obama"));
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn rejects_oversized_bodies() {
        let raw = format!(
            "POST /documents HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        match parse_str(&raw) {
            Err(ParseError::Bad { status: 413, .. }) => {}
            other => panic!("expected 413, got {other:?}"),
        }
    }

    #[test]
    fn percent_decoding_handles_plus_and_escapes() {
        assert_eq!(percent_decode("a+b%2Fc%zz"), "a b/c%zz");
    }

    #[test]
    fn response_carries_length_and_close() {
        let mut out = Vec::new();
        Response::json(200, &serde_json::json!({"ok": true}))
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Connection: close"));
        let body = text.split("\r\n\r\n").nth(1).unwrap();
        assert!(text.contains(&format!("Content-Length: {}", body.len())));
    }
}
