//! A deliberately small HTTP/1.1 codec over [`std::net::TcpStream`].
//!
//! The daemon serves structured JSON to trusted operators on a loopback or
//! LAN address; it does not need (and the offline build cannot take) a web
//! framework. This module covers exactly what the endpoints use: one request
//! per connection (`Connection: close`), `Content-Length` bodies with a hard
//! cap, query-string parsing with percent-decoding, and JSON responses.

use std::io::{self, BufRead, Write};
use std::time::Instant;

/// Largest request body the daemon accepts (ingest batches are documents,
/// not datasets — bulk loads belong to `deepdive run`).
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;
/// Request line + each header line are capped to keep a hostile peer from
/// growing an unbounded buffer.
const MAX_LINE_BYTES: usize = 16 * 1024;
/// Header count cap: a peer streaming headers forever is shed with 431
/// rather than pinning a worker.
const MAX_HEADERS: usize = 64;
/// Body bytes read per deadline check, so a dribbling sender cannot dodge
/// the request deadline by keeping each individual read alive.
const BODY_CHUNK_BYTES: usize = 8 * 1024;

/// Read-side limits for one request: how large the body may be and how long
/// the whole parse (request line + headers + body) may take. The deadline is
/// the slowloris defense — the socket's `read_timeout` bounds each syscall,
/// this bounds their sum.
#[derive(Debug, Clone, Copy)]
pub struct ParseLimits {
    pub max_body: usize,
    pub deadline: Option<Instant>,
}

impl Default for ParseLimits {
    fn default() -> Self {
        ParseLimits {
            max_body: MAX_BODY_BYTES,
            deadline: None,
        }
    }
}

/// True for the error kinds a timed-out blocking socket read produces.
fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

fn past(deadline: Option<Instant>) -> bool {
    deadline.is_some_and(|d| Instant::now() >= d)
}

/// A parsed request: method, decoded path, decoded query pairs, raw body.
#[derive(Debug, Clone)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub query: Vec<(String, String)>,
    pub body: Vec<u8>,
}

/// Why a request could not be parsed, mapped onto a status code.
#[derive(Debug)]
pub enum ParseError {
    /// Network-level failure; no response possible.
    Io(io::Error),
    /// Malformed request; respond with this status and message.
    Bad { status: u16, message: String },
}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        ParseError::Io(e)
    }
}

fn bad(status: u16, message: impl Into<String>) -> ParseError {
    ParseError::Bad {
        status,
        message: message.into(),
    }
}

/// Read one `\r\n`-terminated line, enforcing the line cap and the overall
/// request deadline. A socket-level read timeout or an expired deadline
/// becomes 408 — the peer stalled, answer and hang up instead of pinning
/// the worker silently.
fn read_line(r: &mut impl BufRead, deadline: Option<Instant>) -> Result<String, ParseError> {
    let mut line = Vec::new();
    loop {
        if past(deadline) {
            return Err(bad(408, "request header read timed out"));
        }
        let mut byte = [0u8; 1];
        match r.read_exact(&mut byte) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof && !line.is_empty() => break,
            Err(e) if is_timeout(&e) => {
                return Err(bad(408, "request header read timed out"));
            }
            Err(e) => return Err(ParseError::Io(e)),
        }
        if byte[0] == b'\n' {
            break;
        }
        if byte[0] != b'\r' {
            line.push(byte[0]);
        }
        if line.len() > MAX_LINE_BYTES {
            return Err(bad(431, "header line too long"));
        }
    }
    String::from_utf8(line).map_err(|_| bad(400, "header line is not UTF-8"))
}

/// Decode `%XX` escapes and `+`-for-space in a query component.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' if i + 2 < bytes.len() => {
                let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).ok();
                match hex.and_then(|h| u8::from_str_radix(h, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn parse_query(raw: &str) -> Vec<(String, String)> {
    raw.split('&')
        .filter(|p| !p.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(pair), String::new()),
        })
        .collect()
}

impl Request {
    /// Parse one request from the stream under default limits (tests and
    /// simple embedding; the daemon passes explicit [`ParseLimits`]).
    pub fn parse(r: &mut impl BufRead) -> Result<Request, ParseError> {
        Request::parse_with(r, &ParseLimits::default())
    }

    /// Parse one request from the stream. Headers other than
    /// `Content-Length` are ignored — every response closes the connection.
    ///
    /// Failure taxonomy: 400 malformed syntax (including duplicate
    /// `Content-Length`), 408 the peer stalled past the deadline (headers
    /// or mid-body), 413 declared body over the cap — checked from the
    /// header alone, *before* any body byte is read, so an oversized upload
    /// is refused without the daemon paying to receive it — and 431
    /// oversized or too many header lines.
    pub fn parse_with(r: &mut impl BufRead, limits: &ParseLimits) -> Result<Request, ParseError> {
        let request_line = read_line(r, limits.deadline)?;
        let mut parts = request_line.split_whitespace();
        let method = parts
            .next()
            .ok_or_else(|| bad(400, "empty request line"))?
            .to_string();
        let target = parts
            .next()
            .ok_or_else(|| bad(400, "request line has no target"))?;
        let (raw_path, raw_query) = match target.split_once('?') {
            Some((p, q)) => (p, q),
            None => (target, ""),
        };

        let mut content_length: Option<usize> = None;
        let mut headers = 0usize;
        loop {
            let line = read_line(r, limits.deadline)?;
            if line.is_empty() {
                break;
            }
            headers += 1;
            if headers > MAX_HEADERS {
                return Err(bad(431, "too many header lines"));
            }
            if let Some((name, value)) = line.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    let parsed = value
                        .trim()
                        .parse()
                        .map_err(|_| bad(400, "bad Content-Length"))?;
                    // Two Content-Length headers are a smuggling smell;
                    // reject even when they agree.
                    if content_length.replace(parsed).is_some() {
                        return Err(bad(400, "duplicate Content-Length"));
                    }
                }
            }
        }
        let content_length = content_length.unwrap_or(0);
        if content_length > limits.max_body {
            // Reject from the declared length alone — the body is never read.
            return Err(bad(
                413,
                format!("request body over the {} byte cap", limits.max_body),
            ));
        }
        let mut body = vec![0u8; content_length];
        let mut filled = 0usize;
        while filled < body.len() {
            if past(limits.deadline) {
                return Err(bad(408, "client stalled mid-body"));
            }
            let chunk = (body.len() - filled).min(BODY_CHUNK_BYTES);
            match r.read(&mut body[filled..filled + chunk]) {
                Ok(0) => {
                    return Err(ParseError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "body shorter than Content-Length",
                    )))
                }
                Ok(n) => filled += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) if is_timeout(&e) => return Err(bad(408, "client stalled mid-body")),
                Err(e) => return Err(ParseError::Io(e)),
            }
        }

        Ok(Request {
            method,
            path: percent_decode(raw_path),
            query: parse_query(raw_query),
            body,
        })
    }

    /// First value of a query parameter.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        410 => "Gone",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// A response ready to serialize; always `Connection: close`.
#[derive(Debug, Clone)]
pub struct Response {
    pub status: u16,
    pub body: String,
    /// Emitted as a `Retry-After: <secs>` header — load-shed (503) and
    /// rate-limited (429) responses tell the client when to come back.
    pub retry_after: Option<u64>,
    /// Extra response headers, emitted verbatim in order (RFC 7231 hints
    /// like `Allow` on 405, or `X-DD-Primary` forwarding a follower's
    /// rejected write).
    pub headers: Vec<(String, String)>,
    content_type: &'static str,
}

impl Response {
    pub fn json(status: u16, value: &serde_json::Value) -> Response {
        Response {
            status,
            body: serde_json::to_string_pretty(value).expect("a Value renders infallibly"),
            retry_after: None,
            headers: Vec::new(),
            content_type: "application/json",
        }
    }

    /// Standard error envelope: `{"error": message}`.
    pub fn error(status: u16, message: &str) -> Response {
        Response::json(status, &serde_json::json!({ "error": message }))
    }

    /// A raw (non-JSON) payload — the checkpoint bundle `GET /checkpoint`
    /// returns. The body is still UTF-8 text (every checkpoint artifact
    /// is), but framed for byte-exact reassembly, not for parsing as JSON.
    pub fn octet(status: u16, body: String) -> Response {
        Response {
            status,
            body,
            retry_after: None,
            headers: Vec::new(),
            content_type: "application/octet-stream",
        }
    }

    /// Attach a `Retry-After` header (seconds).
    pub fn with_retry_after(mut self, secs: u64) -> Response {
        self.retry_after = Some(secs);
        self
    }

    /// Attach an arbitrary response header.
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Response {
        self.headers.push((name.into(), value.into()));
        self
    }

    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len(),
        )?;
        if let Some(secs) = self.retry_after {
            write!(w, "Retry-After: {secs}\r\n")?;
        }
        for (name, value) in &self.headers {
            write!(w, "{name}: {value}\r\n")?;
        }
        write!(w, "\r\n{}", self.body)?;
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse_str(raw: &str) -> Result<Request, ParseError> {
        Request::parse(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_request_line_query_and_body() {
        let req = parse_str(
            "POST /documents?min_p=0.9&name=Barack%20Obama HTTP/1.1\r\n\
             Host: localhost\r\nContent-Length: 4\r\n\r\nbody",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/documents");
        assert_eq!(req.query_param("min_p"), Some("0.9"));
        assert_eq!(req.query_param("name"), Some("Barack Obama"));
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn rejects_oversized_bodies() {
        let raw = format!(
            "POST /documents HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        match parse_str(&raw) {
            Err(ParseError::Bad { status: 413, .. }) => {}
            other => panic!("expected 413, got {other:?}"),
        }
    }

    #[test]
    fn oversized_body_is_rejected_before_any_body_byte_is_read() {
        // The reader holds headers declaring a huge body but zero body
        // bytes; the 413 must come from the header alone. (Were the body
        // read first, this would error UnexpectedEof instead.)
        let raw = format!(
            "POST /documents HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        let mut reader = BufReader::new(raw.as_bytes());
        match Request::parse(&mut reader) {
            Err(ParseError::Bad { status: 413, .. }) => {}
            other => panic!("expected 413 before body read, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_content_length_is_rejected() {
        let raw = "POST /documents HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\nbody";
        match parse_str(raw) {
            Err(ParseError::Bad {
                status: 400,
                message,
            }) => {
                assert!(message.contains("duplicate"), "{message}");
            }
            other => panic!("expected 400, got {other:?}"),
        }
    }

    #[test]
    fn too_many_headers_is_431() {
        let mut raw = String::from("GET /healthz HTTP/1.1\r\n");
        for i in 0..100 {
            raw.push_str(&format!("X-Pad-{i}: x\r\n"));
        }
        raw.push_str("\r\n");
        match parse_str(&raw) {
            Err(ParseError::Bad { status: 431, .. }) => {}
            other => panic!("expected 431, got {other:?}"),
        }
    }

    #[test]
    fn expired_deadline_is_408() {
        let limits = ParseLimits {
            max_body: MAX_BODY_BYTES,
            deadline: Some(Instant::now() - std::time::Duration::from_secs(1)),
        };
        let raw = "GET /healthz HTTP/1.1\r\n\r\n";
        match Request::parse_with(&mut BufReader::new(raw.as_bytes()), &limits) {
            Err(ParseError::Bad { status: 408, .. }) => {}
            other => panic!("expected 408, got {other:?}"),
        }
    }

    #[test]
    fn short_body_is_an_io_error_not_a_panic() {
        let raw = "POST /documents HTTP/1.1\r\nContent-Length: 10\r\n\r\nhi";
        match parse_str(raw) {
            Err(ParseError::Io(_)) => {}
            other => panic!("expected Io, got {other:?}"),
        }
    }

    #[test]
    fn percent_decoding_handles_plus_and_escapes() {
        assert_eq!(percent_decode("a+b%2Fc%zz"), "a b/c%zz");
    }

    #[test]
    fn retry_after_header_is_emitted() {
        let mut out = Vec::new();
        Response::error(503, "shed")
            .with_retry_after(2)
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Retry-After: 2\r\n"));
    }

    #[test]
    fn response_carries_length_and_close() {
        let mut out = Vec::new();
        Response::json(200, &serde_json::json!({"ok": true}))
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Connection: close"));
        let body = text.split("\r\n\r\n").nth(1).unwrap();
        assert!(text.contains(&format!("Content-Length: {}", body.len())));
    }
}
