//! Per-endpoint serving metrics: request counts, error counts, and a fixed
//! latency histogram, all lock-free atomics so `/metrics` never contends
//! with the single writer applying an ingest.

use serde_json::{json, Map, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Histogram bucket upper bounds, in microseconds (the last bucket is
/// `+Inf`). Chosen around the expected shape: reads are sub-millisecond,
/// ingests pay a bounded Gibbs refresh.
const BUCKET_BOUNDS_MICROS: [u64; 6] = [1_000, 5_000, 25_000, 100_000, 500_000, 2_500_000];
const NUM_BUCKETS: usize = BUCKET_BOUNDS_MICROS.len() + 1;

/// The endpoints we keep separate books for.
pub const ENDPOINTS: [&str; 11] = [
    "healthz",
    "readyz",
    "metrics",
    "relations",
    "marginals",
    "documents",
    "wal",
    "subscriptions",
    "promote",
    "checkpoint",
    "other",
];

#[derive(Debug, Default)]
struct EndpointMetrics {
    requests: AtomicU64,
    errors: AtomicU64,
    total_micros: AtomicU64,
    buckets: [AtomicU64; NUM_BUCKETS],
}

impl EndpointMetrics {
    fn record(&self, latency: Duration, ok: bool) {
        let micros = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        self.requests.fetch_add(1, Ordering::Relaxed);
        if !ok {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        self.total_micros.fetch_add(micros, Ordering::Relaxed);
        let idx = BUCKET_BOUNDS_MICROS
            .iter()
            .position(|&bound| micros <= bound)
            .unwrap_or(NUM_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    fn to_json(&self) -> Value {
        let requests = self.requests.load(Ordering::Relaxed);
        let total = self.total_micros.load(Ordering::Relaxed);
        let mut hist = Map::new();
        let mut cumulative = 0u64;
        for (i, bound) in BUCKET_BOUNDS_MICROS.iter().enumerate() {
            cumulative += self.buckets[i].load(Ordering::Relaxed);
            hist.insert(format!("le_{}us", bound), json!(cumulative));
        }
        cumulative += self.buckets[NUM_BUCKETS - 1].load(Ordering::Relaxed);
        hist.insert("le_inf".into(), json!(cumulative));
        json!({
            "requests": requests,
            "errors": self.errors.load(Ordering::Relaxed),
            "latency_micros_total": total,
            "latency_micros_mean": total.checked_div(requests).unwrap_or(0),
            "latency_histogram": Value::Object(hist),
        })
    }
}

/// All endpoint books; one instance per server, shared by every worker.
/// The admission counters sit beside them: connections shed at the
/// admission queue (503), ingests refused by the rate limiter (429), and
/// requests cut by a read deadline (408) never reach an endpoint handler,
/// so they are counted here rather than in a latency book.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    endpoints: [EndpointMetrics; ENDPOINTS.len()],
    /// Connections refused with 503 because the admission queue was full.
    pub shed_total: AtomicU64,
    /// Ingests refused with 429 by the token-bucket rate limiter.
    pub rate_limited_total: AtomicU64,
    /// Requests answered 408 after a header/body read stalled.
    pub timeout_total: AtomicU64,
    /// Handler panics caught at the connection boundary (answered 500
    /// instead of killing the worker).
    pub panic_total: AtomicU64,
}

impl ServeMetrics {
    /// Record one finished request against an endpoint name (unknown names
    /// land in `other`).
    pub fn record(&self, endpoint: &str, latency: Duration, ok: bool) {
        let idx = ENDPOINTS
            .iter()
            .position(|&e| e == endpoint)
            .unwrap_or(ENDPOINTS.len() - 1);
        self.endpoints[idx].record(latency, ok);
    }

    /// Total requests across all endpoints.
    pub fn total_requests(&self) -> u64 {
        self.endpoints
            .iter()
            .map(|e| e.requests.load(Ordering::Relaxed))
            .sum()
    }

    pub fn record_shed(&self) {
        self.shed_total.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_rate_limited(&self) {
        self.rate_limited_total.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_timeout(&self) {
        self.timeout_total.fetch_add(1, Ordering::Relaxed);
    }

    pub fn shed_total(&self) -> u64 {
        self.shed_total.load(Ordering::Relaxed)
    }

    pub fn rate_limited_total(&self) -> u64 {
        self.rate_limited_total.load(Ordering::Relaxed)
    }

    pub fn timeout_total(&self) -> u64 {
        self.timeout_total.load(Ordering::Relaxed)
    }

    pub fn record_panic(&self) {
        self.panic_total.fetch_add(1, Ordering::Relaxed);
    }

    pub fn panic_total(&self) -> u64 {
        self.panic_total.load(Ordering::Relaxed)
    }

    pub fn to_json(&self) -> Value {
        let mut out = Map::new();
        for (name, m) in ENDPOINTS.iter().zip(&self.endpoints) {
            out.insert((*name).to_string(), m.to_json());
        }
        Value::Object(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_counts_errors_and_buckets() {
        let m = ServeMetrics::default();
        m.record("relations", Duration::from_micros(500), true);
        m.record("relations", Duration::from_micros(30_000), false);
        m.record("nonsense", Duration::from_millis(1), true);
        assert_eq!(m.total_requests(), 3);

        let v = m.to_json();
        let rel = v.get("relations").unwrap();
        assert_eq!(rel.get("requests").and_then(Value::as_u64), Some(2));
        assert_eq!(rel.get("errors").and_then(Value::as_u64), Some(1));
        let hist = rel.get("latency_histogram").unwrap();
        // 500us fits the first bucket; 30ms only from the 100ms bound up.
        assert_eq!(hist.get("le_1000us").and_then(Value::as_u64), Some(1));
        assert_eq!(hist.get("le_25000us").and_then(Value::as_u64), Some(1));
        assert_eq!(hist.get("le_100000us").and_then(Value::as_u64), Some(2));
        assert_eq!(hist.get("le_inf").and_then(Value::as_u64), Some(2));
        // Unknown endpoint lands in `other`.
        assert_eq!(
            v.get("other")
                .and_then(|o| o.get("requests"))
                .and_then(Value::as_u64),
            Some(1)
        );
    }
}
