//! Live subscriptions: the registry and delta router behind
//! `POST /subscriptions`.
//!
//! The daemon computes exact DRed/IVM deltas on every ingest and, until
//! now, dropped them after the epoch swap. This module turns them into a
//! CDC-style feed: a subscriber registers a relation filter (the same
//! typed predicate grammar `/relations` uses) and/or a marginal-threshold
//! query, and receives one delta frame per published epoch — retractions
//! carried explicitly, group-commit batches fanned out as one frame per
//! swap.
//!
//! Delta derivation is a sorted merge of consecutive [`ServeSnapshot`]s:
//! both relation rows and marginals are sorted, so the diff is exact
//! (including count-only changes and Gibbs-refresh probability movement)
//! and O(total rows) — strictly cheaper than the snapshot capture that
//! already runs per epoch. The membership trace surfaced by
//! `apply_base_changes_traced` rides along as `ivm` metadata on each
//! frame. The router runs *after* the swap, so a consumer that loads the
//! current snapshot is always at-or-ahead of every frame it might have
//! missed — the invariant the shed/resume protocol leans on.
//!
//! Slow consumers never block ingest: each subscriber owns a bounded
//! byte-budgeted queue, and an overflowing queue is cleared and marked
//! lagged. The consumer is told via a `lagged` frame and re-based on a
//! fresh snapshot frame instead of silently missing deltas.

use crate::snapshot::ServeSnapshot;
use deepdive_storage::{
    value_from_tsv, value_to_tsv, MaintenanceResult, Row, Schema, Value as DbValue, ValueType,
};
use parking_lot::{Mutex, MutexGuard};
// The vendored `parking_lot` is a std shim whose `MutexGuard` *is*
// `std::sync::MutexGuard`, so std's `Condvar` pairs with it directly.
use serde_json::{json, Map, Value as Json};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::Condvar;
use std::time::{Duration, Instant};

/// Query keys on `/relations` that are paging/pinning controls, not column
/// filters. Shared with the subscription spec parser.
pub const RESERVED_QUERY_KEYS: [&str; 3] = ["offset", "limit", "epoch"];

/// One typed column predicate: parsed once against the column's declared
/// type so matching compares `Value`s directly. `Any`/`Null` columns fall
/// back to comparing the rendered TSV cell.
pub(crate) enum Pred {
    Typed(usize, DbValue),
    Rendered(usize, String),
}

/// A conjunction of column-equality predicates over one relation — the
/// `/relations` filter grammar, reusable by subscriptions.
pub struct RowFilter {
    pub(crate) preds: Vec<Pred>,
    /// A well-formed filter no stored row can ever match (e.g. `?x=07`
    /// against canonical integer rendering): match nothing, not an error.
    pub(crate) unsatisfiable: bool,
}

impl RowFilter {
    pub(crate) fn empty() -> RowFilter {
        RowFilter {
            preds: Vec::new(),
            unsatisfiable: false,
        }
    }

    /// Parse `(column, raw value)` pairs against the schema. `Err` carries
    /// the offending key for a 400.
    pub(crate) fn parse<'a>(
        schema: &Schema,
        pairs: impl Iterator<Item = (&'a str, &'a str)>,
    ) -> Result<RowFilter, String> {
        let mut filter = RowFilter::empty();
        for (key, value) in pairs {
            let Some(idx) = schema.columns.iter().position(|c| c.name == key) else {
                return Err(format!("`{key}` is not a column of `{}`", schema.name));
            };
            let ty = schema.columns[idx].ty;
            if matches!(ty, ValueType::Any | ValueType::Null) {
                filter.preds.push(Pred::Rendered(idx, value.to_string()));
                continue;
            }
            match value_from_tsv(value, ty) {
                // Stored cells render canonically, so a non-canonical input
                // can never equal any rendered cell.
                Ok(v) if value_to_tsv(&v) == *value => filter.preds.push(Pred::Typed(idx, v)),
                _ => {
                    filter.unsatisfiable = true;
                    break;
                }
            }
        }
        Ok(filter)
    }

    pub(crate) fn matches(&self, row: &Row) -> bool {
        !self.unsatisfiable
            && self.preds.iter().all(|p| match p {
                Pred::Typed(i, v) => row[*i] == *v,
                Pred::Rendered(i, s) => value_to_tsv(&row[*i]) == *s,
            })
    }

    /// The typed equality on the leading column, if any — `/relations`
    /// binary-searches the sorted snapshot with it.
    pub(crate) fn leading_eq(&self) -> Option<&DbValue> {
        self.preds.iter().find_map(|p| match p {
            Pred::Typed(0, v) => Some(v),
            _ => None,
        })
    }
}

/// Aggregate counts from the storage IVM layer's [`MaintenanceResult`] —
/// the per-epoch effort/impact trace carried on every delta frame.
#[derive(Debug, Default, Clone, Copy)]
pub struct IvmTrace {
    pub appeared: u64,
    pub disappeared: u64,
    pub rule_evaluations: u64,
}

impl IvmTrace {
    pub fn absorb(&mut self, result: &MaintenanceResult) {
        self.appeared += result.appeared.values().map(Vec::len).sum::<usize>() as u64;
        self.disappeared += result.disappeared.values().map(Vec::len).sum::<usize>() as u64;
        self.rule_evaluations += result.rule_evaluations as u64;
    }

    fn to_json(self) -> Json {
        json!({
            "appeared": self.appeared,
            "disappeared": self.disappeared,
            "rule_evaluations": self.rule_evaluations,
        })
    }
}

/// Row-level changes to one relation between two consecutive snapshots.
#[derive(Debug, Default)]
pub struct RelationDelta {
    /// Rows whose multiplicity changed or that are new: `(row, new count)`.
    pub upserts: Vec<(Row, i64)>,
    /// Rows retracted entirely.
    pub deletes: Vec<Row>,
}

/// Marginal changes for one query relation. Old probabilities ride along so
/// threshold subscriptions can tell "entered the band" from "left it".
#[derive(Debug, Default)]
pub struct MarginalDelta {
    /// `(row, old p if the row existed, new p)` for every changed row.
    pub changed: Vec<(Row, Option<f64>, f64)>,
    /// `(row, old p)` for rows whose variable was retracted.
    pub removed: Vec<(Row, f64)>,
}

/// Everything that changed between epoch `from_epoch` and `epoch`: the
/// unit the router fans out (one per snapshot swap, so a group-commit
/// batch is one delta set).
pub struct EpochDelta {
    pub from_epoch: u64,
    pub epoch: u64,
    pub relations: BTreeMap<String, RelationDelta>,
    pub marginals: BTreeMap<String, MarginalDelta>,
    pub trace: IvmTrace,
}

impl EpochDelta {
    /// Exact diff of two snapshots by sorted merge. Probabilities compare
    /// by bit pattern — a subscriber replaying frames reconstructs the new
    /// snapshot bit-identically.
    pub fn diff(prev: &ServeSnapshot, next: &ServeSnapshot, trace: IvmTrace) -> EpochDelta {
        let mut relations = BTreeMap::new();
        let names: std::collections::BTreeSet<&str> = prev
            .db
            .relation_names()
            .chain(next.db.relation_names())
            .collect();
        for name in names {
            let old = prev.db.relation(name).map(|r| r.rows()).unwrap_or(&[]);
            let new = next.db.relation(name).map(|r| r.rows()).unwrap_or(&[]);
            let mut delta = RelationDelta::default();
            let (mut i, mut j) = (0, 0);
            while i < old.len() || j < new.len() {
                match (old.get(i), new.get(j)) {
                    (Some((or, oc)), Some((nr, nc))) => match or.cmp(nr) {
                        std::cmp::Ordering::Equal => {
                            if oc != nc {
                                delta.upserts.push((nr.clone(), *nc));
                            }
                            i += 1;
                            j += 1;
                        }
                        std::cmp::Ordering::Less => {
                            delta.deletes.push(or.clone());
                            i += 1;
                        }
                        std::cmp::Ordering::Greater => {
                            delta.upserts.push((nr.clone(), *nc));
                            j += 1;
                        }
                    },
                    (Some((or, _)), None) => {
                        delta.deletes.push(or.clone());
                        i += 1;
                    }
                    (None, Some((nr, nc))) => {
                        delta.upserts.push((nr.clone(), *nc));
                        j += 1;
                    }
                    (None, None) => unreachable!(),
                }
            }
            if !delta.upserts.is_empty() || !delta.deletes.is_empty() {
                relations.insert(name.to_string(), delta);
            }
        }

        let mut marginals = BTreeMap::new();
        let names: std::collections::BTreeSet<&str> = prev
            .marginals
            .keys()
            .map(String::as_str)
            .chain(next.marginals.keys().map(String::as_str))
            .collect();
        for name in names {
            let old = prev.marginal_rows(name);
            let new = next.marginal_rows(name);
            let mut delta = MarginalDelta::default();
            let (mut i, mut j) = (0, 0);
            while i < old.len() || j < new.len() {
                match (old.get(i), new.get(j)) {
                    (Some((or, op)), Some((nr, np))) => match or.cmp(nr) {
                        std::cmp::Ordering::Equal => {
                            if op.to_bits() != np.to_bits() {
                                delta.changed.push((nr.clone(), Some(*op), *np));
                            }
                            i += 1;
                            j += 1;
                        }
                        std::cmp::Ordering::Less => {
                            delta.removed.push((or.clone(), *op));
                            i += 1;
                        }
                        std::cmp::Ordering::Greater => {
                            delta.changed.push((nr.clone(), None, *np));
                            j += 1;
                        }
                    },
                    (Some((or, op)), None) => {
                        delta.removed.push((or.clone(), *op));
                        i += 1;
                    }
                    (None, Some((nr, np))) => {
                        delta.changed.push((nr.clone(), None, *np));
                        j += 1;
                    }
                    (None, None) => unreachable!(),
                }
            }
            if !delta.changed.is_empty() || !delta.removed.is_empty() {
                marginals.insert(name.to_string(), delta);
            }
        }

        EpochDelta {
            from_epoch: prev.epoch,
            epoch: next.epoch,
            relations,
            marginals,
            trace,
        }
    }
}

/// The relation half of a subscription: a name plus a row filter.
pub struct RelationSub {
    pub relation: String,
    pub filter: RowFilter,
}

/// The marginal-threshold half: rows of one query relation whose
/// probability lies in `[min_p, max_p]`.
pub struct MarginalSub {
    pub relation: String,
    pub min_p: f64,
    pub max_p: f64,
}

impl MarginalSub {
    fn in_band(&self, p: f64) -> bool {
        p >= self.min_p && p <= self.max_p
    }
}

/// What one subscriber asked for: at least one of the two halves.
pub struct SubscriptionSpec {
    pub relation: Option<RelationSub>,
    pub marginals: Option<MarginalSub>,
    /// Stream mode sends an initial snapshot frame unless the client opted
    /// out (it already has the state, e.g. a reconnect at a known epoch).
    pub initial_snapshot: bool,
}

impl SubscriptionSpec {
    /// Parse and validate a `POST /subscriptions` body against the current
    /// snapshot's schemas. `Err` is a `(status, message)` for the response.
    pub fn parse(body: &Json, snap: &ServeSnapshot) -> Result<SubscriptionSpec, (u16, String)> {
        let obj = body
            .as_object()
            .ok_or((400, "body must be a JSON object".to_string()))?;
        for key in obj.keys() {
            if !matches!(
                key.as_str(),
                "relation" | "marginals" | "mode" | "id" | "snapshot"
            ) {
                return Err((400, format!("unknown subscription field `{key}`")));
            }
        }
        let relation = match obj.get("relation") {
            None => None,
            Some(r) => {
                let name = r
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or((400, "relation.name must be a string".to_string()))?;
                let rel = snap
                    .db
                    .relation(name)
                    .ok_or((404, format!("no relation `{name}`")))?;
                let mut pairs: Vec<(String, String)> = Vec::new();
                if let Some(w) = r.get("where") {
                    let w = w
                        .as_object()
                        .ok_or((400, "relation.where must be an object".to_string()))?;
                    for (k, v) in w {
                        let raw = match v {
                            Json::String(s) => s.clone(),
                            Json::Number(n) => n.to_string(),
                            Json::Bool(b) => b.to_string(),
                            _ => return Err((400, format!("relation.where.{k} must be a scalar"))),
                        };
                        pairs.push((k.clone(), raw));
                    }
                }
                let filter = RowFilter::parse(
                    rel.schema(),
                    pairs.iter().map(|(k, v)| (k.as_str(), v.as_str())),
                )
                .map_err(|e| (400, e))?;
                Some(RelationSub {
                    relation: name.to_string(),
                    filter,
                })
            }
        };
        let marginals = match obj.get("marginals") {
            None => None,
            Some(m) => {
                let name = m
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or((400, "marginals.name must be a string".to_string()))?;
                if !snap.marginals.contains_key(name) {
                    return Err((
                        404,
                        format!("no marginals for `{name}` (not a query relation)"),
                    ));
                }
                let band = |key: &str, default: f64| -> Result<f64, (u16, String)> {
                    match m.get(key) {
                        None => Ok(default),
                        Some(v) => v
                            .as_f64()
                            .ok_or((400, format!("marginals.{key} must be a number"))),
                    }
                };
                Some(MarginalSub {
                    relation: name.to_string(),
                    min_p: band("min_p", 0.0)?,
                    max_p: band("max_p", 1.0)?,
                })
            }
        };
        if relation.is_none() && marginals.is_none() {
            return Err((
                400,
                "subscribe to something: a `relation` filter and/or a `marginals` threshold"
                    .to_string(),
            ));
        }
        Ok(SubscriptionSpec {
            relation,
            marginals,
            initial_snapshot: obj.get("snapshot").and_then(Json::as_bool).unwrap_or(true),
        })
    }

    fn to_json(&self) -> Json {
        let mut out = Map::new();
        if let Some(r) = &self.relation {
            out.insert(
                "relation".into(),
                json!({ "name": r.relation, "filters": r.filter.preds.len() }),
            );
        }
        if let Some(m) = &self.marginals {
            out.insert(
                "marginals".into(),
                json!({ "name": m.relation, "min_p": m.min_p, "max_p": m.max_p }),
            );
        }
        Json::Object(out)
    }
}

pub(crate) fn value_to_json(v: &DbValue) -> Json {
    match v {
        DbValue::Null => Json::Null,
        DbValue::Bool(b) => json!(*b),
        DbValue::Int(i) => json!(*i),
        DbValue::Float(f) => json!(*f),
        DbValue::Text(t) => json!(t.as_ref()),
        DbValue::Id(id) => json!(*id),
    }
}

fn row_to_array(row: &Row) -> Json {
    Json::Array(row.iter().map(value_to_json).collect())
}

/// Render the delta frame one subscriber sees for one epoch: only the
/// slices its spec covers, retractions explicit. Empty frames are still
/// emitted — epoch continuity is what lets a client trust its cursor.
fn render_delta_frame(spec: &SubscriptionSpec, delta: &EpochDelta) -> String {
    let mut frame = Map::new();
    frame.insert("type".into(), json!("delta"));
    frame.insert("from".into(), json!(delta.from_epoch));
    frame.insert("epoch".into(), json!(delta.epoch));
    if let Some(sub) = &spec.relation {
        let mut upserts = Vec::new();
        let mut deletes = Vec::new();
        if let Some(rd) = delta.relations.get(&sub.relation) {
            for (row, count) in &rd.upserts {
                if sub.filter.matches(row) {
                    upserts.push(json!({ "row": row_to_array(row), "count": count }));
                }
            }
            for row in &rd.deletes {
                if sub.filter.matches(row) {
                    deletes.push(row_to_array(row));
                }
            }
        }
        frame.insert(
            "relation".into(),
            json!({ "name": sub.relation, "upserts": upserts, "deletes": deletes }),
        );
    }
    if let Some(sub) = &spec.marginals {
        let mut upserts = Vec::new();
        let mut deletes = Vec::new();
        if let Some(md) = delta.marginals.get(&sub.relation) {
            for (row, old, new) in &md.changed {
                let was_in = old.map(|p| sub.in_band(p)).unwrap_or(false);
                let is_in = sub.in_band(*new);
                if is_in {
                    // New to the band, or moved within it: either way the
                    // client upserts the fresh probability.
                    upserts.push(json!({ "row": row_to_array(row), "p": new }));
                } else if was_in {
                    deletes.push(row_to_array(row));
                }
            }
            for (row, old) in &md.removed {
                if sub.in_band(*old) {
                    deletes.push(row_to_array(row));
                }
            }
        }
        frame.insert(
            "marginals".into(),
            json!({ "name": sub.relation, "upserts": upserts, "deletes": deletes }),
        );
    }
    frame.insert("ivm".into(), delta.trace.to_json());
    Json::Object(frame).to_string()
}

/// Render the full-state frame a subscriber re-bases on: its filtered view
/// of one snapshot. Sent at stream start, after a shed, and embedded in a
/// long-poll reset.
pub(crate) fn render_snapshot_frame(spec: &SubscriptionSpec, snap: &ServeSnapshot) -> String {
    let mut frame = Map::new();
    frame.insert("type".into(), json!("snapshot"));
    frame.insert("epoch".into(), json!(snap.epoch));
    if let Some(sub) = &spec.relation {
        let mut rows = Vec::new();
        if let Some(rel) = snap.db.relation(&sub.relation) {
            for (row, count) in rel.rows() {
                if sub.filter.matches(row) {
                    rows.push(json!({ "row": row_to_array(row), "count": count }));
                }
            }
        }
        frame.insert(
            "relation".into(),
            json!({ "name": sub.relation, "rows": rows }),
        );
    }
    if let Some(sub) = &spec.marginals {
        let mut rows = Vec::new();
        for (row, p) in snap.marginal_rows(&sub.relation) {
            if sub.in_band(*p) {
                rows.push(json!({ "row": row_to_array(row), "p": p }));
            }
        }
        frame.insert(
            "marginals".into(),
            json!({ "name": sub.relation, "rows": rows }),
        );
    }
    Json::Object(frame).to_string()
}

/// One rendered frame waiting in a subscriber's queue.
pub(crate) struct Frame {
    pub(crate) from_epoch: u64,
    pub(crate) epoch: u64,
    pub(crate) body: String,
}

/// The bounded per-subscriber queue. `lagged` replaces the frames when the
/// byte budget overflows: the consumer is re-based on a snapshot instead
/// of blocking the router.
pub(crate) struct SubQueue {
    pub(crate) frames: VecDeque<Frame>,
    pub(crate) bytes: usize,
    /// Epoch at which the queue overflowed and was cleared; cleared when
    /// the consumer re-bases.
    pub(crate) lagged: Option<u64>,
    /// Last epoch routed to this subscriber (frames queued, shed, or
    /// acked — the heartbeat's cursor).
    pub(crate) last_epoch: u64,
    /// Long-poll cursor floor: frames at or below this were delivered and
    /// dropped. A `from` below it is a gap → snapshot reset.
    pub(crate) acked_through: u64,
    pub(crate) closed: bool,
}

/// One registered subscriber.
pub struct Subscriber {
    pub id: String,
    pub spec: SubscriptionSpec,
    pub(crate) q: Mutex<SubQueue>,
    pub(crate) cv: Condvar,
    pub created_epoch: u64,
}

impl Subscriber {
    /// Drop queued frames at or below `through` (the consumer has them).
    pub(crate) fn ack_through(&self, through: u64) {
        let mut q = self.q.lock();
        while q
            .frames
            .front()
            .map(|f| f.epoch <= through)
            .unwrap_or(false)
        {
            let f = q.frames.pop_front().expect("checked front");
            q.bytes -= f.body.len();
        }
        q.acked_through = q.acked_through.max(through);
    }

    /// Block on the condvar with `timeout`, returning the re-acquired
    /// guard (poisoning is ignored — panics never leave partial queue
    /// state, every mutation is a single push/pop/assign).
    pub(crate) fn wait_on<'a>(
        &self,
        guard: MutexGuard<'a, SubQueue>,
        timeout: Duration,
    ) -> MutexGuard<'a, SubQueue> {
        let (guard, _) = self
            .cv
            .wait_timeout(guard, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard
    }

    /// Wait until a frame is queued, the subscriber is shed/closed, or the
    /// timeout passes. Returns whether anything is actionable.
    pub(crate) fn wait_actionable(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut q = self.q.lock();
        loop {
            if !q.frames.is_empty() || q.lagged.is_some() || q.closed {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            q = self.wait_on(q, deadline - now);
        }
    }
}

/// Counter snapshot for `/metrics`.
pub struct SubscriptionGauges {
    pub active: usize,
    pub max: usize,
    pub frames_routed: u64,
    pub sheds: u64,
}

/// The registry: id → subscriber, plus the router that fans each
/// [`EpochDelta`] out. Shared by the publish path (any thread swapping an
/// epoch) and every subscription connection.
pub struct SubscriptionRegistry {
    max_subscriptions: usize,
    queue_bytes: usize,
    inner: Mutex<HashMap<String, Arc<Subscriber>>>,
    next_id: AtomicU64,
    frames_routed: AtomicU64,
    sheds: AtomicU64,
    closed: AtomicBool,
}

impl SubscriptionRegistry {
    pub fn new(max_subscriptions: usize, queue_bytes: usize) -> SubscriptionRegistry {
        SubscriptionRegistry {
            max_subscriptions: max_subscriptions.max(1),
            queue_bytes: queue_bytes.max(1024),
            inner: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            frames_routed: AtomicU64::new(0),
            sheds: AtomicU64::new(0),
            closed: AtomicBool::new(false),
        }
    }

    /// Cheap check the publish path takes before paying for a diff.
    pub fn is_active(&self) -> bool {
        !self.inner.lock().is_empty()
    }

    /// Register a subscriber. `Err` is `(status, message)`.
    pub fn create(
        &self,
        spec: SubscriptionSpec,
        id: Option<String>,
        current_epoch: u64,
    ) -> Result<Arc<Subscriber>, (u16, String)> {
        if self.closed.load(Ordering::SeqCst) {
            return Err((503, "shutting down".to_string()));
        }
        let mut inner = self.inner.lock();
        if inner.len() >= self.max_subscriptions {
            return Err((
                429,
                format!(
                    "subscription limit reached ({}); raise --max-subscriptions",
                    self.max_subscriptions
                ),
            ));
        }
        let id = match id {
            Some(id) => {
                if id.is_empty()
                    || id.len() > 128
                    || !id
                        .bytes()
                        .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
                {
                    return Err((400, "id must be 1-128 chars of [A-Za-z0-9_-]".to_string()));
                }
                if inner.contains_key(&id) {
                    return Err((409, format!("subscription `{id}` already exists")));
                }
                id
            }
            None => loop {
                let id = format!("sub-{}", self.next_id.fetch_add(1, Ordering::SeqCst));
                if !inner.contains_key(&id) {
                    break id;
                }
            },
        };
        let sub = Arc::new(Subscriber {
            id: id.clone(),
            spec,
            q: Mutex::new(SubQueue {
                frames: VecDeque::new(),
                bytes: 0,
                lagged: None,
                last_epoch: current_epoch,
                acked_through: current_epoch,
                closed: false,
            }),
            cv: Condvar::new(),
            created_epoch: current_epoch,
        });
        inner.insert(id, sub.clone());
        Ok(sub)
    }

    pub fn get(&self, id: &str) -> Option<Arc<Subscriber>> {
        self.inner.lock().get(id).cloned()
    }

    pub fn remove(&self, id: &str) -> bool {
        match self.inner.lock().remove(id) {
            Some(sub) => {
                let mut q = sub.q.lock();
                q.closed = true;
                drop(q);
                sub.cv.notify_all();
                true
            }
            None => false,
        }
    }

    /// Fan one epoch's delta out: render each subscriber's frame (empty
    /// frames included — continuity), enqueue without ever blocking, shed
    /// queues that overflow their byte budget.
    pub fn route(&self, delta: &EpochDelta) {
        let subs: Vec<Arc<Subscriber>> = self.inner.lock().values().cloned().collect();
        for sub in subs {
            let body = render_delta_frame(&sub.spec, delta);
            let mut q = sub.q.lock();
            q.last_epoch = delta.epoch;
            if q.closed {
                continue;
            }
            if q.lagged.is_some() {
                // Already shed; drop frames until the consumer re-bases
                // (its snapshot will be at-or-ahead of this delta).
                q.lagged = Some(delta.epoch);
                continue;
            }
            if q.bytes + body.len() > self.queue_bytes {
                q.frames.clear();
                q.bytes = 0;
                q.lagged = Some(delta.epoch);
                self.sheds.fetch_add(1, Ordering::Relaxed);
            } else {
                q.bytes += body.len();
                q.frames.push_back(Frame {
                    from_epoch: delta.from_epoch,
                    epoch: delta.epoch,
                    body,
                });
                self.frames_routed.fetch_add(1, Ordering::Relaxed);
            }
            drop(q);
            sub.cv.notify_all();
        }
    }

    /// Shutdown: refuse new subscriptions, close and wake every consumer.
    pub fn close_all(&self) {
        self.closed.store(true, Ordering::SeqCst);
        let subs: Vec<Arc<Subscriber>> = self.inner.lock().drain().map(|(_, s)| s).collect();
        for sub in subs {
            sub.q.lock().closed = true;
            sub.cv.notify_all();
        }
    }

    pub fn gauges(&self) -> SubscriptionGauges {
        SubscriptionGauges {
            active: self.inner.lock().len(),
            max: self.max_subscriptions,
            frames_routed: self.frames_routed.load(Ordering::Relaxed),
            sheds: self.sheds.load(Ordering::Relaxed),
        }
    }

    /// Debug listing for `GET /subscriptions`.
    pub fn list_json(&self) -> Json {
        let inner = self.inner.lock();
        let mut subs: Vec<Json> = inner
            .values()
            .map(|s| {
                let q = s.q.lock();
                json!({
                    "id": s.id,
                    "spec": s.spec.to_json(),
                    "created_epoch": s.created_epoch,
                    "last_epoch": q.last_epoch,
                    "acked_through": q.acked_through,
                    "queued_frames": q.frames.len(),
                    "queued_bytes": q.bytes,
                    "lagged": q.lagged,
                })
            })
            .collect();
        subs.sort_by_key(|s| s.get("id").and_then(Json::as_str).map(String::from));
        json!({ "subscriptions": subs, "max": self.max_subscriptions })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepdive_storage::{row, Database, DatabaseSnapshot};

    fn snap_with(rows: &[(&str, Vec<(Row, i64)>)], epoch: u64) -> ServeSnapshot {
        // Build a real database so the snapshot is sorted the same way the
        // serve path's captures are.
        let db = Database::new();
        for (name, tuples) in rows {
            db.create_relation(
                Schema::build(*name)
                    .col("x", ValueType::Int)
                    .col("y", ValueType::Int)
                    .finish(),
            )
            .unwrap();
            for (r, c) in tuples {
                for _ in 0..*c {
                    db.insert(name, r.clone()).unwrap();
                }
            }
        }
        let db: DatabaseSnapshot = db.snapshot();
        ServeSnapshot {
            epoch,
            db,
            marginals: BTreeMap::new(),
            fingerprint: 0,
        }
    }

    #[test]
    fn diff_emits_upserts_deletes_and_count_changes() {
        let prev = snap_with(&[("R", vec![(row![1, 1], 1), (row![2, 2], 2)])], 0);
        let next = snap_with(&[("R", vec![(row![2, 2], 1), (row![3, 3], 1)])], 1);
        let d = EpochDelta::diff(&prev, &next, IvmTrace::default());
        let rd = d.relations.get("R").unwrap();
        assert_eq!(rd.deletes, vec![row![1, 1]]);
        assert_eq!(
            rd.upserts,
            vec![(row![2, 2], 1), (row![3, 3], 1)],
            "count change and brand-new row both upsert"
        );
    }

    #[test]
    fn diff_is_empty_for_identical_snapshots() {
        let a = snap_with(&[("R", vec![(row![1, 1], 1)])], 0);
        let b = snap_with(&[("R", vec![(row![1, 1], 1)])], 1);
        let d = EpochDelta::diff(&a, &b, IvmTrace::default());
        assert!(d.relations.is_empty());
        assert!(d.marginals.is_empty());
    }

    #[test]
    fn marginal_diff_tracks_band_membership() {
        let mut prev = snap_with(&[], 0);
        prev.marginals.insert(
            "Q".into(),
            vec![(row![1], 0.95), (row![2], 0.5), (row![3], 0.92)],
        );
        let mut next = snap_with(&[], 1);
        next.marginals
            .insert("Q".into(), vec![(row![1], 0.85), (row![2], 0.97)]);
        let d = EpochDelta::diff(&prev, &next, IvmTrace::default());
        let spec = SubscriptionSpec {
            relation: None,
            marginals: Some(MarginalSub {
                relation: "Q".into(),
                min_p: 0.9,
                max_p: 1.0,
            }),
            initial_snapshot: true,
        };
        let frame: Json = serde_json::from_str(&render_delta_frame(&spec, &d)).unwrap();
        let m = frame.get("marginals").unwrap();
        // row 2 entered the band; row 1 left it; row 3's variable retracted.
        let upserts = m.get("upserts").unwrap().as_array().unwrap();
        assert_eq!(upserts.len(), 1);
        assert_eq!(upserts[0].get("row").unwrap().to_string(), "[2]");
        let deletes: Vec<String> = m
            .get("deletes")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(Json::to_string)
            .collect();
        assert_eq!(deletes.len(), 2);
        assert!(deletes.contains(&"[1]".to_string()));
        assert!(deletes.contains(&"[3]".to_string()));
    }

    #[test]
    fn queue_sheds_instead_of_growing() {
        let reg = SubscriptionRegistry::new(4, 1024);
        let spec = SubscriptionSpec {
            relation: Some(RelationSub {
                relation: "R".into(),
                filter: RowFilter::empty(),
            }),
            marginals: None,
            initial_snapshot: true,
        };
        let sub = reg.create(spec, None, 0).unwrap();
        let prev = snap_with(&[("R", vec![])], 0);
        let mut epoch = 0;
        // Route epochs until the 1 KiB budget overflows.
        loop {
            epoch += 1;
            let next = snap_with(
                &[("R", (0..20).map(|i| (row![i, epoch as i64], 1)).collect())],
                epoch,
            );
            let d = EpochDelta::diff(&prev, &next, IvmTrace::default());
            reg.route(&d);
            if sub.q.lock().lagged.is_some() {
                break;
            }
            assert!(epoch < 100, "never shed");
        }
        let q = sub.q.lock();
        assert!(q.frames.is_empty(), "shed clears the queue");
        assert_eq!(q.lagged, Some(epoch));
        assert_eq!(reg.gauges().sheds, 1);
    }

    #[test]
    fn registry_enforces_capacity_and_unique_ids() {
        let reg = SubscriptionRegistry::new(1, 4096);
        let spec = || SubscriptionSpec {
            relation: Some(RelationSub {
                relation: "R".into(),
                filter: RowFilter::empty(),
            }),
            marginals: None,
            initial_snapshot: true,
        };
        let status = |r: Result<_, (u16, String)>| r.err().map(|e| e.0);
        assert!(reg.create(spec(), Some("a".into()), 0).is_ok());
        assert_eq!(status(reg.create(spec(), Some("a".into()), 0)), Some(429));
        assert!(reg.remove("a"));
        assert!(reg.create(spec(), Some("a".into()), 0).is_ok());
        assert_eq!(status(reg.create(spec(), Some("a".into()), 0)), Some(429));
    }
}
