//! Minimal SIGTERM/SIGINT trapping without a signal-handling dependency.
//!
//! The offline build cannot take `signal-hook` or `libc` as a crate, but on
//! the platforms we run on `std` already links the C library, so declaring
//! `signal(2)` ourselves is enough. The handler does the only thing that is
//! async-signal-safe here: it stores into a static atomic the serve loop
//! polls ([`ServerHandle::run_until`](crate::ServerHandle::run_until)).
//!
//! On non-Unix targets this module compiles to a no-op installer — the flag
//! exists but nothing sets it, and the daemon runs until killed.

use std::sync::atomic::{AtomicBool, Ordering};

/// Set once a termination signal arrives; never cleared.
static SHUTDOWN_REQUESTED: AtomicBool = AtomicBool::new(false);

/// Whether SIGTERM or SIGINT has been received.
pub fn shutdown_requested() -> bool {
    SHUTDOWN_REQUESTED.load(Ordering::SeqCst)
}

/// The flag itself, for loops that want to poll it directly.
pub fn shutdown_flag() -> &'static AtomicBool {
    &SHUTDOWN_REQUESTED
}

/// Request shutdown programmatically (tests, or an admin endpoint).
pub fn request_shutdown() {
    SHUTDOWN_REQUESTED.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
mod imp {
    use super::SHUTDOWN_REQUESTED;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        // `signal(2)` from the C library std already links. The return
        // value is the previous handler; we never restore it.
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Only an atomic store: the one async-signal-safe thing we need.
        SHUTDOWN_REQUESTED.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Install handlers for SIGTERM and SIGINT that set the shutdown flag.
/// Idempotent; call once before entering the serve loop.
pub fn install() {
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_shutdown_sets_the_flag() {
        install();
        // Another test (or a stray signal) may already have set it; we only
        // assert the programmatic path works and the flag is sticky.
        request_shutdown();
        assert!(shutdown_requested());
        assert!(shutdown_flag().load(std::sync::atomic::Ordering::SeqCst));
    }
}
