//! The ingest write-ahead log: crash durability for `POST /documents`.
//!
//! The daemon's checkpoint only captures state as of the last flush; every
//! ingest acknowledged since would be lost to a crash. So each accepted
//! ingest body is appended here — and fsync'd — *before* the 200 goes out.
//! On startup the daemon restores the checkpoint, then replays the log
//! through the same DRed/IVM path a live `POST` takes; on a successful
//! checkpoint flush the log is truncated, because the checkpoint now owns
//! those writes.
//!
//! On-disk format (`ingest.wal`): an 8-byte magic header (`DDWAL1\n\0`)
//! followed by length-prefixed, checksummed records:
//!
//! ```text
//! [u32 LE payload length][u64 LE FNV-1a64(payload)][payload bytes]
//! ```
//!
//! FNV-1a64 is the same content hash the checkpoint manifest uses
//! (`deepdive_core::checkpoint::fnv1a64`). A crash mid-append leaves a torn
//! tail — a record whose length prefix, checksum, or payload is incomplete
//! or whose checksum disagrees. [`Wal::open`] detects the tear, reports it
//! (the caller logs a warning and surfaces `wal_torn_tail` in its replay
//! report), drops the tail, and truncates the file back to the last intact
//! record so subsequent appends start from a clean offset. A torn record
//! was by construction never acknowledged — the ack happens strictly after
//! `sync_data` returns — so dropping it loses nothing a client was promised.

use deepdive_core::checkpoint::fnv1a64;
use deepdive_core::faults::{points, FaultInjector};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// File magic: identifies the format and its version.
const MAGIC: &[u8; 8] = b"DDWAL1\n\0";
/// Per-record framing overhead: u32 length + u64 checksum.
const HEADER_BYTES: u64 = 12;
/// Sanity cap on a single record's payload; anything larger means the
/// length prefix itself is corrupt (ingest bodies are capped well below
/// this by the HTTP layer).
const MAX_RECORD_BYTES: u32 = 64 * 1024 * 1024;

/// What [`Wal::open`] found on disk.
#[derive(Debug)]
pub struct WalRecovery {
    /// Intact record payloads, in append order, pending replay.
    pub records: Vec<Vec<u8>>,
    /// True when a torn/corrupt tail was detected and dropped.
    pub torn_tail: bool,
    /// Bytes of intact log retained (the offset the tail was cut at).
    pub good_bytes: u64,
    /// Bytes of torn tail discarded.
    pub torn_bytes: u64,
}

/// An open, appendable write-ahead log.
pub struct Wal {
    path: PathBuf,
    file: File,
    /// Records currently in the log (recovered + appended since).
    records: u64,
    /// Bytes of intact log on disk (header + records).
    bytes: u64,
    /// Set when an append failed in a way that leaves the on-disk state
    /// unknown (torn write, failed rollback): further appends are refused
    /// until the log is truncated by a successful checkpoint.
    poisoned: bool,
    faults: Arc<FaultInjector>,
}

impl Wal {
    /// Open (creating if needed) `dir/ingest.wal`, scan it for intact
    /// records, drop any torn tail, and position the write cursor after the
    /// last intact record. Returns the log and what was recovered.
    pub fn open(dir: &Path, faults: Arc<FaultInjector>) -> io::Result<(Wal, WalRecovery)> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join("ingest.wal");
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;

        let total = file.metadata()?.len();
        let mut recovery = WalRecovery {
            records: Vec::new(),
            torn_tail: false,
            good_bytes: 0,
            torn_bytes: 0,
        };

        if total == 0 {
            file.write_all(MAGIC)?;
            file.sync_data()?;
            recovery.good_bytes = MAGIC.len() as u64;
        } else {
            let mut magic = [0u8; 8];
            let got = read_fully(&mut file, &mut magic)?;
            if got < magic.len() || &magic != MAGIC {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{} is not a deepdive WAL (bad magic)", path.display()),
                ));
            }
            let mut offset = MAGIC.len() as u64;
            loop {
                match read_record(&mut file) {
                    Ok(Some(payload)) => {
                        offset += HEADER_BYTES + payload.len() as u64;
                        recovery.records.push(payload);
                    }
                    Ok(None) => break, // clean EOF
                    Err(_) => {
                        // Torn or corrupt tail: everything from `offset` on
                        // is untrusted (and was never acknowledged).
                        recovery.torn_tail = true;
                        break;
                    }
                }
            }
            recovery.good_bytes = offset;
            recovery.torn_bytes = total.saturating_sub(offset);
            if recovery.torn_tail {
                file.set_len(offset)?;
                file.sync_data()?;
            }
        }

        file.seek(SeekFrom::Start(recovery.good_bytes))?;
        let wal = Wal {
            path,
            file,
            records: recovery.records.len() as u64,
            bytes: recovery.good_bytes,
            poisoned: false,
            faults,
        };
        Ok((wal, recovery))
    }

    /// Append one record and fsync it. Returns only after the bytes are
    /// durable — the caller may acknowledge the ingest iff this returns
    /// `Ok`. On failure the append is rolled back (the file is truncated to
    /// its pre-append length) so the log stays parseable; if even the
    /// rollback fails the log is poisoned and refuses further appends.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        if self.poisoned {
            return Err(io::Error::other(
                "WAL is poisoned by an earlier failed append; \
                 a checkpoint flush is required to truncate it",
            ));
        }
        if payload.len() as u64 > MAX_RECORD_BYTES as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "WAL record over the 64 MiB cap",
            ));
        }
        let before = self.bytes;
        let mut buf = Vec::with_capacity(HEADER_BYTES as usize + payload.len());
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&fnv1a64(payload).to_le_bytes());
        buf.extend_from_slice(payload);

        // Fault point: a crash mid-write leaves a torn prefix on disk and
        // the client never hears an ack.
        if self.faults.trips(points::WAL_TORN_WRITE) {
            let half = buf.len() / 2;
            let _ = self.file.write_all(&buf[..half]);
            let _ = self.file.flush();
            self.poisoned = true;
            return Err(io::Error::other("injected torn WAL write"));
        }

        let result = self
            .file
            .write_all(&buf)
            .and_then(|()| {
                if self.faults.trips(points::WAL_FSYNC) {
                    Err(io::Error::other("injected fsync failure"))
                } else {
                    Ok(())
                }
            })
            .and_then(|()| self.file.sync_data());
        match result {
            Ok(()) => {
                self.bytes += buf.len() as u64;
                self.records += 1;
                Ok(())
            }
            Err(e) => {
                // Cut the partial record back off so the log stays intact.
                let rolled_back = self
                    .file
                    .set_len(before)
                    .and_then(|()| self.file.seek(SeekFrom::Start(before)).map(|_| ()))
                    .and_then(|()| self.file.sync_data());
                if rolled_back.is_err() {
                    self.poisoned = true;
                }
                Err(e)
            }
        }
    }

    /// Cut the log back to a previously observed `(bytes, records)` point
    /// (as returned by [`Wal::bytes`]/[`Wal::records`]), discarding
    /// everything appended since — the negative-ack path: a record whose
    /// apply failed is answered 5xx, so it must not linger in the log and
    /// materialize on replay. If the cut itself fails the on-disk state is
    /// unknown and the log is poisoned.
    pub fn rollback_to(&mut self, bytes: u64, records: u64) -> io::Result<()> {
        debug_assert!(bytes <= self.bytes && records <= self.records);
        let result = self
            .file
            .set_len(bytes)
            .and_then(|()| self.file.seek(SeekFrom::Start(bytes)).map(|_| ()))
            .and_then(|()| self.file.sync_data());
        match result {
            Ok(()) => {
                self.bytes = bytes;
                self.records = records;
                Ok(())
            }
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
        }
    }

    /// Drop every record: the state they carried is now owned by a
    /// successfully committed checkpoint. Clears poisoning — the unknown
    /// tail is discarded along with everything else.
    pub fn truncate(&mut self) -> io::Result<()> {
        self.file.set_len(MAGIC.len() as u64)?;
        self.file.seek(SeekFrom::Start(MAGIC.len() as u64))?;
        self.file.sync_data()?;
        self.bytes = MAGIC.len() as u64;
        self.records = 0;
        self.poisoned = false;
        Ok(())
    }

    /// Records currently in the log.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Intact bytes on disk (including the magic header).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// True when a failed append left the on-disk state unknown.
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Read as many bytes as available into `buf`; returns how many were read
/// (short only at EOF).
fn read_fully(r: &mut impl Read, buf: &mut [u8]) -> io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

/// Read one record. `Ok(None)` at clean EOF; `Err` on a torn or corrupt
/// record (short header, short payload, oversized length, checksum
/// mismatch).
fn read_record(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; HEADER_BYTES as usize];
    let got = read_fully(r, &mut header)?;
    if got == 0 {
        return Ok(None);
    }
    if got < header.len() {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "torn record header",
        ));
    }
    let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
    let checksum = u64::from_le_bytes(header[4..12].try_into().expect("8 bytes"));
    if len > MAX_RECORD_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "corrupt record length",
        ));
    }
    let mut payload = vec![0u8; len as usize];
    let got = read_fully(r, &mut payload)?;
    if got < payload.len() {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "torn record payload",
        ));
    }
    if fnv1a64(&payload) != checksum {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "record checksum mismatch",
        ));
    }
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("dd-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn injector() -> Arc<FaultInjector> {
        Arc::new(FaultInjector::new())
    }

    #[test]
    fn append_and_recover_round_trips() {
        let dir = tmpdir("roundtrip");
        let payloads: Vec<&[u8]> = vec![b"alpha", b"", b"{\"rows\":{}}", &[0xFF, 0x00, 0x7F]];
        {
            let (mut wal, rec) = Wal::open(&dir, injector()).unwrap();
            assert!(rec.records.is_empty());
            assert!(!rec.torn_tail);
            for p in &payloads {
                wal.append(p).unwrap();
            }
            assert_eq!(wal.records(), payloads.len() as u64);
        }
        let (wal, rec) = Wal::open(&dir, injector()).unwrap();
        assert!(!rec.torn_tail);
        assert_eq!(rec.records, payloads);
        assert_eq!(wal.records(), payloads.len() as u64);
        assert_eq!(wal.bytes(), rec.good_bytes);
    }

    #[test]
    fn truncated_final_record_is_dropped_not_fatal() {
        let dir = tmpdir("torn");
        let good_bytes;
        {
            let (mut wal, _) = Wal::open(&dir, injector()).unwrap();
            wal.append(b"first record").unwrap();
            wal.append(b"second record").unwrap();
            good_bytes = wal.bytes();
            wal.append(b"third record, about to be torn").unwrap();
        }
        // Simulate a crash mid-append: cut the file inside the third
        // record's payload.
        let path = dir.join("ingest.wal");
        let full = std::fs::metadata(&path).unwrap().len();
        let cut = good_bytes + HEADER_BYTES + 4; // header + 4 payload bytes
        assert!(cut < full);
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(cut).unwrap();
        drop(f);

        let (mut wal, rec) = Wal::open(&dir, injector()).unwrap();
        assert!(rec.torn_tail, "tear must be detected");
        assert_eq!(rec.records.len(), 2, "intact records survive");
        assert_eq!(rec.records[0], b"first record");
        assert_eq!(rec.records[1], b"second record");
        assert_eq!(rec.good_bytes, good_bytes);
        assert_eq!(rec.torn_bytes, cut - good_bytes);

        // The file was truncated back to the last intact record, so new
        // appends land cleanly after it.
        wal.append(b"post-recovery record").unwrap();
        drop(wal);
        let (_, rec) = Wal::open(&dir, injector()).unwrap();
        assert!(!rec.torn_tail);
        assert_eq!(rec.records.len(), 3);
        assert_eq!(rec.records[2], b"post-recovery record");
    }

    #[test]
    fn corrupted_checksum_drops_the_tail() {
        let dir = tmpdir("cksum");
        {
            let (mut wal, _) = Wal::open(&dir, injector()).unwrap();
            wal.append(b"keep me").unwrap();
            wal.append(b"flip a bit in me").unwrap();
        }
        let path = dir.join("ingest.wal");
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        let (_, rec) = Wal::open(&dir, injector()).unwrap();
        assert!(rec.torn_tail);
        assert_eq!(rec.records, vec![b"keep me".to_vec()]);
    }

    #[test]
    fn fsync_fault_rolls_back_and_log_stays_intact() {
        let dir = tmpdir("fsync");
        let faults = injector();
        let (mut wal, _) = Wal::open(&dir, faults.clone()).unwrap();
        wal.append(b"durable").unwrap();

        faults.arm(points::WAL_FSYNC, 1);
        let err = wal.append(b"never acked").unwrap_err();
        assert!(err.to_string().contains("injected fsync failure"));
        assert_eq!(wal.records(), 1, "failed append not counted");
        assert!(!wal.poisoned(), "rollback succeeded");

        // The log is still appendable and the failed record left no trace.
        wal.append(b"after the failure").unwrap();
        drop(wal);
        let (_, rec) = Wal::open(&dir, injector()).unwrap();
        assert!(!rec.torn_tail);
        assert_eq!(
            rec.records,
            vec![b"durable".to_vec(), b"after the failure".to_vec()]
        );
    }

    #[test]
    fn torn_write_fault_poisons_until_truncate() {
        let dir = tmpdir("tornwrite");
        let faults = injector();
        let (mut wal, _) = Wal::open(&dir, faults.clone()).unwrap();
        wal.append(b"acked").unwrap();

        faults.arm(points::WAL_TORN_WRITE, 1);
        assert!(wal.append(b"torn mid-write").is_err());
        assert!(wal.poisoned());
        assert!(
            wal.append(b"refused").is_err(),
            "poisoned log refuses appends"
        );

        // Reopening (a restart) recovers the intact prefix and drops the tear.
        drop(wal);
        let (mut wal, rec) = Wal::open(&dir, injector()).unwrap();
        assert!(rec.torn_tail);
        assert_eq!(rec.records, vec![b"acked".to_vec()]);

        // A checkpoint-driven truncate clears everything.
        wal.truncate().unwrap();
        assert_eq!(wal.records(), 0);
        drop(wal);
        let (_, rec) = Wal::open(&dir, injector()).unwrap();
        assert!(rec.records.is_empty());
        assert!(!rec.torn_tail);
    }

    #[test]
    fn rollback_to_discards_records_appended_since() {
        let dir = tmpdir("rollback");
        let (mut wal, _) = Wal::open(&dir, injector()).unwrap();
        wal.append(b"keep me").unwrap();
        let (bytes, records) = (wal.bytes(), wal.records());
        wal.append(b"negatively acked").unwrap();
        wal.rollback_to(bytes, records).unwrap();
        assert_eq!(wal.records(), 1);
        assert_eq!(wal.bytes(), bytes);
        assert!(!wal.poisoned());

        // The log stays appendable and replay never sees the rolled-back
        // record.
        wal.append(b"after the rollback").unwrap();
        drop(wal);
        let (_, rec) = Wal::open(&dir, injector()).unwrap();
        assert!(!rec.torn_tail);
        assert_eq!(
            rec.records,
            vec![b"keep me".to_vec(), b"after the rollback".to_vec()]
        );
    }

    #[test]
    fn truncate_empties_the_log() {
        let dir = tmpdir("trunc");
        let (mut wal, _) = Wal::open(&dir, injector()).unwrap();
        wal.append(b"one").unwrap();
        wal.append(b"two").unwrap();
        wal.truncate().unwrap();
        assert_eq!(wal.records(), 0);
        assert_eq!(wal.bytes(), MAGIC.len() as u64);
        wal.append(b"three").unwrap();
        drop(wal);
        let (_, rec) = Wal::open(&dir, injector()).unwrap();
        assert_eq!(rec.records, vec![b"three".to_vec()]);
    }

    #[test]
    fn non_wal_file_is_refused() {
        let dir = tmpdir("magic");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("ingest.wal"), b"definitely not a WAL file").unwrap();
        assert!(Wal::open(&dir, injector()).is_err());
    }
}
