//! The ingest write-ahead log: crash durability for `POST /documents` and
//! the shipping unit for primary → follower replication.
//!
//! The daemon's checkpoint only captures state as of the last flush; every
//! ingest acknowledged since would be lost to a crash. So each accepted
//! ingest body is appended here — and fsync'd — *before* the 200 goes out.
//! On startup the daemon restores the checkpoint, then replays the pending
//! suffix of the log through the same DRed/IVM path a live `POST` takes.
//!
//! ## On-disk layout: manifest + segments
//!
//! The log is a directory of size-rotated segment files plus a tiny
//! manifest:
//!
//! ```text
//! wal.manifest              # "#deepdive-wal-manifest-v1" + stream id +
//!                           # checkpoint seq + term + checksum
//! seg-00000000000000000000.wal
//! seg-00000000000000000417.wal   # first seq of each segment in the name
//! ```
//!
//! New segments start with a 44-byte v3 header; v2's 36-byte header is
//! still read (term = 0), so a log written by an older build opens in
//! place:
//!
//! ```text
//! [8B magic "DDWAL3\n\0"][u32 LE format version = 3]
//! [u64 LE stream id][u64 LE first seq][u64 LE checkpoint seq snapshot]
//! [u64 LE term snapshot]                       # v3 only
//! ```
//!
//! followed by versioned, length-prefixed, checksummed frames:
//!
//! ```text
//! [u8 record version = 1][u32 LE payload length][u64 LE FNV-1a64(payload)][payload]
//! ```
//!
//! The manifest is authoritative for the mutable header fields (stream id,
//! checkpoint seq); segment headers carry a snapshot for debuggability and
//! pin the segment's first seq. A legacy single-file `ingest.wal` (v1 or
//! v2) migrates on open: the manifest is written from its header, then the
//! file is renamed into place as the first segment — each crash window in
//! between recovers on the next open.
//!
//! * **stream id** names the WAL's history. A primary mints a random
//!   nonzero id when it creates a fresh log; a follower's log starts at the
//!   `0` sentinel ("unadopted") and adopts the primary's id on first
//!   contact. Replication refuses to mix records across stream ids.
//! * **seqs are logical and monotonic.** The oldest frame on disk is
//!   `base seq` (the first segment's first seq); a checkpoint flush does
//!   not delete anything — it advances `checkpoint seq` in the manifest
//!   (records at lower seqs are owned by the checkpoint) and
//!   [`Wal::compact`] later unlinks *whole segments* that fall entirely
//!   below the follower-retention horizon. Deleting oldest-first keeps the
//!   remaining set contiguous across any crash, so compaction needs no
//!   prefix rewrite and never copies a byte. `records()` reports the
//!   *pending* count (`next seq − checkpoint seq`), which is what replay
//!   and drain care about.
//! * **group commit batches share one fsync.** [`Wal::append_batch`]
//!   writes every frame of a batch (rotating segments as the size
//!   threshold crosses) and syncs once; the batch acks together or rolls
//!   back together.
//! * **version bytes fail loud.** Opening a future *format* or *manifest*
//!   version, or meeting a checksum-valid frame with an unknown *record*
//!   version, produces a clear "newer than supported" error instead of a
//!   checksum/torn-tail misdiagnosis.
//!
//! A crash mid-append leaves a torn tail — necessarily in the *final*
//! segment, the only one ever written to. [`Wal::open`] detects it, and —
//! only when the tear sits in the *pending* region, whose records were by
//! construction never acknowledged — drops it and truncates back to the
//! last intact frame. Corruption in a sealed (non-final) segment or inside
//! the checkpointed region is a hard error: those records were acked and
//! shipped, so silently dropping them would fork history under a follower.

use deepdive_core::checkpoint::fnv1a64;
use deepdive_core::faults::{disk_eio_error, disk_full_error, points, FaultInjector};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// File magic for format v3 (segment files carrying a term snapshot).
const MAGIC_V3: &[u8; 8] = b"DDWAL3\n\0";
/// File magic for format v2 (read-compatible; term taken as 0).
const MAGIC_V2: &[u8; 8] = b"DDWAL2\n\0";
/// File magic of the legacy v1 format (auto-upgraded on open).
const MAGIC_V1: &[u8; 8] = b"DDWAL1\n\0";
/// The file format version this build writes.
const FORMAT_VERSION: u32 = 3;
/// The newest format version this build still reads in place.
const COMPAT_FORMAT_VERSION: u32 = 2;
/// The frame (record) version this build writes and reads.
pub const RECORD_VERSION: u8 = 1;
/// v3 segment header: magic + format version + stream id + first seq +
/// checkpoint seq snapshot + term snapshot.
const HEADER_LEN: u64 = 44;
/// v2 segment header (no term snapshot).
const HEADER_LEN_V2: u64 = 36;
/// Per-frame framing overhead: version byte + u32 length + u64 checksum.
const FRAME_HEADER_BYTES: u64 = 13;
/// v1 framing overhead: u32 length + u64 checksum (no version byte).
const V1_HEADER_BYTES: u64 = 12;
/// Sanity cap on a single record's payload; anything larger means the
/// length prefix itself is corrupt (ingest bodies are capped well below
/// this by the HTTP layer).
const MAX_RECORD_BYTES: u32 = 64 * 1024 * 1024;
/// Default number of checkpointed records retained for followers before
/// compaction unlinks whole segments.
pub const DEFAULT_RETAIN_RECORDS: u64 = 1024;
/// Default segment rotation threshold (frame bytes per segment).
pub const DEFAULT_SEGMENT_BYTES: u64 = 4 * 1024 * 1024;
/// The manifest file name inside the WAL directory.
const MANIFEST_FILE: &str = "wal.manifest";
/// First line of the manifest.
const MANIFEST_HEADER: &str = "#deepdive-wal-manifest-v1";
/// The legacy single-file log migrated into segments on open.
const LEGACY_FILE: &str = "ingest.wal";

/// Wire/disk framing shared by the WAL segments and the replication
/// stream.
///
/// The streaming endpoint ships frames byte-for-byte as they sit in the
/// segment files; the follower runs them through [`frame::FrameDecoder`],
/// which re-verifies every checksum on arrival, tolerates arbitrary chunk
/// boundaries, and skips the single-byte heartbeats the primary interleaves
/// to keep an idle connection alive. Segment boundaries do not exist on
/// the wire: frames from consecutive segments concatenate seamlessly.
pub mod frame {
    use super::{fnv1a64, FRAME_HEADER_BYTES, MAX_RECORD_BYTES, RECORD_VERSION};

    /// A single heartbeat byte, interleaved between frames on the wire
    /// (never written to disk). `0` is not a valid record version, so a
    /// decoder positioned at a frame boundary can always tell the two
    /// apart.
    pub const HEARTBEAT: u8 = 0;

    /// Encode one payload as a wire/disk frame.
    pub fn encode(payload: &[u8]) -> Vec<u8> {
        let mut buf = Vec::with_capacity(FRAME_HEADER_BYTES as usize + payload.len());
        buf.push(RECORD_VERSION);
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&fnv1a64(payload).to_le_bytes());
        buf.extend_from_slice(payload);
        buf
    }

    /// Why a decoder refused the stream.
    #[derive(Debug, PartialEq, Eq)]
    pub enum FrameError {
        /// Checksum mismatch, impossible length — the bytes are not a
        /// well-formed frame. The follower drops the connection and
        /// resumes from its last durable seq.
        Corrupt(&'static str),
        /// A checksum-*valid* frame carrying an unknown record version:
        /// written by a newer deepdive. Refused loudly rather than
        /// misapplied or misreported as corruption.
        FutureVersion(u8),
    }

    impl std::fmt::Display for FrameError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                FrameError::Corrupt(why) => write!(f, "corrupt WAL frame: {why}"),
                FrameError::FutureVersion(v) => write!(
                    f,
                    "WAL record version {v} is newer than supported ({RECORD_VERSION})"
                ),
            }
        }
    }

    /// Incremental frame decoder: feed arbitrary byte slices (chunk
    /// boundaries land anywhere), pull complete verified payloads.
    #[derive(Debug, Default)]
    pub struct FrameDecoder {
        buf: Vec<u8>,
        pos: usize,
    }

    impl FrameDecoder {
        pub fn new() -> Self {
            FrameDecoder::default()
        }

        pub fn feed(&mut self, bytes: &[u8]) {
            self.buf.extend_from_slice(bytes);
        }

        /// Bytes buffered but not yet consumed by a decoded frame.
        pub fn buffered(&self) -> usize {
            self.buf.len() - self.pos
        }

        /// Next complete payload: `Ok(None)` when more bytes are needed,
        /// `Err` when the stream is not trustworthy from here on (the
        /// caller must discard the connection — a partial prefix of a
        /// corrupt frame is never applied).
        #[allow(clippy::should_implement_trait)] // fallible, not an Iterator
        pub fn next(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
            // Heartbeats are single bytes between frames.
            while self.pos < self.buf.len() && self.buf[self.pos] == HEARTBEAT {
                self.pos += 1;
            }
            let avail = &self.buf[self.pos..];
            if (avail.len() as u64) < FRAME_HEADER_BYTES {
                self.compact();
                return Ok(None);
            }
            let version = avail[0];
            let len = u32::from_le_bytes(avail[1..5].try_into().expect("4 bytes"));
            let checksum = u64::from_le_bytes(avail[5..13].try_into().expect("8 bytes"));
            if len > MAX_RECORD_BYTES {
                return Err(FrameError::Corrupt("frame length over the 64 MiB cap"));
            }
            let total = FRAME_HEADER_BYTES as usize + len as usize;
            if avail.len() < total {
                self.compact();
                return Ok(None);
            }
            let payload = &avail[FRAME_HEADER_BYTES as usize..total];
            let checksum_ok = fnv1a64(payload) == checksum;
            if version != RECORD_VERSION {
                // A valid checksum under an unknown version byte means
                // a newer writer, not line noise.
                return Err(if checksum_ok {
                    FrameError::FutureVersion(version)
                } else {
                    FrameError::Corrupt("bad record version byte")
                });
            }
            if !checksum_ok {
                return Err(FrameError::Corrupt("frame checksum mismatch"));
            }
            let out = payload.to_vec();
            self.pos += total;
            self.compact();
            Ok(Some(out))
        }

        fn compact(&mut self) {
            if self.pos > 4096 {
                self.buf.drain(..self.pos);
                self.pos = 0;
            }
        }
    }
}

/// Tunables for [`Wal::open_with`].
#[derive(Debug, Clone, Copy)]
pub struct WalOptions {
    /// Checkpointed records kept for followers before compaction unlinks
    /// whole segments below the horizon.
    pub retain_records: u64,
    /// When creating a brand-new log: mint a random nonzero stream id
    /// (primary) vs. the `0` "unadopted" sentinel (follower, which adopts
    /// the primary's id on first contact).
    pub fresh_stream: bool,
    /// Frame bytes per segment before the active segment rotates.
    pub segment_bytes: u64,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            retain_records: DEFAULT_RETAIN_RECORDS,
            fresh_stream: true,
            segment_bytes: DEFAULT_SEGMENT_BYTES,
        }
    }
}

/// What [`Wal::open`] found on disk.
#[derive(Debug)]
pub struct WalRecovery {
    /// Intact *pending* record payloads (seq ≥ checkpoint seq), in append
    /// order, awaiting replay.
    pub records: Vec<Vec<u8>>,
    /// Seq of the first pending record (== the recovered checkpoint seq).
    pub first_pending_seq: u64,
    /// True when a torn/corrupt tail was detected and dropped.
    pub torn_tail: bool,
    /// Bytes of intact log retained across all segments.
    pub good_bytes: u64,
    /// Bytes of torn tail discarded.
    pub torn_bytes: u64,
    /// True when a legacy v1 log was upgraded on open.
    pub upgraded_v1: bool,
    /// Checkpoint-owned records still retained for followers.
    pub retained: u64,
    /// True when `wal.manifest` was missing or corrupt and was rebuilt by
    /// scanning the segment headers (see [`Wal::open_with`]).
    pub manifest_rebuilt: bool,
}

/// A rollback point captured before a speculative append (see
/// [`Wal::rollback_to`]).
#[derive(Debug, Clone, Copy)]
pub struct WalMark {
    /// Segment count at the mark (later segments are deleted whole).
    segments: usize,
    /// Byte length of the then-active segment.
    bytes: u64,
    next_seq: u64,
}

/// One on-disk segment file and its frame index.
#[derive(Debug)]
struct Segment {
    path: PathBuf,
    /// Seq of this segment's first frame (also encoded in the file name).
    first_seq: u64,
    /// Intact bytes (header + frames).
    bytes: u64,
    /// Byte offset of each frame; `index[i]` is seq `first_seq + i`.
    index: Vec<u64>,
}

impl Segment {
    fn end_seq(&self) -> u64 {
        self.first_seq + self.index.len() as u64
    }
}

/// An open, appendable, segmented write-ahead log.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    /// Ordered, seq-contiguous segments; the last one is active.
    segments: Vec<Segment>,
    /// Append handle on the active segment, cursor parked at its end.
    file: File,
    stream_id: u64,
    next_seq: u64,
    checkpoint_seq: u64,
    /// Fencing term (monotonic, bumped by promotion). Persisted in the
    /// manifest and snapshotted into every new segment header.
    term: u64,
    retain: u64,
    segment_target: u64,
    /// Set when an append failed in a way that leaves the on-disk tail
    /// unknown (torn write, failed rollback): further appends are refused
    /// until a checkpoint flush repairs the tail.
    poisoned: bool,
    /// Compaction runs that unlinked at least one segment.
    compactions: u64,
    faults: Arc<FaultInjector>,
}

impl Wal {
    /// Open (creating if needed) the segmented log in `dir` with default
    /// options.
    pub fn open(dir: &Path, faults: Arc<FaultInjector>) -> io::Result<(Wal, WalRecovery)> {
        Wal::open_with(dir, faults, WalOptions::default())
    }

    /// Open (creating if needed) the segmented log in `dir`: migrate a
    /// legacy single-file `ingest.wal`, scan every segment for intact
    /// frames, drop a torn *pending* tail in the final segment, refuse
    /// corruption anywhere else, and position the write cursor after the
    /// last intact frame.
    pub fn open_with(
        dir: &Path,
        faults: Arc<FaultInjector>,
        options: WalOptions,
    ) -> io::Result<(Wal, WalRecovery)> {
        std::fs::create_dir_all(dir)?;
        let manifest_path = dir.join(MANIFEST_FILE);
        let legacy = dir.join(LEGACY_FILE);
        let mut upgraded_v1 = false;
        let mut v1_torn = (false, 0u64); // (torn, torn_bytes)

        if !manifest_path.exists() {
            if legacy.exists() {
                // Migrate the single-file log. Manifest first (derived from
                // the legacy header), then rename the file into place as
                // the first segment: a crash in between leaves the
                // manifest + legacy file, which the branch below finishes.
                let mut magic = [0u8; 8];
                let mut f = File::open(&legacy)?;
                let got = read_fully(&mut f, &mut magic)?;
                drop(f);
                if got == magic.len() && &magic == MAGIC_V1 {
                    // Segment first, manifest second, legacy removal last:
                    // a crash after the manifest write lands in the
                    // "manifest + legacy" branch below, which must find the
                    // migrated segment already in place.
                    let (records, torn, torn_bytes) = read_v1(&legacy)?;
                    let stream_id = if options.fresh_stream {
                        random_stream_id()
                    } else {
                        0
                    };
                    write_fresh_segment(&dir.join(segment_name(0)), stream_id, 0, 0, 0, &records)?;
                    write_manifest(dir, stream_id, 0, 0)?;
                    std::fs::remove_file(&legacy)?;
                    sync_dir(dir)?;
                    upgraded_v1 = true;
                    v1_torn = (torn, torn_bytes);
                } else if got == magic.len() && &magic == MAGIC_V2 {
                    let h = read_header(&legacy)?;
                    write_manifest(dir, h.stream_id, h.checkpoint_seq, h.term)?;
                    std::fs::rename(&legacy, dir.join(segment_name(h.first_seq)))?;
                    sync_dir(dir)?;
                } else {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("{} is not a deepdive WAL (bad magic)", legacy.display()),
                    ));
                }
            } else {
                // No legacy log. If segments already exist, the manifest
                // was lost (crash mid-resync, operator damage): leave it
                // absent and let the rebuild path below reconstruct it
                // from the segment headers. Otherwise mint a new log.
                let has_segments = std::fs::read_dir(dir)?.any(|e| {
                    e.ok()
                        .map(|e| parse_segment_name(&e.file_name().to_string_lossy()).is_some())
                        .unwrap_or(false)
                });
                if !has_segments {
                    let stream_id = if options.fresh_stream {
                        random_stream_id()
                    } else {
                        0
                    };
                    write_manifest(dir, stream_id, 0, 0)?;
                }
            }
        } else if legacy.exists() {
            // A crash interrupted a migration after the manifest write:
            // finish it. A v2 legacy still needs its rename; a v1 legacy
            // was already rewritten into a segment (segment-then-manifest
            // ordering above), so only the removal is left.
            let mut magic = [0u8; 8];
            let mut f = File::open(&legacy)?;
            let got = read_fully(&mut f, &mut magic)?;
            drop(f);
            if got == magic.len() && &magic == MAGIC_V2 {
                let h = read_header(&legacy)?;
                std::fs::rename(&legacy, dir.join(segment_name(h.first_seq)))?;
            } else {
                std::fs::remove_file(&legacy)?;
            }
            sync_dir(dir)?;
        }

        // A missing or corrupt manifest is rebuilt from the segment
        // headers — never a refusal to start. Only a well-formed future
        // manifest version stays fatal.
        let (stream_id, checkpoint_seq, term, manifest_rebuilt) =
            match read_manifest(&manifest_path) {
                Ok((s, c, t)) => (s, c, t, false),
                Err(e)
                    if (e.kind() == io::ErrorKind::NotFound
                        || e.kind() == io::ErrorKind::InvalidData)
                        && !e.to_string().contains("newer than supported") =>
                {
                    let (s, c, t) = rebuild_manifest(dir, &options)?;
                    write_manifest(dir, s, c, t)?;
                    (s, c, t, true)
                }
                Err(e) => return Err(e),
            };

        // Enumerate segments by the first seq in their file names.
        let mut seg_files: Vec<(u64, PathBuf)> = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            if let Some(first_seq) = parse_segment_name(&name.to_string_lossy()) {
                seg_files.push((first_seq, entry.path()));
            }
        }
        seg_files.sort();
        if seg_files.is_empty() {
            // Fresh log (or a crash between manifest creation and the
            // first segment): start an empty segment at the checkpoint
            // seq.
            let path = dir.join(segment_name(checkpoint_seq));
            write_fresh_segment(&path, stream_id, checkpoint_seq, checkpoint_seq, term, &[])?;
            seg_files.push((checkpoint_seq, path));
        }

        // Scan every segment. A tear is survivable only in the final
        // segment's pending region; anything else is fatal — acked
        // history must not silently shrink.
        let mut recovery = WalRecovery {
            records: Vec::new(),
            first_pending_seq: checkpoint_seq,
            torn_tail: v1_torn.0,
            good_bytes: 0,
            torn_bytes: v1_torn.1,
            upgraded_v1,
            retained: 0,
            manifest_rebuilt,
        };
        let base_seq = seg_files[0].0;
        if checkpoint_seq < base_seq {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: checkpoint seq below base seq", dir.display()),
            ));
        }
        let mut segments: Vec<Segment> = Vec::with_capacity(seg_files.len());
        let mut seq = base_seq;
        let last_i = seg_files.len() - 1;
        for (i, (first_seq, path)) in seg_files.into_iter().enumerate() {
            if first_seq != seq {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "{}: segment starts at seq {first_seq} but the \
                         previous segment ends at seq {seq}",
                        path.display()
                    ),
                ));
            }
            let mut file = OpenOptions::new()
                .read(true)
                .write(true)
                .truncate(false)
                .open(&path)?;
            let total = file.metadata()?.len();
            let header = parse_header(&mut file, &path)?;
            if header.stream_id != stream_id {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "{}: segment stream id {:016x} does not \
                         match the manifest's {stream_id:016x}",
                        path.display(),
                        header.stream_id
                    ),
                ));
            }
            if header.first_seq != first_seq {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "{}: segment header claims first seq {} \
                         but the file is named for seq {first_seq}",
                        path.display(),
                        header.first_seq
                    ),
                ));
            }
            let mut index = Vec::new();
            let mut offset = header.len;
            loop {
                match read_disk_frame(&mut file) {
                    Ok(Some(payload)) => {
                        index.push(offset);
                        offset += FRAME_HEADER_BYTES + payload.len() as u64;
                        if seq >= checkpoint_seq {
                            recovery.records.push(payload);
                        }
                        seq += 1;
                    }
                    Ok(None) => break, // clean EOF
                    Err(e) => {
                        let future_version = e.kind() == io::ErrorKind::InvalidData
                            && e.to_string().contains("newer than supported");
                        if i < last_i || seq < checkpoint_seq || future_version {
                            // A sealed segment, checkpointed history, or a
                            // newer writer's record: all refuse-loudly,
                            // not truncate-silently.
                            return Err(io::Error::new(
                                io::ErrorKind::InvalidData,
                                format!("{}: {e} at seq {seq}", path.display()),
                            ));
                        }
                        recovery.torn_tail = true;
                        break;
                    }
                }
            }
            recovery.good_bytes += offset;
            recovery.torn_bytes += total.saturating_sub(offset);
            if total > offset {
                file.set_len(offset)?;
                file.sync_data()?;
            }
            segments.push(Segment {
                path,
                first_seq,
                bytes: offset,
                index,
            });
        }
        if seq < checkpoint_seq {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "{}: log ends at seq {seq} but the manifest claims seqs \
                     through {checkpoint_seq} were checkpointed",
                    dir.display()
                ),
            ));
        }

        let active = segments.last().expect("at least one segment");
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .truncate(false)
            .open(&active.path)?;
        file.seek(SeekFrom::Start(active.bytes))?;

        let mut wal = Wal {
            dir: dir.to_path_buf(),
            segments,
            file,
            stream_id,
            next_seq: seq,
            checkpoint_seq,
            term,
            retain: options.retain_records,
            segment_target: options.segment_bytes.max(1),
            poisoned: false,
            compactions: 0,
            faults,
        };
        // Segments stranded below a shrunk retention window (e.g. the
        // knob changed between runs, or a compaction was cut short by a
        // crash) unlink on open — compaction is idempotent.
        wal.compact()?;
        recovery.retained = wal.checkpoint_seq - wal.base_seq();
        Ok((wal, recovery))
    }

    /// Append one record, fsync it, and return its seq. Returns only after
    /// the bytes are durable — the caller may acknowledge the ingest iff
    /// this returns `Ok`. On failure the append is rolled back so the log
    /// stays parseable; if even the rollback fails the log is poisoned and
    /// refuses further appends.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<u64> {
        self.append_batch(&[payload])
    }

    /// Append a batch of records under a single fsync and return the seq
    /// of the first. The active segment rotates mid-batch when it crosses
    /// the size threshold (each sealed segment is synced before the
    /// rotation). The batch is atomic: either every record is durable when
    /// this returns `Ok`, or none survives — a failure rolls the log back
    /// to its pre-batch state (poisoning it if even that fails).
    pub fn append_batch(&mut self, payloads: &[&[u8]]) -> io::Result<u64> {
        if self.poisoned {
            return Err(io::Error::other(
                "WAL is poisoned by an earlier failed append; \
                 a checkpoint flush is required to repair it",
            ));
        }
        for p in payloads {
            if p.len() as u64 > MAX_RECORD_BYTES as u64 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "WAL record over the 64 MiB cap",
                ));
            }
        }
        let first = self.next_seq;
        if payloads.is_empty() {
            return Ok(first);
        }
        let mark = self.mark();
        match self.write_batch(payloads) {
            Ok(()) => Ok(first),
            Err(e) => {
                // Cut the partial batch back off so the log stays intact
                // and no negatively-acked record can replay. A torn write
                // already poisoned the log (the on-disk tail is unknown);
                // the best-effort cleanup below still runs at repair time.
                if !self.poisoned && self.rollback_to(&mark).is_err() {
                    // rollback_to poisoned the log.
                }
                Err(e)
            }
        }
    }

    /// Write + fsync the batch frames, updating in-memory state eagerly
    /// (the caller rolls back on error).
    fn write_batch(&mut self, payloads: &[&[u8]]) -> io::Result<()> {
        for payload in payloads {
            let active = self.segments.last().expect("at least one segment");
            if !active.index.is_empty()
                && active.bytes.saturating_sub(HEADER_LEN) >= self.segment_target
            {
                self.rotate()?;
            }
            // Fault point: a crash mid-write leaves a torn prefix on disk
            // and the client never hears an ack.
            if self.faults.trips(points::WAL_TORN_WRITE) {
                let buf = frame::encode(payload);
                let half = buf.len() / 2;
                let _ = self.file.write_all(&buf[..half]);
                let _ = self.file.flush();
                self.poisoned = true;
                return Err(io::Error::other("injected torn WAL write"));
            }
            // Fault points: the disk itself fails the append. The error
            // carries the real errno so the serve layer can classify it as
            // a durable-storage failure (CLI exit code 8).
            if self.faults.trips(points::DISK_ENOSPC) {
                let active = self.segments.last().expect("at least one segment");
                return Err(disk_full_error(&active.path));
            }
            if self.faults.trips(points::DISK_EIO) {
                let active = self.segments.last().expect("at least one segment");
                return Err(disk_eio_error(&active.path));
            }
            let mut buf = frame::encode(payload);
            // Fault point: silent media corruption — the write "succeeds"
            // but a bit on disk flips. Nothing notices until the scrubber
            // (or a follower) re-verifies the frame checksum.
            if self.faults.trips(points::DISK_BITFLIP) {
                let last = buf.len() - 1;
                buf[last] ^= 0x01;
            }
            self.file.write_all(&buf)?;
            let active = self.segments.last_mut().expect("at least one segment");
            active.index.push(active.bytes);
            active.bytes += buf.len() as u64;
            self.next_seq += 1;
        }
        if self.faults.trips(points::WAL_FSYNC) {
            return Err(io::Error::other("injected fsync failure"));
        }
        self.file.sync_data()
    }

    /// Seal the active segment (sync it) and start a fresh one at the
    /// current head seq.
    fn rotate(&mut self) -> io::Result<()> {
        if self.faults.trips(points::WAL_ROTATE_FAIL) {
            return Err(io::Error::other("injected segment rotation failure"));
        }
        self.file.sync_data()?;
        let first_seq = self.segments.last().expect("active segment").end_seq();
        let path = self.dir.join(segment_name(first_seq));
        let mut f = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)?;
        f.write_all(&header_bytes(
            self.stream_id,
            first_seq,
            self.checkpoint_seq,
            self.term,
        ))?;
        f.sync_data()?;
        sync_dir(&self.dir)?;
        self.segments.push(Segment {
            path,
            first_seq,
            bytes: HEADER_LEN,
            index: Vec::new(),
        });
        self.file = f;
        Ok(())
    }

    /// Capture the current append position for a later [`Wal::rollback_to`].
    pub fn mark(&self) -> WalMark {
        WalMark {
            segments: self.segments.len(),
            bytes: self.segments.last().expect("active segment").bytes,
            next_seq: self.next_seq,
        }
    }

    /// Cut the log back to a previously captured mark, discarding every
    /// record appended since — the negative-ack path: a record whose apply
    /// failed is answered 5xx, so it must not linger in the log and
    /// materialize on replay. Segments created since the mark are deleted
    /// whole (newest first, so a crash mid-rollback leaves a contiguous
    /// set); the then-active segment is truncated back. Never cuts below
    /// the checkpoint seq. If the cut itself fails the on-disk state is
    /// unknown and the log is poisoned.
    pub fn rollback_to(&mut self, mark: &WalMark) -> io::Result<()> {
        debug_assert!(mark.segments <= self.segments.len() && mark.next_seq <= self.next_seq);
        debug_assert!(
            mark.next_seq >= self.checkpoint_seq,
            "cannot roll back checkpointed records"
        );
        let result = (|| -> io::Result<()> {
            let deleted = self.segments.len() > mark.segments;
            while self.segments.len() > mark.segments {
                let seg = self.segments.last().expect("non-empty");
                std::fs::remove_file(&seg.path)?;
                self.segments.pop();
            }
            if deleted {
                sync_dir(&self.dir)?;
                let active = self.segments.last().expect("mark'd segment");
                self.file = OpenOptions::new()
                    .read(true)
                    .write(true)
                    .truncate(false)
                    .open(&active.path)?;
            }
            self.file.set_len(mark.bytes)?;
            self.file.seek(SeekFrom::Start(mark.bytes))?;
            self.file.sync_data()
        })();
        match result {
            Ok(()) => {
                let active = self.segments.last_mut().expect("active segment");
                active.bytes = mark.bytes;
                active
                    .index
                    .truncate((mark.next_seq - active.first_seq) as usize);
                self.next_seq = mark.next_seq;
                Ok(())
            }
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
        }
    }

    /// A checkpoint now owns every record below `through_seq`: advance the
    /// durable checkpoint seq in the manifest and repair a poisoned tail
    /// (the unknown bytes were never acked and the checkpoint supersedes
    /// the log anyway). The records themselves stay on disk and fetchable
    /// by followers until [`Wal::compact`] unlinks their segments — the
    /// serve layer runs compaction off the ingest path.
    pub fn mark_checkpointed(&mut self, through_seq: u64) -> io::Result<()> {
        let through = through_seq.clamp(self.checkpoint_seq, self.next_seq);
        if self.poisoned {
            // Everything acked sits at or below the active segment's
            // intact length; anything beyond it — stray bytes or whole
            // stray segments from a torn batch — is an unacknowledged
            // unknown. Cut it.
            let active_first = self.segments.last().expect("active segment").first_seq;
            for entry in std::fs::read_dir(&self.dir)? {
                let entry = entry?;
                if let Some(first_seq) = parse_segment_name(&entry.file_name().to_string_lossy()) {
                    if first_seq > active_first {
                        std::fs::remove_file(entry.path())?;
                    }
                }
            }
            let active = self.segments.last().expect("active segment");
            self.file = OpenOptions::new()
                .read(true)
                .write(true)
                .truncate(false)
                .open(&active.path)?;
            self.file.set_len(active.bytes)?;
            self.file.seek(SeekFrom::Start(active.bytes))?;
            self.file.sync_data()?;
            sync_dir(&self.dir)?;
            self.poisoned = false;
        }
        if through != self.checkpoint_seq {
            write_manifest(&self.dir, self.stream_id, through, self.term)?;
            self.checkpoint_seq = through;
        }
        Ok(())
    }

    /// Unlink whole segments that fall entirely below the retention
    /// horizon (`checkpoint_seq − retain`), oldest first. The active
    /// segment rotates out first when even it is fully below the horizon,
    /// so a long-quiet log still frees its disk. Returns the number of
    /// segments removed. Idempotent and crash-safe: a partial run leaves a
    /// contiguous suffix that the next run (or open) finishes.
    pub fn compact(&mut self) -> io::Result<usize> {
        if self.poisoned {
            return Ok(0); // the on-disk tail is unknown; don't touch it
        }
        let horizon = self.checkpoint_seq.saturating_sub(self.retain);
        if horizon >= self.next_seq
            && !self
                .segments
                .last()
                .expect("active segment")
                .index
                .is_empty()
        {
            self.rotate()?;
        }
        let mut removed = 0usize;
        while self.segments.len() > 1 {
            if self.segments[0].end_seq() > horizon {
                break;
            }
            if removed > 0 && self.faults.trips(points::WAL_COMPACT_CRASH) {
                sync_dir(&self.dir)?;
                self.compactions += 1;
                return Err(io::Error::other("injected compaction crash"));
            }
            std::fs::remove_file(&self.segments[0].path)?;
            self.segments.remove(0);
            removed += 1;
        }
        if removed > 0 {
            sync_dir(&self.dir)?;
            self.compactions += 1;
        }
        Ok(removed)
    }

    /// Adopt a replication stream: legal only while the log holds no
    /// frames (a fresh follower, or one re-seeded from a copied
    /// checkpoint). Rewrites the manifest and re-seeds the single empty
    /// segment at `start_seq`.
    pub fn adopt_stream(&mut self, stream_id: u64, start_seq: u64) -> io::Result<()> {
        if self.next_seq != self.base_seq() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "cannot adopt a stream over a WAL that already holds records",
            ));
        }
        // Drop the empty placeholder segment first (nothing is lost), then
        // persist the manifest, then seed the new segment: every crash
        // window in between re-opens as an adoptable (or freshly adopted)
        // log.
        let old = self.segments.pop().expect("placeholder segment");
        std::fs::remove_file(&old.path)?;
        write_manifest(&self.dir, stream_id, start_seq, self.term)?;
        let path = self.dir.join(segment_name(start_seq));
        write_fresh_segment(&path, stream_id, start_seq, start_seq, self.term, &[])?;
        self.file = OpenOptions::new()
            .read(true)
            .write(true)
            .truncate(false)
            .open(&path)?;
        self.file.seek(SeekFrom::Start(HEADER_LEN))?;
        self.segments.push(Segment {
            path,
            first_seq: start_seq,
            bytes: HEADER_LEN,
            index: Vec::new(),
        });
        self.stream_id = stream_id;
        self.next_seq = start_seq;
        self.checkpoint_seq = start_seq;
        Ok(())
    }

    /// Raise the fencing term (promotion, or a follower learning a higher
    /// term from its primary's handshake). Persists the manifest; future
    /// segment headers snapshot the new value. Terms never move backwards.
    pub fn set_term(&mut self, term: u64) -> io::Result<()> {
        if term <= self.term {
            if term < self.term {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("term cannot move backwards ({} -> {term})", self.term),
                ));
            }
            return Ok(());
        }
        write_manifest(&self.dir, self.stream_id, self.checkpoint_seq, term)?;
        self.term = term;
        Ok(())
    }

    /// Re-seed the log for a checkpoint resync: discard *everything* on
    /// disk and restart as an empty log on `stream_id` at `start_seq`
    /// (records below it are owned by the just-installed checkpoint),
    /// under `term`. Unlike [`Wal::adopt_stream`] this is legal over a log
    /// that holds records — the caller has already replaced that history
    /// with a verified checkpoint fetched from the primary.
    ///
    /// Crash-safe without a journal: the manifest is unlinked first, then
    /// segments newest-first, then the new manifest + segment are written.
    /// Every intermediate state either rebuilds the old log from its
    /// segment headers (and re-triggers the resync) or opens as the fresh
    /// post-resync log.
    pub fn reset_stream(&mut self, stream_id: u64, start_seq: u64, term: u64) -> io::Result<()> {
        let manifest = self.dir.join(MANIFEST_FILE);
        if manifest.exists() {
            std::fs::remove_file(&manifest)?;
        }
        sync_dir(&self.dir)?;
        while let Some(seg) = self.segments.pop() {
            std::fs::remove_file(&seg.path)?;
        }
        sync_dir(&self.dir)?;
        write_manifest(&self.dir, stream_id, start_seq, term)?;
        let path = self.dir.join(segment_name(start_seq));
        write_fresh_segment(&path, stream_id, start_seq, start_seq, term, &[])?;
        self.file = OpenOptions::new()
            .read(true)
            .write(true)
            .truncate(false)
            .open(&path)?;
        self.file.seek(SeekFrom::Start(HEADER_LEN))?;
        self.segments.push(Segment {
            path,
            first_seq: start_seq,
            bytes: HEADER_LEN,
            index: Vec::new(),
        });
        self.stream_id = stream_id;
        self.next_seq = start_seq;
        self.checkpoint_seq = start_seq;
        self.term = term;
        self.poisoned = false;
        Ok(())
    }

    /// Anti-entropy scrub: re-read every segment from disk and re-verify
    /// headers and frame checksums against the in-memory index. Returns
    /// the number of frames verified; the error names the first corrupt
    /// file and seq. Detects silent bit-rot that the append path (which
    /// never re-reads) cannot see. Takes `&mut self` so it runs under the
    /// same lock as appends — the on-disk bytes it reads are quiescent.
    pub fn verify(&mut self) -> io::Result<u64> {
        let mut frames = 0u64;
        for seg in &self.segments {
            let mut file = File::open(&seg.path)?;
            let header = parse_header(&mut file, &seg.path)?;
            if header.stream_id != self.stream_id || header.first_seq != seg.first_seq {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "{}: segment header does not match the log",
                        seg.path.display()
                    ),
                ));
            }
            let mut seq = seg.first_seq;
            let mut offset = header.len;
            while offset < seg.bytes {
                match read_disk_frame(&mut file) {
                    Ok(Some(payload)) => {
                        offset += FRAME_HEADER_BYTES + payload.len() as u64;
                        frames += 1;
                        seq += 1;
                    }
                    Ok(None) => {
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            format!(
                                "{}: segment ends at seq {seq} but the index \
                                 expects frames through seq {}",
                                seg.path.display(),
                                seg.end_seq()
                            ),
                        ));
                    }
                    Err(e) => {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("{}: {e} at seq {seq}", seg.path.display()),
                        ));
                    }
                }
            }
            if seq != seg.end_seq() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "{}: {} intact frames on disk but the index holds {}",
                        seg.path.display(),
                        seq - seg.first_seq,
                        seg.index.len()
                    ),
                ));
            }
        }
        Ok(frames)
    }

    /// Read frames `[from_seq, …)` as raw wire bytes, stopping at
    /// `max_bytes` (always includes at least one frame when any exists so
    /// a single large record cannot stall the stream). Segment boundaries
    /// are invisible to the caller: frames concatenate across them exactly
    /// as a single file would lay them out. Returns the bytes and the seq
    /// one past the last frame included. `from_seq` must lie in
    /// `[base_seq, next_seq]`.
    pub fn read_frames(&mut self, from_seq: u64, max_bytes: usize) -> io::Result<(Vec<u8>, u64)> {
        if from_seq < self.base_seq() || from_seq > self.next_seq {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "seq {from_seq} outside the log's [{}, {}] window",
                    self.base_seq(),
                    self.next_seq
                ),
            ));
        }
        let mut out = Vec::new();
        let mut seq = from_seq;
        let mut reader: Option<(usize, File)> = None;
        while seq < self.next_seq {
            let si = self
                .segments
                .partition_point(|s| s.first_seq <= seq)
                .saturating_sub(1);
            let seg = &self.segments[si];
            let li = (seq - seg.first_seq) as usize;
            let off = seg.index[li];
            let end = seg.index.get(li + 1).copied().unwrap_or(seg.bytes);
            let frame_len = (end - off) as usize;
            if seq > from_seq && out.len() + frame_len > max_bytes {
                break;
            }
            if reader.as_ref().map(|(i, _)| *i) != Some(si) {
                reader = Some((si, File::open(&seg.path)?));
            }
            let (_, f) = reader.as_mut().expect("reader just set");
            f.seek(SeekFrom::Start(off))?;
            let at = out.len();
            out.resize(at + frame_len, 0);
            f.read_exact(&mut out[at..])?;
            seq += 1;
            if out.len() >= max_bytes {
                break;
            }
        }
        Ok((out, seq))
    }

    /// *Pending* records: appended (or recovered) but not yet owned by a
    /// checkpoint. This is what replay processes and drain flushes.
    pub fn records(&self) -> u64 {
        self.next_seq - self.checkpoint_seq
    }

    /// All frames physically on disk, retained + pending.
    pub fn physical_records(&self) -> u64 {
        self.next_seq - self.base_seq()
    }

    /// Intact bytes on disk across all segments (including headers).
    pub fn bytes(&self) -> u64 {
        self.segments.iter().map(|s| s.bytes).sum()
    }

    /// The replication stream this log belongs to (`0` = not yet adopted).
    pub fn stream_id(&self) -> u64 {
        self.stream_id
    }

    /// Seq of the oldest frame still on disk.
    pub fn base_seq(&self) -> u64 {
        self.segments
            .first()
            .expect("at least one segment")
            .first_seq
    }

    /// Seq the next append will receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Seqs below this are owned by a checkpoint.
    pub fn checkpoint_seq(&self) -> u64 {
        self.checkpoint_seq
    }

    /// The fencing term this log last heard (see [`Wal::set_term`]).
    pub fn term(&self) -> u64 {
        self.term
    }

    /// True when a failed append left the on-disk tail unknown.
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    /// Number of segment files currently on disk.
    pub fn segments(&self) -> usize {
        self.segments.len()
    }

    /// The configured rotation threshold (frame bytes per segment).
    pub fn segment_target(&self) -> u64 {
        self.segment_target
    }

    /// Compaction runs (this process) that unlinked at least one segment.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// The log's directory.
    pub fn path(&self) -> &Path {
        &self.dir
    }
}

/// `seg-<first_seq:020>.wal`.
fn segment_name(first_seq: u64) -> String {
    format!("seg-{first_seq:020}.wal")
}

/// Parse a segment file name back to its first seq.
fn parse_segment_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("seg-")?.strip_suffix(".wal")?;
    if digits.len() != 20 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

fn header_bytes(
    stream_id: u64,
    first_seq: u64,
    checkpoint_seq: u64,
    term: u64,
) -> [u8; HEADER_LEN as usize] {
    let mut h = [0u8; HEADER_LEN as usize];
    h[0..8].copy_from_slice(MAGIC_V3);
    h[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    h[12..20].copy_from_slice(&stream_id.to_le_bytes());
    h[20..28].copy_from_slice(&first_seq.to_le_bytes());
    h[28..36].copy_from_slice(&checkpoint_seq.to_le_bytes());
    h[36..44].copy_from_slice(&term.to_le_bytes());
    h
}

/// What a segment header says about itself.
#[derive(Debug, Clone, Copy)]
struct SegmentHeader {
    stream_id: u64,
    first_seq: u64,
    /// Checkpoint seq at the moment the segment was created (lags the
    /// live manifest value; never ahead of the log).
    checkpoint_seq: u64,
    /// Term at the moment the segment was created (v2 headers carry 0).
    term: u64,
    /// Bytes the header occupies (36 for v2, 44 for v3).
    len: u64,
}

/// Parse + validate a v2 or v3 header from an open file positioned at 0;
/// leaves the cursor after the header.
fn parse_header(file: &mut File, path: &Path) -> io::Result<SegmentHeader> {
    let mut header = [0u8; HEADER_LEN as usize];
    let got = read_fully(file, &mut header)?;
    if got < HEADER_LEN_V2 as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: truncated WAL header", path.display()),
        ));
    }
    let len = match &header[0..8] {
        m if m == MAGIC_V3 => HEADER_LEN,
        m if m == MAGIC_V2 => HEADER_LEN_V2,
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{} is not a deepdive WAL (bad magic)", path.display()),
            ));
        }
    };
    if len == HEADER_LEN && got < HEADER_LEN as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: truncated WAL header", path.display()),
        ));
    }
    let format = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
    let expected = if len == HEADER_LEN {
        FORMAT_VERSION
    } else {
        COMPAT_FORMAT_VERSION
    };
    if format != expected {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "{}: WAL format version {format} is newer than supported \
                 ({FORMAT_VERSION}); refusing to guess at its layout",
                path.display()
            ),
        ));
    }
    let term = if len == HEADER_LEN {
        u64::from_le_bytes(header[36..44].try_into().expect("8 bytes"))
    } else {
        // A v2 header: position the cursor right after the 36 bytes.
        file.seek(SeekFrom::Start(HEADER_LEN_V2))?;
        0
    };
    Ok(SegmentHeader {
        stream_id: u64::from_le_bytes(header[12..20].try_into().expect("8 bytes")),
        first_seq: u64::from_le_bytes(header[20..28].try_into().expect("8 bytes")),
        checkpoint_seq: u64::from_le_bytes(header[28..36].try_into().expect("8 bytes")),
        term,
        len,
    })
}

/// Read just the header of a closed file.
fn read_header(path: &Path) -> io::Result<SegmentHeader> {
    let mut f = File::open(path)?;
    parse_header(&mut f, path)
}

/// Atomically (re)write the manifest: temp + fsync + rename + dir fsync.
/// The trailing `check` line is an fnv1a64 over everything before it, so
/// truncation or bit-rot anywhere in the file is detectable (and triggers
/// the rebuild-from-segments path rather than a refusal to start).
fn write_manifest(dir: &Path, stream_id: u64, checkpoint_seq: u64, term: u64) -> io::Result<()> {
    let path = dir.join(MANIFEST_FILE);
    let tmp = dir.join(format!("{MANIFEST_FILE}.tmp"));
    let body = format!(
        "{MANIFEST_HEADER}\nstream_id\t{stream_id}\ncheckpoint_seq\t{checkpoint_seq}\nterm\t{term}\n"
    );
    let text = format!("{body}check\t{:016x}\n", fnv1a64(body.as_bytes()));
    {
        let mut out = File::create(&tmp)?;
        out.write_all(text.as_bytes())?;
        out.sync_data()?;
    }
    std::fs::rename(&tmp, &path)?;
    sync_dir(dir)?;
    Ok(())
}

/// Parse the manifest: (stream id, checkpoint seq, term).
///
/// Anything malformed — bad key, bad value, missing key, checksum
/// mismatch — comes back as `InvalidData`, which [`Wal::open_with`] treats
/// as "rebuild from the segment headers", not a hard failure. Only a
/// *future manifest version* stays fatal ("newer than supported"), since
/// that is a healthy file this build must not reinterpret.
fn read_manifest(path: &Path) -> io::Result<(u64, u64, u64)> {
    let text = std::fs::read_to_string(path)?;
    let mut lines = text.lines();
    match lines.next() {
        Some(MANIFEST_HEADER) => {}
        // A *well-formed* future version header stays fatal; a mangled one
        // (random corruption that happens to keep the prefix) is treated
        // as corruption like any other.
        Some(l)
            if l.strip_prefix("#deepdive-wal-manifest-v")
                .is_some_and(|v| !v.is_empty() && v.bytes().all(|b| b.is_ascii_digit())) =>
        {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "{}: WAL manifest version {l:?} is newer than supported \
                     ({MANIFEST_HEADER})",
                    path.display()
                ),
            ));
        }
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{} is not a deepdive WAL manifest", path.display()),
            ));
        }
    }
    let mut stream_id = None;
    let mut checkpoint_seq = None;
    let mut term = 0u64; // absent in pre-term manifests
    let mut checked = false;
    let mut consumed = MANIFEST_HEADER.len() + 1;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let corrupt = |why: &str| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: {why}: {line:?}", path.display()),
            )
        };
        let (key, value) = line
            .split_once('\t')
            .ok_or_else(|| corrupt("manifest line is not key<TAB>value"))?;
        if key == "check" {
            let want = u64::from_str_radix(value, 16)
                .map_err(|_| corrupt("manifest checksum is not hex"))?;
            if fnv1a64(&text.as_bytes()[..consumed]) != want {
                return Err(corrupt("manifest checksum mismatch"));
            }
            checked = true;
            continue;
        }
        consumed += line.len() + 1;
        let value: u64 = value
            .parse()
            .map_err(|_| corrupt("manifest value is not a u64"))?;
        match key {
            "stream_id" => stream_id = Some(value),
            "checkpoint_seq" => checkpoint_seq = Some(value),
            "term" => term = value,
            _ => return Err(corrupt("unrecognized manifest key")),
        }
    }
    if !checked {
        // Without a verified checksum the values cannot be trusted over
        // the segment headers — this also migrates pre-checksum manifests
        // through the rebuild path exactly once.
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: manifest is missing its checksum line", path.display()),
        ));
    }
    match (stream_id, checkpoint_seq) {
        (Some(s), Some(c)) => Ok((s, c, term)),
        _ => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: manifest is missing a required key", path.display()),
        )),
    }
}

/// Reconstruct manifest state by scanning `seg-*.wal` headers: stream id
/// from the (unanimous) headers, checkpoint seq and term from the maximum
/// snapshots, checkpoint clamped up to the base seq (records below the
/// base were compacted away, which only happens once checkpointed). With
/// no segments at all there is no history to protect, so a fresh identity
/// is minted. The caller re-persists the result.
fn rebuild_manifest(dir: &Path, options: &WalOptions) -> io::Result<(u64, u64, u64)> {
    let mut seg_files: Vec<(u64, PathBuf)> = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(first_seq) = parse_segment_name(&entry.file_name().to_string_lossy()) {
            seg_files.push((first_seq, entry.path()));
        }
    }
    seg_files.sort();
    if seg_files.is_empty() {
        let stream_id = if options.fresh_stream {
            random_stream_id()
        } else {
            0
        };
        return Ok((stream_id, 0, 0));
    }
    let base_seq = seg_files[0].0;
    let mut stream_id = None;
    let mut checkpoint_seq = 0u64;
    let mut term = 0u64;
    for (first_seq, path) in &seg_files {
        let header = read_header(path)?;
        if header.first_seq != *first_seq {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "{}: segment header claims first seq {} but the file is \
                     named for seq {first_seq}",
                    path.display(),
                    header.first_seq
                ),
            ));
        }
        match stream_id {
            None => stream_id = Some(header.stream_id),
            Some(prev) if prev != header.stream_id => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "{}: segment stream id {:016x} disagrees with a \
                         sibling's {prev:016x}; cannot rebuild the manifest",
                        path.display(),
                        header.stream_id
                    ),
                ));
            }
            Some(_) => {}
        }
        checkpoint_seq = checkpoint_seq.max(header.checkpoint_seq);
        term = term.max(header.term);
    }
    Ok((
        stream_id.expect("at least one segment"),
        checkpoint_seq.max(base_seq),
        term,
    ))
}

/// Write a fresh segment (atomically, via temp + rename) holding `records`
/// as its frames.
fn write_fresh_segment(
    path: &Path,
    stream_id: u64,
    first_seq: u64,
    checkpoint_seq: u64,
    term: u64,
    records: &[Vec<u8>],
) -> io::Result<()> {
    let tmp = path.with_extension("wal.tmp");
    {
        let mut out = File::create(&tmp)?;
        out.write_all(&header_bytes(stream_id, first_seq, checkpoint_seq, term))?;
        for r in records {
            out.write_all(&frame::encode(r))?;
        }
        out.sync_data()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        sync_dir(dir)?;
    }
    Ok(())
}

/// fsync a directory so renames/creations/unlinks inside it are durable.
fn sync_dir(dir: &Path) -> io::Result<()> {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// A random nonzero stream id, seeded from the OS (`RandomState` is
/// randomly keyed per process) — no RNG dependency needed.
fn random_stream_id() -> u64 {
    use std::collections::hash_map::RandomState;
    use std::hash::{BuildHasher, Hasher};
    loop {
        let mut h = RandomState::new().build_hasher();
        h.write_u64(std::process::id() as u64);
        let v = h.finish();
        if v != 0 {
            return v;
        }
    }
}

/// Read as many bytes as available into `buf`; returns how many were read
/// (short only at EOF).
fn read_fully(r: &mut impl Read, buf: &mut [u8]) -> io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

/// Read one v2 frame from disk. `Ok(None)` at clean EOF; `Err` on a torn
/// or corrupt frame (`UnexpectedEof` for a short read, `InvalidData` for
/// checksum/length/version trouble — a checksum-valid unknown version says
/// "newer than supported" so callers can fail loud instead of truncating).
fn read_disk_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; FRAME_HEADER_BYTES as usize];
    let got = read_fully(r, &mut header)?;
    if got == 0 {
        return Ok(None);
    }
    if got < header.len() {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "torn frame header",
        ));
    }
    let version = header[0];
    let len = u32::from_le_bytes(header[1..5].try_into().expect("4 bytes"));
    let checksum = u64::from_le_bytes(header[5..13].try_into().expect("8 bytes"));
    if len > MAX_RECORD_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "corrupt frame length",
        ));
    }
    let mut payload = vec![0u8; len as usize];
    let got = read_fully(r, &mut payload)?;
    if got < payload.len() {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "torn frame payload",
        ));
    }
    let checksum_ok = fnv1a64(&payload) == checksum;
    if version != RECORD_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            if checksum_ok {
                format!("WAL record version {version} is newer than supported ({RECORD_VERSION})")
            } else {
                "corrupt record version byte".to_string()
            },
        ));
    }
    if !checksum_ok {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame checksum mismatch",
        ));
    }
    Ok(Some(payload))
}

/// Read a legacy v1 log: magic `DDWAL1\n\0`, then unversioned
/// `[u32 len][u64 cksum][payload]` records. Returns the intact records and
/// whether (and how much) torn tail was dropped.
fn read_v1(path: &Path) -> io::Result<(Vec<Vec<u8>>, bool, u64)> {
    let mut f = File::open(path)?;
    let total = f.metadata()?.len();
    f.seek(SeekFrom::Start(8))?;
    let mut records = Vec::new();
    let mut offset = 8u64;
    let mut torn = false;
    loop {
        let mut header = [0u8; V1_HEADER_BYTES as usize];
        let got = read_fully(&mut f, &mut header)?;
        if got == 0 {
            break;
        }
        if got < header.len() {
            torn = true;
            break;
        }
        let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
        let checksum = u64::from_le_bytes(header[4..12].try_into().expect("8 bytes"));
        if len > MAX_RECORD_BYTES {
            torn = true;
            break;
        }
        let mut payload = vec![0u8; len as usize];
        let got = read_fully(&mut f, &mut payload)?;
        if got < payload.len() || fnv1a64(&payload) != checksum {
            torn = true;
            break;
        }
        offset += V1_HEADER_BYTES + payload.len() as u64;
        records.push(payload);
    }
    Ok((records, torn, total.saturating_sub(offset)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("dd-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn injector() -> Arc<FaultInjector> {
        Arc::new(FaultInjector::new())
    }

    /// Hand-write a 36-byte v2 header, as an older build would have.
    fn header_bytes_v2(stream_id: u64, first_seq: u64, checkpoint_seq: u64) -> [u8; 36] {
        let mut h = [0u8; 36];
        h[0..8].copy_from_slice(MAGIC_V2);
        h[8..12].copy_from_slice(&COMPAT_FORMAT_VERSION.to_le_bytes());
        h[12..20].copy_from_slice(&stream_id.to_le_bytes());
        h[20..28].copy_from_slice(&first_seq.to_le_bytes());
        h[28..36].copy_from_slice(&checkpoint_seq.to_le_bytes());
        h
    }

    /// The on-disk path of the newest (active) segment.
    fn active_segment(dir: &Path) -> PathBuf {
        let mut segs: Vec<PathBuf> = std::fs::read_dir(dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| parse_segment_name(&p.file_name().unwrap().to_string_lossy()).is_some())
            .collect();
        segs.sort();
        segs.pop().expect("at least one segment")
    }

    fn segment_count(dir: &Path) -> usize {
        std::fs::read_dir(dir)
            .unwrap()
            .filter(|e| {
                parse_segment_name(&e.as_ref().unwrap().file_name().to_string_lossy()).is_some()
            })
            .count()
    }

    /// Options that rotate after every record (any frame crosses 1 byte).
    fn tiny_segments(retain: u64) -> WalOptions {
        WalOptions {
            retain_records: retain,
            fresh_stream: true,
            segment_bytes: 1,
        }
    }

    #[test]
    fn append_and_recover_round_trips() {
        let dir = tmpdir("roundtrip");
        let payloads: Vec<&[u8]> = vec![b"alpha", b"", b"{\"rows\":{}}", &[0xFF, 0x00, 0x7F]];
        let stream;
        {
            let (mut wal, rec) = Wal::open(&dir, injector()).unwrap();
            assert!(rec.records.is_empty());
            assert!(!rec.torn_tail);
            stream = wal.stream_id();
            assert_ne!(stream, 0, "primary WAL mints a nonzero stream id");
            for (i, p) in payloads.iter().enumerate() {
                assert_eq!(
                    wal.append(p).unwrap(),
                    i as u64,
                    "seqs are assigned in order"
                );
            }
            assert_eq!(wal.records(), payloads.len() as u64);
        }
        let (wal, rec) = Wal::open(&dir, injector()).unwrap();
        assert!(!rec.torn_tail);
        assert!(!rec.upgraded_v1);
        assert_eq!(rec.records, payloads);
        assert_eq!(rec.first_pending_seq, 0);
        assert_eq!(wal.records(), payloads.len() as u64);
        assert_eq!(wal.bytes(), rec.good_bytes);
        assert_eq!(wal.stream_id(), stream, "stream id survives reopen");
    }

    #[test]
    fn append_batch_is_one_durable_unit() {
        let dir = tmpdir("batch");
        let (mut wal, _) = Wal::open(&dir, injector()).unwrap();
        let first = wal
            .append_batch(&[b"one".as_slice(), b"two", b"three"])
            .unwrap();
        assert_eq!(first, 0);
        assert_eq!(wal.next_seq(), 3, "seqs are contiguous across the batch");
        assert_eq!(wal.append_batch(&[]).unwrap(), 3, "empty batch is a no-op");
        drop(wal);
        let (_, rec) = Wal::open(&dir, injector()).unwrap();
        assert_eq!(
            rec.records,
            vec![b"one".to_vec(), b"two".to_vec(), b"three".to_vec()]
        );
    }

    #[test]
    fn batch_fsync_failure_rolls_back_the_whole_batch() {
        let dir = tmpdir("batch-fsync");
        let faults = injector();
        let (mut wal, _) = Wal::open(&dir, faults.clone()).unwrap();
        wal.append(b"durable").unwrap();

        faults.arm(points::WAL_FSYNC, 1);
        let err = wal
            .append_batch(&[b"a".as_slice(), b"b", b"c"])
            .unwrap_err();
        assert!(err.to_string().contains("injected fsync failure"));
        assert_eq!(wal.records(), 1, "no batch record was counted");
        assert!(!wal.poisoned(), "rollback succeeded");

        wal.append(b"after the failure").unwrap();
        drop(wal);
        let (_, rec) = Wal::open(&dir, injector()).unwrap();
        assert!(!rec.torn_tail);
        assert_eq!(
            rec.records,
            vec![b"durable".to_vec(), b"after the failure".to_vec()]
        );
    }

    #[test]
    fn rotation_splits_segments_and_reads_span_them() {
        let dir = tmpdir("rotate");
        let (mut wal, _) = Wal::open_with(&dir, injector(), tiny_segments(1024)).unwrap();
        for i in 0..5u32 {
            wal.append(format!("record {i}").as_bytes()).unwrap();
        }
        assert_eq!(wal.segments(), 5, "one record per segment at threshold 1");

        // One read_frames call crosses every segment boundary.
        let (frames, next) = wal.read_frames(0, usize::MAX).unwrap();
        assert_eq!(next, 5);
        let mut dec = frame::FrameDecoder::new();
        dec.feed(&frames);
        for i in 0..5u32 {
            assert_eq!(
                dec.next().unwrap().unwrap(),
                format!("record {i}").as_bytes()
            );
        }
        assert_eq!(dec.next().unwrap(), None);

        // max_bytes still honored mid-stream.
        let (_, next) = wal.read_frames(1, 1).unwrap();
        assert_eq!(next, 2, "at least one frame ships");

        drop(wal);
        let (wal, rec) = Wal::open_with(&dir, injector(), tiny_segments(1024)).unwrap();
        assert_eq!(rec.records.len(), 5, "recovery scans all segments");
        assert_eq!(wal.next_seq(), 5);
    }

    #[test]
    fn batch_rotation_keeps_the_batch_atomic() {
        let dir = tmpdir("batch-rotate");
        let (mut wal, _) = Wal::open_with(&dir, injector(), tiny_segments(1024)).unwrap();
        wal.append_batch(&[b"a".as_slice(), b"b", b"c", b"d"])
            .unwrap();
        assert!(wal.segments() >= 4, "the batch rotated mid-write");
        drop(wal);
        let (_, rec) = Wal::open_with(&dir, injector(), tiny_segments(1024)).unwrap();
        assert_eq!(rec.records.len(), 4);
    }

    #[test]
    fn rollback_across_a_rotation_deletes_the_new_segments() {
        let dir = tmpdir("rollback-rotate");
        let (mut wal, _) = Wal::open_with(&dir, injector(), tiny_segments(1024)).unwrap();
        wal.append(b"keep me").unwrap();
        let mark = wal.mark();
        let segs_before = wal.segments();
        wal.append_batch(&[b"x".as_slice(), b"y"]).unwrap();
        assert!(wal.segments() > segs_before);
        wal.rollback_to(&mark).unwrap();
        assert_eq!(wal.segments(), segs_before, "new segments unlinked");
        assert_eq!(wal.next_seq(), 1);
        assert_eq!(segment_count(&dir), segs_before, "on disk too");

        assert_eq!(wal.append(b"after the rollback").unwrap(), 1);
        drop(wal);
        let (_, rec) = Wal::open_with(&dir, injector(), tiny_segments(1024)).unwrap();
        assert_eq!(
            rec.records,
            vec![b"keep me".to_vec(), b"after the rollback".to_vec()]
        );
    }

    #[test]
    fn truncated_final_record_is_dropped_not_fatal() {
        let dir = tmpdir("torn");
        let good_bytes;
        {
            let (mut wal, _) = Wal::open(&dir, injector()).unwrap();
            wal.append(b"first record").unwrap();
            wal.append(b"second record").unwrap();
            good_bytes = wal.bytes();
            wal.append(b"third record, about to be torn").unwrap();
        }
        // Simulate a crash mid-append: cut the active segment inside the
        // third record's payload.
        let path = active_segment(&dir);
        let full = std::fs::metadata(&path).unwrap().len();
        let cut = good_bytes + FRAME_HEADER_BYTES + 4;
        assert!(cut < full);
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(cut).unwrap();
        drop(f);

        let (mut wal, rec) = Wal::open(&dir, injector()).unwrap();
        assert!(rec.torn_tail, "tear must be detected");
        assert_eq!(rec.records.len(), 2, "intact records survive");
        assert_eq!(rec.records[0], b"first record");
        assert_eq!(rec.records[1], b"second record");
        assert_eq!(rec.good_bytes, good_bytes);
        assert_eq!(rec.torn_bytes, cut - good_bytes);

        // The segment was truncated back to the last intact record, so new
        // appends land cleanly after it — and reuse the torn record's seq.
        assert_eq!(wal.append(b"post-recovery record").unwrap(), 2);
        drop(wal);
        let (_, rec) = Wal::open(&dir, injector()).unwrap();
        assert!(!rec.torn_tail);
        assert_eq!(rec.records.len(), 3);
        assert_eq!(rec.records[2], b"post-recovery record");
    }

    #[test]
    fn corrupted_checksum_drops_the_pending_tail() {
        let dir = tmpdir("cksum");
        {
            let (mut wal, _) = Wal::open(&dir, injector()).unwrap();
            wal.append(b"keep me").unwrap();
            wal.append(b"flip a bit in me").unwrap();
        }
        let path = active_segment(&dir);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        let (_, rec) = Wal::open(&dir, injector()).unwrap();
        assert!(rec.torn_tail);
        assert_eq!(rec.records, vec![b"keep me".to_vec()]);
    }

    #[test]
    fn corruption_in_checkpointed_region_is_fatal() {
        let dir = tmpdir("ckpt-corrupt");
        {
            let (mut wal, _) = Wal::open(&dir, injector()).unwrap();
            wal.append(b"checkpointed and shipped").unwrap();
            wal.append(b"pending").unwrap();
            wal.mark_checkpointed(1).unwrap();
        }
        let path = active_segment(&dir);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a payload byte of the first (checkpoint-owned) record.
        let idx = HEADER_LEN as usize + FRAME_HEADER_BYTES as usize;
        bytes[idx] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        let err = Wal::open(&dir, injector()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(
            err.to_string().contains("seq 0"),
            "the error names the damaged seq: {err}"
        );
    }

    #[test]
    fn corruption_in_a_sealed_segment_is_fatal() {
        let dir = tmpdir("sealed-corrupt");
        {
            let (mut wal, _) = Wal::open_with(&dir, injector(), tiny_segments(1024)).unwrap();
            wal.append(b"sealed by rotation").unwrap();
            wal.append(b"also sealed").unwrap();
            wal.append(b"active").unwrap();
        }
        // Corrupt the middle (sealed, still pending) segment: even a
        // pending record must not silently vanish from the middle of the
        // log.
        let mut segs: Vec<PathBuf> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| parse_segment_name(&p.file_name().unwrap().to_string_lossy()).is_some())
            .collect();
        segs.sort();
        let mid = &segs[1];
        let mut bytes = std::fs::read(mid).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(mid, &bytes).unwrap();

        let err = Wal::open_with(&dir, injector(), tiny_segments(1024)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(
            err.to_string().contains("seq 1"),
            "the error names the damaged seq: {err}"
        );
    }

    #[test]
    fn checkpoint_keeps_records_fetchable_and_zeroes_pending() {
        let dir = tmpdir("ckpt");
        let (mut wal, _) = Wal::open(&dir, injector()).unwrap();
        wal.append(b"one").unwrap();
        wal.append(b"two").unwrap();
        wal.mark_checkpointed(2).unwrap();
        assert_eq!(wal.records(), 0, "nothing pending after the flush");
        assert_eq!(wal.physical_records(), 2, "frames stay for followers");

        let (frames, next) = wal.read_frames(0, usize::MAX).unwrap();
        assert_eq!(next, 2);
        let mut dec = frame::FrameDecoder::new();
        dec.feed(&frames);
        assert_eq!(dec.next().unwrap().unwrap(), b"one");
        assert_eq!(dec.next().unwrap().unwrap(), b"two");
        assert_eq!(dec.next().unwrap(), None);

        drop(wal);
        let (wal, rec) = Wal::open(&dir, injector()).unwrap();
        assert!(rec.records.is_empty(), "checkpointed records do not replay");
        assert_eq!(rec.first_pending_seq, 2);
        assert_eq!(rec.retained, 2);
        assert_eq!(wal.next_seq(), 2, "seqs keep counting after a flush");
    }

    #[test]
    fn compaction_unlinks_whole_checkpointed_segments() {
        let dir = tmpdir("retain");
        let opts = tiny_segments(2);
        let (mut wal, _) = Wal::open_with(&dir, injector(), opts).unwrap();
        for i in 0..5u32 {
            wal.append(format!("record {i}").as_bytes()).unwrap();
        }
        assert_eq!(wal.segments(), 5);
        wal.mark_checkpointed(5).unwrap();
        assert_eq!(wal.base_seq(), 0, "the flush itself deletes nothing");
        let removed = wal.compact().unwrap();
        assert_eq!(removed, 3, "segments below the horizon unlink whole");
        assert_eq!(wal.base_seq(), 3, "only the last 2 checkpointed remain");
        assert_eq!(wal.next_seq(), 5);
        assert_eq!(wal.compactions(), 1);
        assert_eq!(segment_count(&dir), 2, "the files are gone");

        let (frames, next) = wal.read_frames(3, usize::MAX).unwrap();
        assert_eq!(next, 5);
        let mut dec = frame::FrameDecoder::new();
        dec.feed(&frames);
        assert_eq!(dec.next().unwrap().unwrap(), b"record 3");
        assert_eq!(dec.next().unwrap().unwrap(), b"record 4");

        assert!(
            wal.read_frames(2, usize::MAX).is_err(),
            "seqs below base are gone"
        );

        // Appends continue after compaction, and reopening agrees.
        assert_eq!(wal.append(b"record 5").unwrap(), 5);
        drop(wal);
        let (wal, rec) = Wal::open_with(&dir, injector(), opts).unwrap();
        assert_eq!(rec.records, vec![b"record 5".to_vec()]);
        assert_eq!(wal.base_seq(), 3);
        assert_eq!(wal.next_seq(), 6);
    }

    #[test]
    fn compaction_rotates_out_a_fully_checkpointed_active_segment() {
        let dir = tmpdir("compact-active");
        let opts = WalOptions {
            retain_records: 0,
            fresh_stream: true,
            segment_bytes: DEFAULT_SEGMENT_BYTES,
        };
        let (mut wal, _) = Wal::open_with(&dir, injector(), opts).unwrap();
        wal.append(b"one").unwrap();
        wal.append(b"two").unwrap();
        wal.mark_checkpointed(2).unwrap();
        let removed = wal.compact().unwrap();
        assert_eq!(removed, 1, "the sealed-then-stale segment is unlinked");
        assert_eq!(wal.base_seq(), 2);
        assert_eq!(wal.physical_records(), 0);
        wal.append(b"three").unwrap();
        drop(wal);
        let (_, rec) = Wal::open_with(&dir, injector(), opts).unwrap();
        assert_eq!(rec.records, vec![b"three".to_vec()]);
    }

    #[test]
    fn crash_mid_compaction_recovers_the_contiguous_suffix() {
        let dir = tmpdir("compact-crash");
        let faults = injector();
        let opts = tiny_segments(0);
        let (mut wal, _) = Wal::open_with(&dir, faults.clone(), opts).unwrap();
        for i in 0..4u32 {
            wal.append(format!("record {i}").as_bytes()).unwrap();
        }
        wal.mark_checkpointed(4).unwrap();
        faults.arm(points::WAL_COMPACT_CRASH, 1);
        let err = wal.compact().unwrap_err();
        assert!(err.to_string().contains("injected compaction crash"));
        // Only a prefix of the stale segments was unlinked; the remainder
        // is contiguous, so a reopen (restart) completes the compaction.
        drop(wal);
        let (wal, rec) = Wal::open_with(&dir, injector(), opts).unwrap();
        assert!(rec.records.is_empty());
        assert_eq!(wal.base_seq(), 4, "open finished the compaction");
        assert_eq!(wal.next_seq(), 4);
    }

    #[test]
    fn crash_mid_rotation_with_empty_tail_segment_recovers() {
        let dir = tmpdir("rotate-crash");
        let (mut wal, _) = Wal::open(&dir, injector()).unwrap();
        wal.append(b"sealed").unwrap();
        drop(wal);
        // Simulate a crash right after rotation created the new segment
        // but before anything was appended to it: an empty header-only
        // tail segment.
        let (stream_id, _, _) = read_manifest(&dir.join(MANIFEST_FILE)).unwrap();
        let path = dir.join(segment_name(1));
        std::fs::write(&path, header_bytes(stream_id, 1, 0, 0)).unwrap();

        let (mut wal, rec) = Wal::open(&dir, injector()).unwrap();
        assert_eq!(rec.records, vec![b"sealed".to_vec()]);
        assert!(!rec.torn_tail);
        assert_eq!(wal.segments(), 2);
        assert_eq!(wal.append(b"lands in the empty tail").unwrap(), 1);
        drop(wal);
        let (_, rec) = Wal::open(&dir, injector()).unwrap();
        assert_eq!(rec.records.len(), 2);
    }

    #[test]
    fn single_file_v2_log_migrates_to_segments() {
        let dir = tmpdir("migrate-v2");
        std::fs::create_dir_all(&dir).unwrap();
        // Hand-write a single-file v2 log: header + two frames, one
        // checkpointed.
        let mut bytes = header_bytes_v2(0xFEED, 0, 1).to_vec();
        bytes.extend_from_slice(&frame::encode(b"checkpointed"));
        bytes.extend_from_slice(&frame::encode(b"pending"));
        std::fs::write(dir.join(LEGACY_FILE), &bytes).unwrap();

        let (wal, rec) = Wal::open(&dir, injector()).unwrap();
        assert_eq!(wal.stream_id(), 0xFEED, "stream id carried over");
        assert_eq!(wal.checkpoint_seq(), 1);
        assert_eq!(rec.records, vec![b"pending".to_vec()]);
        assert_eq!(rec.retained, 1);
        assert!(!dir.join(LEGACY_FILE).exists(), "legacy file renamed away");
        assert_eq!(segment_count(&dir), 1);
        drop(wal);
        let (wal, _) = Wal::open(&dir, injector()).unwrap();
        assert_eq!(wal.stream_id(), 0xFEED);
    }

    #[test]
    fn interrupted_migration_completes_on_reopen() {
        let dir = tmpdir("migrate-crash");
        std::fs::create_dir_all(&dir).unwrap();
        let mut bytes = header_bytes_v2(0xFEED, 0, 0).to_vec();
        bytes.extend_from_slice(&frame::encode(b"survives"));
        std::fs::write(dir.join(LEGACY_FILE), &bytes).unwrap();
        // The crash window: manifest written, rename not yet done.
        write_manifest(&dir, 0xFEED, 0, 0).unwrap();

        let (wal, rec) = Wal::open(&dir, injector()).unwrap();
        assert_eq!(rec.records, vec![b"survives".to_vec()]);
        assert_eq!(wal.stream_id(), 0xFEED);
        assert!(!dir.join(LEGACY_FILE).exists());
    }

    #[test]
    fn read_frames_honors_max_bytes_but_returns_at_least_one() {
        let dir = tmpdir("window");
        let (mut wal, _) = Wal::open(&dir, injector()).unwrap();
        let big = vec![0xABu8; 4096];
        for _ in 0..4 {
            wal.append(&big).unwrap();
        }
        // A window smaller than one frame still ships one frame.
        let (frames, next) = wal.read_frames(0, 16).unwrap();
        assert_eq!(next, 1);
        assert_eq!(frames.len(), FRAME_HEADER_BYTES as usize + big.len());
        // A window of ~2.5 frames ships 2.
        let (_, next) = wal.read_frames(0, 2 * 4200).unwrap();
        assert_eq!(next, 2);
        // From the end: empty.
        let (frames, next) = wal.read_frames(4, 1024).unwrap();
        assert!(frames.is_empty());
        assert_eq!(next, 4);
    }

    #[test]
    fn v1_log_upgrades_to_segments() {
        let dir = tmpdir("v1");
        std::fs::create_dir_all(&dir).unwrap();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC_V1);
        for payload in [b"legacy one".as_slice(), b"legacy two".as_slice()] {
            bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            bytes.extend_from_slice(&fnv1a64(payload).to_le_bytes());
            bytes.extend_from_slice(payload);
        }
        // Torn v1 tail: half a header.
        bytes.extend_from_slice(&[0x05, 0x00]);
        std::fs::write(dir.join(LEGACY_FILE), &bytes).unwrap();

        let (wal, rec) = Wal::open(&dir, injector()).unwrap();
        assert!(rec.upgraded_v1);
        assert!(rec.torn_tail, "the v1 tear is reported");
        assert_eq!(
            rec.records,
            vec![b"legacy one".to_vec(), b"legacy two".to_vec()],
            "v1 records come back pending"
        );
        assert_eq!(rec.first_pending_seq, 0);
        assert_ne!(wal.stream_id(), 0);
        drop(wal);

        // The log on disk is now segmented v3.
        assert!(!dir.join(LEGACY_FILE).exists());
        let on_disk = std::fs::read(active_segment(&dir)).unwrap();
        assert_eq!(&on_disk[0..8], MAGIC_V3);
        let (_, rec) = Wal::open(&dir, injector()).unwrap();
        assert!(!rec.upgraded_v1);
        assert_eq!(rec.records.len(), 2);
    }

    #[test]
    fn future_format_version_fails_with_a_clear_error() {
        let dir = tmpdir("future-format");
        std::fs::create_dir_all(&dir).unwrap();
        let mut header = header_bytes_v2(42, 0, 0);
        header[8..12].copy_from_slice(&4u32.to_le_bytes());
        std::fs::write(dir.join(LEGACY_FILE), header).unwrap();

        let err = Wal::open(&dir, injector()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(
            err.to_string().contains("format version 4"),
            "names the version: {err}"
        );
        assert!(err.to_string().contains("newer than supported"));
    }

    #[test]
    fn future_manifest_version_fails_with_a_clear_error() {
        let dir = tmpdir("future-manifest");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join(MANIFEST_FILE),
            "#deepdive-wal-manifest-v9\nstream_id\t1\ncheckpoint_seq\t0\n",
        )
        .unwrap();
        let err = Wal::open(&dir, injector()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(
            err.to_string().contains("newer than supported"),
            "names the problem: {err}"
        );
    }

    #[test]
    fn future_record_version_fails_loud_not_torn() {
        let dir = tmpdir("future-record");
        std::fs::create_dir_all(&dir).unwrap();
        let mut bytes = header_bytes_v2(42, 0, 0).to_vec();
        let payload = b"from the future";
        bytes.push(2); // unknown record version
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&fnv1a64(payload).to_le_bytes());
        bytes.extend_from_slice(payload);
        std::fs::write(dir.join(LEGACY_FILE), &bytes).unwrap();

        let err = Wal::open(&dir, injector()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(
            err.to_string().contains("record version 2"),
            "names the record version: {err}"
        );
    }

    #[test]
    fn fsync_fault_rolls_back_and_log_stays_intact() {
        let dir = tmpdir("fsync");
        let faults = injector();
        let (mut wal, _) = Wal::open(&dir, faults.clone()).unwrap();
        wal.append(b"durable").unwrap();

        faults.arm(points::WAL_FSYNC, 1);
        let err = wal.append(b"never acked").unwrap_err();
        assert!(err.to_string().contains("injected fsync failure"));
        assert_eq!(wal.records(), 1, "failed append not counted");
        assert!(!wal.poisoned(), "rollback succeeded");

        // The log is still appendable and the failed record left no trace.
        wal.append(b"after the failure").unwrap();
        drop(wal);
        let (_, rec) = Wal::open(&dir, injector()).unwrap();
        assert!(!rec.torn_tail);
        assert_eq!(
            rec.records,
            vec![b"durable".to_vec(), b"after the failure".to_vec()]
        );
    }

    #[test]
    fn torn_write_fault_poisons_until_checkpoint_repair() {
        let dir = tmpdir("tornwrite");
        let faults = injector();
        let (mut wal, _) = Wal::open(&dir, faults.clone()).unwrap();
        wal.append(b"acked").unwrap();

        faults.arm(points::WAL_TORN_WRITE, 1);
        assert!(wal.append(b"torn mid-write").is_err());
        assert!(wal.poisoned());
        assert!(
            wal.append(b"refused").is_err(),
            "poisoned log refuses appends"
        );

        // A checkpoint flush repairs the unknown tail and resumes service.
        wal.mark_checkpointed(wal.next_seq()).unwrap();
        assert!(!wal.poisoned());
        assert_eq!(wal.records(), 0);
        wal.append(b"after repair").unwrap();
        drop(wal);
        let (_, rec) = Wal::open(&dir, injector()).unwrap();
        assert!(!rec.torn_tail);
        assert_eq!(rec.records, vec![b"after repair".to_vec()]);
    }

    #[test]
    fn torn_write_poison_recovers_across_restart() {
        let dir = tmpdir("tornwrite-restart");
        let faults = injector();
        {
            let (mut wal, _) = Wal::open(&dir, faults.clone()).unwrap();
            wal.append(b"acked").unwrap();
            faults.arm(points::WAL_TORN_WRITE, 1);
            assert!(wal.append(b"torn mid-write").is_err());
        }
        // Reopening (a restart) recovers the acked prefix; the torn,
        // never-acknowledged record does not materialize.
        let (_, rec) = Wal::open(&dir, injector()).unwrap();
        assert!(rec.torn_tail);
        assert_eq!(rec.records, vec![b"acked".to_vec()]);
    }

    #[test]
    fn rollback_to_discards_records_appended_since() {
        let dir = tmpdir("rollback");
        let (mut wal, _) = Wal::open(&dir, injector()).unwrap();
        wal.append(b"keep me").unwrap();
        let mark = wal.mark();
        wal.append(b"negatively acked").unwrap();
        wal.rollback_to(&mark).unwrap();
        assert_eq!(wal.records(), 1);
        assert!(!wal.poisoned());

        // The seq is reused and replay never sees the rolled-back record.
        assert_eq!(wal.append(b"after the rollback").unwrap(), 1);
        drop(wal);
        let (_, rec) = Wal::open(&dir, injector()).unwrap();
        assert!(!rec.torn_tail);
        assert_eq!(
            rec.records,
            vec![b"keep me".to_vec(), b"after the rollback".to_vec()]
        );
    }

    #[test]
    fn adopt_stream_only_on_an_empty_log() {
        let dir = tmpdir("adopt");
        let opts = WalOptions {
            fresh_stream: false,
            ..WalOptions::default()
        };
        let (mut wal, _) = Wal::open_with(&dir, injector(), opts).unwrap();
        assert_eq!(wal.stream_id(), 0, "follower WAL starts unadopted");
        wal.adopt_stream(0xDEADBEEF, 7).unwrap();
        assert_eq!(wal.stream_id(), 0xDEADBEEF);
        assert_eq!(wal.next_seq(), 7);
        assert_eq!(wal.append(b"first replicated").unwrap(), 7);
        assert!(
            wal.adopt_stream(0xBEEF, 0).is_err(),
            "cannot re-adopt over records"
        );
        drop(wal);
        let (wal, rec) = Wal::open_with(&dir, injector(), opts).unwrap();
        assert_eq!(wal.stream_id(), 0xDEADBEEF, "adoption is durable");
        assert_eq!(rec.first_pending_seq, 7);
        assert_eq!(rec.records, vec![b"first replicated".to_vec()]);
    }

    #[test]
    fn decoder_handles_splits_heartbeats_and_corruption() {
        let mut wire = Vec::new();
        wire.push(frame::HEARTBEAT);
        wire.extend_from_slice(&frame::encode(b"hello"));
        wire.push(frame::HEARTBEAT);
        wire.push(frame::HEARTBEAT);
        wire.extend_from_slice(&frame::encode(b""));
        wire.extend_from_slice(&frame::encode(&[0u8, 1, 2, 3]));

        // Feed one byte at a time: every frame still decodes exactly once.
        let mut dec = frame::FrameDecoder::new();
        let mut out = Vec::new();
        for b in &wire {
            dec.feed(&[*b]);
            while let Some(p) = dec.next().unwrap() {
                out.push(p);
            }
        }
        assert_eq!(out, vec![b"hello".to_vec(), Vec::new(), vec![0u8, 1, 2, 3]]);

        // A flipped payload bit is Corrupt, not a wrong record.
        let mut bad = frame::encode(b"payload");
        let last = bad.len() - 1;
        bad[last] ^= 0x40;
        let mut dec = frame::FrameDecoder::new();
        dec.feed(&bad);
        assert!(matches!(dec.next(), Err(frame::FrameError::Corrupt(_))));

        // A checksum-valid frame under an unknown version is FutureVersion.
        let mut future = frame::encode(b"payload");
        future[0] = 9;
        let mut dec = frame::FrameDecoder::new();
        dec.feed(&future);
        assert_eq!(dec.next(), Err(frame::FrameError::FutureVersion(9)));
    }

    #[test]
    fn non_wal_file_is_refused() {
        let dir = tmpdir("magic");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(LEGACY_FILE), b"definitely not a WAL file").unwrap();
        assert!(Wal::open(&dir, injector()).is_err());

        // A junk manifest is *not* refused: with no segments to contradict
        // it, the log rebuilds as fresh (see the corruption tests below).
        let dir = tmpdir("manifest-junk");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(MANIFEST_FILE), b"not a manifest").unwrap();
        let (wal, rec) = Wal::open(&dir, injector()).unwrap();
        assert!(rec.manifest_rebuilt);
        assert_ne!(wal.stream_id(), 0);
    }

    #[test]
    fn terms_persist_and_stamp_new_segments() {
        let dir = tmpdir("terms");
        let (mut wal, rec) = Wal::open(&dir, injector()).unwrap();
        assert_eq!(wal.term(), 0);
        assert!(!rec.manifest_rebuilt);
        wal.append(b"one").unwrap();
        wal.set_term(3).unwrap();
        assert!(wal.set_term(2).is_err(), "terms never move backwards");
        wal.set_term(3).unwrap(); // idempotent
        drop(wal);

        let (mut wal, _) = Wal::open(&dir, injector()).unwrap();
        assert_eq!(wal.term(), 3, "term survives reopen via the manifest");
        // A checkpoint mark keeps the term.
        wal.mark_checkpointed(1).unwrap();
        drop(wal);
        let (wal, _) = Wal::open(&dir, injector()).unwrap();
        assert_eq!(wal.term(), 3);
        assert_eq!(wal.checkpoint_seq(), 1);
    }

    #[test]
    fn corrupt_manifest_rebuilds_from_segment_headers() {
        let dir = tmpdir("manifest-rebuild");
        let opts = WalOptions {
            segment_bytes: 1, // rotate every record
            ..WalOptions::default()
        };
        let (mut wal, _) = Wal::open_with(&dir, injector(), opts).unwrap();
        let stream = wal.stream_id();
        for p in [b"a".as_slice(), b"b", b"c", b"d"] {
            wal.append(p).unwrap();
        }
        wal.set_term(2).unwrap();
        wal.mark_checkpointed(2).unwrap();
        // Force new segments *after* the checkpoint mark so at least one
        // header snapshots checkpoint_seq = 2 and term = 2.
        wal.append(b"e").unwrap();
        wal.append(b"f").unwrap();
        drop(wal);

        for junk in [
            &b"#deepdive-wal-manifest-v1\nstream_id\tnope\n"[..],
            b"#deepdive-wal-manifest-v1\nstream_id\t1\ncheckpoint_seq\t1\nterm\t1\ncheck\t0000000000000000\n",
            b"\xff\xfe garbage",
            b"",
        ] {
            std::fs::write(dir.join(MANIFEST_FILE), junk).unwrap();
            let (wal, rec) = Wal::open_with(&dir, injector(), opts).unwrap();
            assert!(rec.manifest_rebuilt, "rebuilt for {junk:?}");
            assert_eq!(wal.stream_id(), stream, "stream id from the headers");
            assert_eq!(wal.term(), 2, "term from the newest header snapshot");
            assert_eq!(wal.next_seq(), 6);
            assert!(
                wal.checkpoint_seq() <= 2,
                "rebuilt checkpoint never overshoots the true mark"
            );
            drop(wal);
            // The rebuilt manifest is durable: the next open is clean.
            let (_, rec) = Wal::open_with(&dir, injector(), opts).unwrap();
            assert!(!rec.manifest_rebuilt);
        }

        // A *missing* manifest rebuilds too (crash mid-resync).
        std::fs::remove_file(dir.join(MANIFEST_FILE)).unwrap();
        let (wal, rec) = Wal::open_with(&dir, injector(), opts).unwrap();
        assert!(rec.manifest_rebuilt);
        assert_eq!(wal.stream_id(), stream);
        assert_eq!(wal.next_seq(), 6);
    }

    #[test]
    fn reset_stream_reseeds_over_existing_records() {
        let dir = tmpdir("reset-stream");
        let (mut wal, _) = Wal::open(&dir, injector()).unwrap();
        for p in [b"a".as_slice(), b"b", b"c"] {
            wal.append(p).unwrap();
        }
        // Resync: a verified checkpoint now owns everything through seq
        // 41; the log restarts empty on the primary's stream and term.
        wal.reset_stream(0xC0FFEE, 42, 5).unwrap();
        assert_eq!(wal.stream_id(), 0xC0FFEE);
        assert_eq!(wal.next_seq(), 42);
        assert_eq!(wal.checkpoint_seq(), 42);
        assert_eq!(wal.term(), 5);
        assert_eq!(wal.records(), 0);
        assert_eq!(wal.append(b"post-resync").unwrap(), 42);
        drop(wal);
        let (wal, rec) = Wal::open(&dir, injector()).unwrap();
        assert!(!rec.manifest_rebuilt);
        assert_eq!(wal.stream_id(), 0xC0FFEE);
        assert_eq!(wal.term(), 5);
        assert_eq!(rec.records, vec![b"post-resync".to_vec()]);
    }

    #[test]
    fn verify_passes_clean_and_catches_bitrot() {
        let dir = tmpdir("scrub");
        let opts = WalOptions {
            segment_bytes: 32,
            ..WalOptions::default()
        };
        let (mut wal, _) = Wal::open_with(&dir, injector(), opts).unwrap();
        for i in 0..8u8 {
            wal.append(&[i; 24]).unwrap();
        }
        assert_eq!(wal.verify().unwrap(), 8);

        // Flip one payload bit in the *first* (sealed) segment, behind the
        // append path's back.
        let path = dir.join(segment_name(0));
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let err = wal.verify().unwrap_err();
        assert!(
            err.to_string().contains("checksum mismatch"),
            "names the corruption: {err}"
        );
        assert!(err.to_string().contains("seg-"), "names the file: {err}");
    }

    #[test]
    fn injected_disk_faults_fail_appends_with_real_errnos() {
        let dir = tmpdir("disk-faults");
        let faults = injector();
        let (mut wal, _) = Wal::open(&dir, faults.clone()).unwrap();
        wal.append(b"fine").unwrap();

        faults.arm(points::DISK_ENOSPC, 1);
        let err = wal.append(b"no space").unwrap_err();
        assert!(deepdive_core::faults::is_durable_storage_error(&err));
        assert!(err.to_string().contains("seg-"), "names the path: {err}");
        assert!(!wal.poisoned(), "a refused write rolls back clean");

        faults.arm(points::DISK_EIO, 1);
        let err = wal.append(b"io error").unwrap_err();
        assert!(deepdive_core::faults::is_durable_storage_error(&err));

        // The log still works, and a bit-flip is silent until verify.
        wal.append(b"healthy again").unwrap();
        faults.arm(points::DISK_BITFLIP, 1);
        wal.append(b"silently corrupted").unwrap();
        let err = wal.verify().unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Arbitrary manifest corruption — truncation, bit flips, garbage
        /// splices — never panics and never loses log records: open always
        /// succeeds and recovers every appended payload (give or take
        /// where the rebuilt checkpoint mark lands, never *above* the true
        /// one).
        #[test]
        fn arbitrary_manifest_corruption_recovers(
            flips in proptest::collection::vec((0usize..256, 0u8..=255), 1..8),
            truncate_to in prop_oneof![Just(None), (0usize..128).prop_map(Some)],
            ckpt_pick in 0u64..6,
        ) {
            let dir = tmpdir("prop-manifest");
            let opts = WalOptions {
                segment_bytes: 16,
                ..WalOptions::default()
            };
            let payloads: Vec<Vec<u8>> = (0..5u8).map(|i| vec![i; 12]).collect();
            {
                let (mut wal, _) = Wal::open_with(&dir, injector(), opts).unwrap();
                for p in &payloads {
                    wal.append(p).unwrap();
                }
                wal.mark_checkpointed(ckpt_pick.min(5)).unwrap();
            }
            let path = dir.join(MANIFEST_FILE);
            let mut bytes = std::fs::read(&path).unwrap();
            if let Some(t) = truncate_to {
                bytes.truncate(t);
            }
            for (pos, val) in flips {
                if !bytes.is_empty() {
                    let i = pos % bytes.len();
                    bytes[i] ^= val;
                }
            }
            std::fs::write(&path, &bytes).unwrap();

            let opened = Wal::open_with(&dir, injector(), opts);
            // The only legal refusal is a *well-formed* future manifest
            // version (corruption can craft one by flipping the digit).
            let (mut wal, rec) = match opened {
                Ok(ok) => ok,
                Err(e) => {
                    prop_assert!(
                        e.to_string().contains("newer than supported"),
                        "only future versions may be refused, got: {e}"
                    );
                    return Ok(());
                }
            };
            prop_assert_eq!(wal.next_seq(), 5);
            prop_assert!(wal.checkpoint_seq() <= ckpt_pick.min(5));
            // Every payload is still intact on disk.
            let (bytes, through) = wal.read_frames(wal.base_seq(), usize::MAX).unwrap();
            prop_assert_eq!(through, 5);
            let mut dec = frame::FrameDecoder::new();
            dec.feed(&bytes);
            let mut streamed = Vec::new();
            while let Some(p) = dec.next().unwrap() {
                streamed.push(p);
            }
            prop_assert_eq!(&streamed[..], &payloads[..]);
            let _ = rec;
        }
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Replay parity is invariant to where segment boundaries fall:
        /// whatever the segment size, a checkpoint position, and a
        /// compaction pass, reopening recovers exactly the pending suffix
        /// and `read_frames` serves every retained record to a follower.
        #[test]
        fn replay_parity_across_arbitrary_segment_boundaries(
            lens in proptest::collection::vec(0usize..96, 1..20),
            segment_bytes in 1u64..400,
            ckpt_pick in 0u64..1000,
            compact_before_reopen in any::<bool>(),
        ) {
            let dir = tmpdir("prop-seg");
            let opts = WalOptions {
                retain_records: 0,
                fresh_stream: true,
                segment_bytes,
            };
            let payloads: Vec<Vec<u8>> = lens
                .iter()
                .enumerate()
                .map(|(i, &n)| {
                    (0..n).map(|j| (i * 31 + j) as u8).collect()
                })
                .collect();
            let n = payloads.len() as u64;
            let through = ckpt_pick % (n + 1);
            {
                let (mut wal, _) = Wal::open_with(&dir, injector(), opts).unwrap();
                for p in &payloads {
                    wal.append(p).unwrap();
                }
                wal.mark_checkpointed(through).unwrap();
                if compact_before_reopen {
                    wal.compact().unwrap();
                }
            }
            let (mut wal, rec) = Wal::open_with(&dir, injector(), opts).unwrap();
            prop_assert!(!rec.torn_tail);
            prop_assert_eq!(&rec.records, &payloads[through as usize..]);
            prop_assert_eq!(rec.first_pending_seq, through);
            prop_assert_eq!(wal.next_seq(), n);
            // Every record still on disk streams back byte-identically,
            // wherever the segment boundaries landed.
            let from = wal.base_seq();
            let (bytes, served_through) = wal.read_frames(from, usize::MAX).unwrap();
            prop_assert_eq!(served_through, n);
            let mut dec = frame::FrameDecoder::new();
            dec.feed(&bytes);
            let mut streamed = Vec::new();
            while let Some(p) = dec.next().unwrap() {
                streamed.push(p);
            }
            prop_assert_eq!(&streamed[..], &payloads[from as usize..]);
        }
    }
}
