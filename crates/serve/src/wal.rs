//! The ingest write-ahead log: crash durability for `POST /documents` and
//! the shipping unit for primary → follower replication.
//!
//! The daemon's checkpoint only captures state as of the last flush; every
//! ingest acknowledged since would be lost to a crash. So each accepted
//! ingest body is appended here — and fsync'd — *before* the 200 goes out.
//! On startup the daemon restores the checkpoint, then replays the pending
//! suffix of the log through the same DRed/IVM path a live `POST` takes.
//!
//! ## On-disk format v2 (`ingest.wal`)
//!
//! A 36-byte file header:
//!
//! ```text
//! [8B magic "DDWAL2\n\0"][u32 LE format version = 2]
//! [u64 LE stream id][u64 LE base seq][u64 LE checkpoint seq]
//! ```
//!
//! followed by versioned, length-prefixed, checksummed frames:
//!
//! ```text
//! [u8 record version = 1][u32 LE payload length][u64 LE FNV-1a64(payload)][payload]
//! ```
//!
//! * **stream id** names the WAL's history. A primary mints a random
//!   nonzero id when it creates a fresh log; a follower's log starts at the
//!   `0` sentinel ("unadopted") and adopts the primary's id on first
//!   contact. Replication refuses to mix records across stream ids.
//! * **seqs are logical and monotonic.** The first frame in the file is
//!   `base seq`; a checkpoint flush no longer truncates the file — it
//!   advances `checkpoint seq` (records at lower seqs are owned by the
//!   checkpoint) and compaction trims the *retained* prefix down to a
//!   bounded window so followers can still fetch recent history after the
//!   primary checkpointed it. `records()` reports the *pending* count
//!   (`next seq − checkpoint seq`), which is what replay and drain care
//!   about.
//! * **version bytes fail loud.** Opening a future *format* version, or
//!   meeting a checksum-valid frame with an unknown *record* version,
//!   produces a clear "newer than supported" error instead of a
//!   checksum/torn-tail misdiagnosis. A v1 log (`DDWAL1\n\0`, unversioned
//!   12-byte frame headers) is upgraded in place on open.
//!
//! A crash mid-append leaves a torn tail. [`Wal::open`] detects it, and —
//! only when the tear sits in the *pending* region, whose records were by
//! construction never acknowledged — drops it and truncates back to the
//! last intact frame. Corruption inside the checkpointed (retained) region
//! is a hard error: those records were acked and shipped, so silently
//! dropping them would fork history under a follower.

use deepdive_core::checkpoint::fnv1a64;
use deepdive_core::faults::{points, FaultInjector};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// File magic for format v2.
const MAGIC_V2: &[u8; 8] = b"DDWAL2\n\0";
/// File magic of the legacy v1 format (auto-upgraded on open).
const MAGIC_V1: &[u8; 8] = b"DDWAL1\n\0";
/// The file format version this build writes and reads.
const FORMAT_VERSION: u32 = 2;
/// The frame (record) version this build writes and reads.
pub const RECORD_VERSION: u8 = 1;
/// File header: magic + format version + stream id + base seq + checkpoint
/// seq.
const HEADER_LEN: u64 = 36;
/// Byte offsets of the mutable header fields.
const OFF_STREAM_ID: u64 = 12;
const OFF_BASE_SEQ: u64 = 20;
const OFF_CHECKPOINT_SEQ: u64 = 28;
/// Per-frame framing overhead: version byte + u32 length + u64 checksum.
const FRAME_HEADER_BYTES: u64 = 13;
/// v1 framing overhead: u32 length + u64 checksum (no version byte).
const V1_HEADER_BYTES: u64 = 12;
/// Sanity cap on a single record's payload; anything larger means the
/// length prefix itself is corrupt (ingest bodies are capped well below
/// this by the HTTP layer).
const MAX_RECORD_BYTES: u32 = 64 * 1024 * 1024;
/// Default number of checkpointed records retained for followers before
/// compaction trims the prefix.
pub const DEFAULT_RETAIN_RECORDS: u64 = 1024;

/// Wire/disk framing shared by the WAL file and the replication stream.
///
/// The streaming endpoint ships frames byte-for-byte as they sit in the
/// file; the follower runs them through [`frame::FrameDecoder`], which
/// re-verifies every checksum on arrival, tolerates arbitrary chunk
/// boundaries, and skips the single-byte heartbeats the primary interleaves
/// to keep an idle connection alive.
pub mod frame {
    use super::{fnv1a64, FRAME_HEADER_BYTES, MAX_RECORD_BYTES, RECORD_VERSION};

    /// A single heartbeat byte, interleaved between frames on the wire
    /// (never written to disk). `0` is not a valid record version, so a
    /// decoder positioned at a frame boundary can always tell the two
    /// apart.
    pub const HEARTBEAT: u8 = 0;

    /// Encode one payload as a wire/disk frame.
    pub fn encode(payload: &[u8]) -> Vec<u8> {
        let mut buf = Vec::with_capacity(FRAME_HEADER_BYTES as usize + payload.len());
        buf.push(RECORD_VERSION);
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&fnv1a64(payload).to_le_bytes());
        buf.extend_from_slice(payload);
        buf
    }

    /// Why a decoder refused the stream.
    #[derive(Debug, PartialEq, Eq)]
    pub enum FrameError {
        /// Checksum mismatch, impossible length — the bytes are not a
        /// well-formed frame. The follower drops the connection and
        /// resumes from its last durable seq.
        Corrupt(&'static str),
        /// A checksum-*valid* frame carrying an unknown record version:
        /// written by a newer deepdive. Refused loudly rather than
        /// misapplied or misreported as corruption.
        FutureVersion(u8),
    }

    impl std::fmt::Display for FrameError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                FrameError::Corrupt(why) => write!(f, "corrupt WAL frame: {why}"),
                FrameError::FutureVersion(v) => write!(
                    f,
                    "WAL record version {v} is newer than supported ({RECORD_VERSION})"
                ),
            }
        }
    }

    /// Incremental frame decoder: feed arbitrary byte slices (chunk
    /// boundaries land anywhere), pull complete verified payloads.
    #[derive(Debug, Default)]
    pub struct FrameDecoder {
        buf: Vec<u8>,
        pos: usize,
    }

    impl FrameDecoder {
        pub fn new() -> Self {
            FrameDecoder::default()
        }

        pub fn feed(&mut self, bytes: &[u8]) {
            self.buf.extend_from_slice(bytes);
        }

        /// Bytes buffered but not yet consumed by a decoded frame.
        pub fn buffered(&self) -> usize {
            self.buf.len() - self.pos
        }

        /// Next complete payload: `Ok(None)` when more bytes are needed,
        /// `Err` when the stream is not trustworthy from here on (the
        /// caller must discard the connection — a partial prefix of a
        /// corrupt frame is never applied).
        #[allow(clippy::should_implement_trait)] // fallible, not an Iterator
        pub fn next(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
            // Heartbeats are single bytes between frames.
            while self.pos < self.buf.len() && self.buf[self.pos] == HEARTBEAT {
                self.pos += 1;
            }
            let avail = &self.buf[self.pos..];
            if (avail.len() as u64) < FRAME_HEADER_BYTES {
                self.compact();
                return Ok(None);
            }
            let version = avail[0];
            let len = u32::from_le_bytes(avail[1..5].try_into().expect("4 bytes"));
            let checksum = u64::from_le_bytes(avail[5..13].try_into().expect("8 bytes"));
            if len > MAX_RECORD_BYTES {
                return Err(FrameError::Corrupt("frame length over the 64 MiB cap"));
            }
            let total = FRAME_HEADER_BYTES as usize + len as usize;
            if avail.len() < total {
                self.compact();
                return Ok(None);
            }
            let payload = &avail[FRAME_HEADER_BYTES as usize..total];
            let checksum_ok = fnv1a64(payload) == checksum;
            if version != RECORD_VERSION {
                // A valid checksum under an unknown version byte means
                // a newer writer, not line noise.
                return Err(if checksum_ok {
                    FrameError::FutureVersion(version)
                } else {
                    FrameError::Corrupt("bad record version byte")
                });
            }
            if !checksum_ok {
                return Err(FrameError::Corrupt("frame checksum mismatch"));
            }
            let out = payload.to_vec();
            self.pos += total;
            self.compact();
            Ok(Some(out))
        }

        fn compact(&mut self) {
            if self.pos > 4096 {
                self.buf.drain(..self.pos);
                self.pos = 0;
            }
        }
    }
}

/// Tunables for [`Wal::open_with`].
#[derive(Debug, Clone, Copy)]
pub struct WalOptions {
    /// Checkpointed records kept for followers before compaction trims the
    /// retained prefix.
    pub retain_records: u64,
    /// When creating a brand-new log: mint a random nonzero stream id
    /// (primary) vs. the `0` "unadopted" sentinel (follower, which adopts
    /// the primary's id on first contact).
    pub fresh_stream: bool,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            retain_records: DEFAULT_RETAIN_RECORDS,
            fresh_stream: true,
        }
    }
}

/// What [`Wal::open`] found on disk.
#[derive(Debug)]
pub struct WalRecovery {
    /// Intact *pending* record payloads (seq ≥ checkpoint seq), in append
    /// order, awaiting replay.
    pub records: Vec<Vec<u8>>,
    /// Seq of the first pending record (== the recovered checkpoint seq).
    pub first_pending_seq: u64,
    /// True when a torn/corrupt tail was detected and dropped.
    pub torn_tail: bool,
    /// Bytes of intact log retained (the offset the tail was cut at).
    pub good_bytes: u64,
    /// Bytes of torn tail discarded.
    pub torn_bytes: u64,
    /// True when a legacy v1 log was upgraded to v2 in place.
    pub upgraded_v1: bool,
    /// Checkpoint-owned records still retained for followers.
    pub retained: u64,
}

/// A rollback point captured before a speculative append (see
/// [`Wal::rollback_to`]).
#[derive(Debug, Clone, Copy)]
pub struct WalMark {
    bytes: u64,
    next_seq: u64,
}

/// An open, appendable write-ahead log.
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    /// Append handle, cursor parked at the end of the intact log.
    file: File,
    /// Read handle for [`Wal::read_frames`]; seeks freely without
    /// disturbing the append cursor.
    reader: File,
    stream_id: u64,
    base_seq: u64,
    next_seq: u64,
    checkpoint_seq: u64,
    /// Byte offset of each frame currently in the file, seq-ordered
    /// (`index[i]` is the frame for seq `base_seq + i`).
    index: Vec<u64>,
    /// Bytes of intact log on disk (header + frames).
    bytes: u64,
    retain: u64,
    /// Set when an append failed in a way that leaves the on-disk tail
    /// unknown (torn write, failed rollback): further appends are refused
    /// until a checkpoint flush repairs the tail.
    poisoned: bool,
    faults: Arc<FaultInjector>,
}

impl Wal {
    /// Open (creating if needed) `dir/ingest.wal` with default options.
    pub fn open(dir: &Path, faults: Arc<FaultInjector>) -> io::Result<(Wal, WalRecovery)> {
        Wal::open_with(dir, faults, WalOptions::default())
    }

    /// Open (creating if needed) `dir/ingest.wal`, scan it for intact
    /// frames, drop a torn *pending* tail, refuse corruption in the
    /// checkpointed region, upgrade a v1 log, and position the write
    /// cursor after the last intact frame.
    pub fn open_with(
        dir: &Path,
        faults: Arc<FaultInjector>,
        options: WalOptions,
    ) -> io::Result<(Wal, WalRecovery)> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join("ingest.wal");
        let mut upgraded_v1 = false;
        let mut v1_torn = (false, 0u64); // (torn, torn_bytes)

        // Peek at the magic to decide: fresh file, v1 upgrade, v2, or junk.
        let existing_len = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        if existing_len == 0 {
            let stream_id = if options.fresh_stream {
                random_stream_id()
            } else {
                0
            };
            write_fresh(&path, stream_id, 0, 0, &[])?;
        } else {
            let mut magic = [0u8; 8];
            let mut f = File::open(&path)?;
            let got = read_fully(&mut f, &mut magic)?;
            drop(f);
            if got == magic.len() && &magic == MAGIC_V1 {
                let (records, torn, torn_bytes) = read_v1(&path)?;
                let stream_id = if options.fresh_stream {
                    random_stream_id()
                } else {
                    0
                };
                write_fresh(&path, stream_id, 0, 0, &records)?;
                upgraded_v1 = true;
                v1_torn = (torn, torn_bytes);
            } else if got < magic.len() || &magic != MAGIC_V2 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{} is not a deepdive WAL (bad magic)", path.display()),
                ));
            }
        }

        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .truncate(false)
            .open(&path)?;
        let total = file.metadata()?.len();

        // Parse and validate the header.
        let mut header = [0u8; HEADER_LEN as usize];
        let got = read_fully(&mut file, &mut header)?;
        if got < header.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: truncated WAL header", path.display()),
            ));
        }
        let format = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
        if format != FORMAT_VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "{}: WAL format version {format} is newer than supported \
                     ({FORMAT_VERSION}); refusing to guess at its layout",
                    path.display()
                ),
            ));
        }
        let stream_id = u64::from_le_bytes(header[12..20].try_into().expect("8 bytes"));
        let base_seq = u64::from_le_bytes(header[20..28].try_into().expect("8 bytes"));
        let checkpoint_seq = u64::from_le_bytes(header[28..36].try_into().expect("8 bytes"));
        if checkpoint_seq < base_seq {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: checkpoint seq below base seq", path.display()),
            ));
        }

        // Scan frames. A tear in the pending region is survivable (those
        // records were never acked); anything wrong in the checkpointed
        // region is fatal — acked history must not silently shrink.
        let mut recovery = WalRecovery {
            records: Vec::new(),
            first_pending_seq: checkpoint_seq,
            torn_tail: v1_torn.0,
            good_bytes: 0,
            torn_bytes: v1_torn.1,
            upgraded_v1,
            retained: 0,
        };
        let mut index = Vec::new();
        let mut offset = HEADER_LEN;
        let mut seq = base_seq;
        loop {
            match read_disk_frame(&mut file) {
                Ok(Some(payload)) => {
                    index.push(offset);
                    offset += FRAME_HEADER_BYTES + payload.len() as u64;
                    if seq >= checkpoint_seq {
                        recovery.records.push(payload);
                    }
                    seq += 1;
                }
                Ok(None) => break, // clean EOF
                Err(e) => {
                    let future_version = e.kind() == io::ErrorKind::InvalidData
                        && e.to_string().contains("newer than supported");
                    if seq < checkpoint_seq || future_version {
                        // Checkpointed history is damaged, or a newer
                        // writer's record sits in the log: both are
                        // refuse-loudly, not truncate-silently.
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("{}: {e} at seq {seq}", path.display()),
                        ));
                    }
                    recovery.torn_tail = true;
                    break;
                }
            }
        }
        if seq < checkpoint_seq {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "{}: log ends at seq {seq} but the header claims seqs \
                     through {checkpoint_seq} were checkpointed",
                    path.display()
                ),
            ));
        }
        recovery.good_bytes = offset;
        recovery.torn_bytes += total.saturating_sub(offset);
        recovery.retained = checkpoint_seq - base_seq;
        if total > offset {
            file.set_len(offset)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(offset))?;

        let reader = File::open(&path)?;
        let mut wal = Wal {
            path,
            file,
            reader,
            stream_id,
            base_seq,
            next_seq: seq,
            checkpoint_seq,
            index,
            bytes: offset,
            retain: options.retain_records,
            poisoned: false,
            faults,
        };
        // An oversized retained prefix (e.g. the retention knob shrank
        // between runs) compacts on open.
        wal.maybe_compact()?;
        recovery.retained = wal.checkpoint_seq - wal.base_seq;
        Ok((wal, recovery))
    }

    /// Append one record, fsync it, and return its seq. Returns only after
    /// the bytes are durable — the caller may acknowledge the ingest iff
    /// this returns `Ok`. On failure the append is rolled back (the file
    /// is truncated to its pre-append length) so the log stays parseable;
    /// if even the rollback fails the log is poisoned and refuses further
    /// appends.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<u64> {
        if self.poisoned {
            return Err(io::Error::other(
                "WAL is poisoned by an earlier failed append; \
                 a checkpoint flush is required to repair it",
            ));
        }
        if payload.len() as u64 > MAX_RECORD_BYTES as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "WAL record over the 64 MiB cap",
            ));
        }
        let before = self.bytes;
        let buf = frame::encode(payload);

        // Fault point: a crash mid-write leaves a torn prefix on disk and
        // the client never hears an ack.
        if self.faults.trips(points::WAL_TORN_WRITE) {
            let half = buf.len() / 2;
            let _ = self.file.write_all(&buf[..half]);
            let _ = self.file.flush();
            self.poisoned = true;
            return Err(io::Error::other("injected torn WAL write"));
        }

        let result = self
            .file
            .write_all(&buf)
            .and_then(|()| {
                if self.faults.trips(points::WAL_FSYNC) {
                    Err(io::Error::other("injected fsync failure"))
                } else {
                    Ok(())
                }
            })
            .and_then(|()| self.file.sync_data());
        match result {
            Ok(()) => {
                let seq = self.next_seq;
                self.index.push(before);
                self.bytes += buf.len() as u64;
                self.next_seq += 1;
                Ok(seq)
            }
            Err(e) => {
                // Cut the partial record back off so the log stays intact.
                let rolled_back = self
                    .file
                    .set_len(before)
                    .and_then(|()| self.file.seek(SeekFrom::Start(before)).map(|_| ()))
                    .and_then(|()| self.file.sync_data());
                if rolled_back.is_err() {
                    self.poisoned = true;
                }
                Err(e)
            }
        }
    }

    /// Capture the current append position for a later [`Wal::rollback_to`].
    pub fn mark(&self) -> WalMark {
        WalMark {
            bytes: self.bytes,
            next_seq: self.next_seq,
        }
    }

    /// Cut the log back to a previously captured mark, discarding every
    /// record appended since — the negative-ack path: a record whose apply
    /// failed is answered 5xx, so it must not linger in the log and
    /// materialize on replay. Never cuts below the checkpoint seq. If the
    /// cut itself fails the on-disk state is unknown and the log is
    /// poisoned.
    pub fn rollback_to(&mut self, mark: &WalMark) -> io::Result<()> {
        debug_assert!(mark.bytes <= self.bytes && mark.next_seq <= self.next_seq);
        debug_assert!(
            mark.next_seq >= self.checkpoint_seq,
            "cannot roll back checkpointed records"
        );
        let result = self
            .file
            .set_len(mark.bytes)
            .and_then(|()| self.file.seek(SeekFrom::Start(mark.bytes)).map(|_| ()))
            .and_then(|()| self.file.sync_data());
        match result {
            Ok(()) => {
                self.bytes = mark.bytes;
                self.next_seq = mark.next_seq;
                self.index
                    .truncate((mark.next_seq - self.base_seq) as usize);
                Ok(())
            }
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
        }
    }

    /// A checkpoint now owns every record below `through_seq`: advance the
    /// durable checkpoint seq, repair a poisoned tail (the unknown bytes
    /// were never acked and the checkpoint supersedes the log anyway), and
    /// compact the retained prefix down to the retention window. The
    /// records themselves stay fetchable by followers until compaction
    /// trims them.
    pub fn mark_checkpointed(&mut self, through_seq: u64) -> io::Result<()> {
        let through = through_seq.clamp(self.checkpoint_seq, self.next_seq);
        if self.poisoned {
            // Everything acked sits at or below `self.bytes`; the tail
            // beyond it is an unacknowledged unknown — cut it.
            self.file.set_len(self.bytes)?;
            self.file.seek(SeekFrom::Start(self.bytes))?;
            self.file.sync_data()?;
            self.poisoned = false;
        }
        if through != self.checkpoint_seq {
            self.write_header_u64(OFF_CHECKPOINT_SEQ, through)?;
            self.checkpoint_seq = through;
        }
        self.maybe_compact()
    }

    /// Adopt a replication stream: legal only while the log holds no
    /// frames (a fresh follower, or one re-seeded from a copied
    /// checkpoint). Sets the stream id and positions the log at
    /// `start_seq`.
    pub fn adopt_stream(&mut self, stream_id: u64, start_seq: u64) -> io::Result<()> {
        if self.next_seq != self.base_seq {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "cannot adopt a stream over a WAL that already holds records",
            ));
        }
        self.write_header_u64(OFF_STREAM_ID, stream_id)?;
        self.stream_id = stream_id;
        self.write_header_u64(OFF_BASE_SEQ, start_seq)?;
        self.write_header_u64(OFF_CHECKPOINT_SEQ, start_seq)?;
        self.base_seq = start_seq;
        self.next_seq = start_seq;
        self.checkpoint_seq = start_seq;
        Ok(())
    }

    /// Read frames `[from_seq, …)` as raw wire bytes, stopping at
    /// `max_bytes` (always includes at least one frame when any exists so
    /// a single large record cannot stall the stream). Returns the bytes
    /// and the seq one past the last frame included. `from_seq` must lie
    /// in `[base_seq, next_seq]`.
    pub fn read_frames(&mut self, from_seq: u64, max_bytes: usize) -> io::Result<(Vec<u8>, u64)> {
        if from_seq < self.base_seq || from_seq > self.next_seq {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "seq {from_seq} outside the log's [{}, {}] window",
                    self.base_seq, self.next_seq
                ),
            ));
        }
        if from_seq == self.next_seq {
            return Ok((Vec::new(), from_seq));
        }
        let start_idx = (from_seq - self.base_seq) as usize;
        let start_off = self.index[start_idx];
        let mut end_seq = from_seq;
        let mut end_off = start_off;
        while end_seq < self.next_seq {
            let idx = (end_seq - self.base_seq) as usize + 1;
            let next_off = self.index.get(idx).copied().unwrap_or(self.bytes);
            if end_seq > from_seq && (next_off - start_off) as usize > max_bytes {
                break;
            }
            end_off = next_off;
            end_seq += 1;
            if (end_off - start_off) as usize >= max_bytes {
                break;
            }
        }
        let mut buf = vec![0u8; (end_off - start_off) as usize];
        self.reader.seek(SeekFrom::Start(start_off))?;
        self.reader.read_exact(&mut buf)?;
        Ok((buf, end_seq))
    }

    /// *Pending* records: appended (or recovered) but not yet owned by a
    /// checkpoint. This is what replay processes and drain flushes.
    pub fn records(&self) -> u64 {
        self.next_seq - self.checkpoint_seq
    }

    /// All frames physically in the file, retained + pending.
    pub fn physical_records(&self) -> u64 {
        self.next_seq - self.base_seq
    }

    /// Intact bytes on disk (including the file header).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The replication stream this log belongs to (`0` = not yet adopted).
    pub fn stream_id(&self) -> u64 {
        self.stream_id
    }

    /// Seq of the oldest frame still in the file.
    pub fn base_seq(&self) -> u64 {
        self.base_seq
    }

    /// Seq the next append will receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Seqs below this are owned by a checkpoint.
    pub fn checkpoint_seq(&self) -> u64 {
        self.checkpoint_seq
    }

    /// True when a failed append left the on-disk tail unknown.
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    fn write_header_u64(&mut self, offset: u64, value: u64) -> io::Result<()> {
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.write_all(&value.to_le_bytes())?;
        self.file.sync_data()?;
        self.file.seek(SeekFrom::Start(self.bytes))?;
        Ok(())
    }

    /// Trim the retained (checkpoint-owned) prefix down to the retention
    /// window by rewriting the file via temp + rename. Pending frames are
    /// always kept.
    fn maybe_compact(&mut self) -> io::Result<()> {
        if self.checkpoint_seq - self.base_seq <= self.retain {
            return Ok(());
        }
        let new_base = self.checkpoint_seq - self.retain;
        let start_idx = (new_base - self.base_seq) as usize;
        let start_off = self.index[start_idx];

        let tmp = self.path.with_extension("wal.tmp");
        {
            let mut out = File::create(&tmp)?;
            out.write_all(&header_bytes(self.stream_id, new_base, self.checkpoint_seq))?;
            self.reader.seek(SeekFrom::Start(start_off))?;
            let mut remaining = self.bytes - start_off;
            let mut chunk = vec![0u8; 64 * 1024];
            while remaining > 0 {
                let want = chunk.len().min(remaining as usize);
                self.reader.read_exact(&mut chunk[..want])?;
                out.write_all(&chunk[..want])?;
                remaining -= want as u64;
            }
            out.sync_data()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        if let Some(dir) = self.path.parent() {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }

        // The rename replaced the inode both handles point at: reopen.
        let mut file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        let shifted = start_off - HEADER_LEN;
        self.index.drain(..start_idx);
        for off in &mut self.index {
            *off -= shifted;
        }
        self.bytes -= shifted;
        self.base_seq = new_base;
        file.seek(SeekFrom::Start(self.bytes))?;
        self.file = file;
        self.reader = File::open(&self.path)?;
        Ok(())
    }
}

fn header_bytes(stream_id: u64, base_seq: u64, checkpoint_seq: u64) -> [u8; HEADER_LEN as usize] {
    let mut h = [0u8; HEADER_LEN as usize];
    h[0..8].copy_from_slice(MAGIC_V2);
    h[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    h[12..20].copy_from_slice(&stream_id.to_le_bytes());
    h[20..28].copy_from_slice(&base_seq.to_le_bytes());
    h[28..36].copy_from_slice(&checkpoint_seq.to_le_bytes());
    h
}

/// Write a fresh v2 log (atomically, via temp + rename when replacing an
/// upgraded v1 file) holding `records` as pending frames.
fn write_fresh(
    path: &Path,
    stream_id: u64,
    base_seq: u64,
    checkpoint_seq: u64,
    records: &[Vec<u8>],
) -> io::Result<()> {
    let tmp = path.with_extension("wal.tmp");
    {
        let mut out = File::create(&tmp)?;
        out.write_all(&header_bytes(stream_id, base_seq, checkpoint_seq))?;
        for r in records {
            out.write_all(&frame::encode(r))?;
        }
        out.sync_data()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// A random nonzero stream id, seeded from the OS (`RandomState` is
/// randomly keyed per process) — no RNG dependency needed.
fn random_stream_id() -> u64 {
    use std::collections::hash_map::RandomState;
    use std::hash::{BuildHasher, Hasher};
    loop {
        let mut h = RandomState::new().build_hasher();
        h.write_u64(std::process::id() as u64);
        let v = h.finish();
        if v != 0 {
            return v;
        }
    }
}

/// Read as many bytes as available into `buf`; returns how many were read
/// (short only at EOF).
fn read_fully(r: &mut impl Read, buf: &mut [u8]) -> io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

/// Read one v2 frame from disk. `Ok(None)` at clean EOF; `Err` on a torn
/// or corrupt frame (`UnexpectedEof` for a short read, `InvalidData` for
/// checksum/length/version trouble — a checksum-valid unknown version says
/// "newer than supported" so callers can fail loud instead of truncating).
fn read_disk_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; FRAME_HEADER_BYTES as usize];
    let got = read_fully(r, &mut header)?;
    if got == 0 {
        return Ok(None);
    }
    if got < header.len() {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "torn frame header",
        ));
    }
    let version = header[0];
    let len = u32::from_le_bytes(header[1..5].try_into().expect("4 bytes"));
    let checksum = u64::from_le_bytes(header[5..13].try_into().expect("8 bytes"));
    if len > MAX_RECORD_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "corrupt frame length",
        ));
    }
    let mut payload = vec![0u8; len as usize];
    let got = read_fully(r, &mut payload)?;
    if got < payload.len() {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "torn frame payload",
        ));
    }
    let checksum_ok = fnv1a64(&payload) == checksum;
    if version != RECORD_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            if checksum_ok {
                format!("WAL record version {version} is newer than supported ({RECORD_VERSION})")
            } else {
                "corrupt record version byte".to_string()
            },
        ));
    }
    if !checksum_ok {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame checksum mismatch",
        ));
    }
    Ok(Some(payload))
}

/// Read a legacy v1 log: magic `DDWAL1\n\0`, then unversioned
/// `[u32 len][u64 cksum][payload]` records. Returns the intact records and
/// whether (and how much) torn tail was dropped.
fn read_v1(path: &Path) -> io::Result<(Vec<Vec<u8>>, bool, u64)> {
    let mut f = File::open(path)?;
    let total = f.metadata()?.len();
    f.seek(SeekFrom::Start(8))?;
    let mut records = Vec::new();
    let mut offset = 8u64;
    let mut torn = false;
    loop {
        let mut header = [0u8; V1_HEADER_BYTES as usize];
        let got = read_fully(&mut f, &mut header)?;
        if got == 0 {
            break;
        }
        if got < header.len() {
            torn = true;
            break;
        }
        let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
        let checksum = u64::from_le_bytes(header[4..12].try_into().expect("8 bytes"));
        if len > MAX_RECORD_BYTES {
            torn = true;
            break;
        }
        let mut payload = vec![0u8; len as usize];
        let got = read_fully(&mut f, &mut payload)?;
        if got < payload.len() || fnv1a64(&payload) != checksum {
            torn = true;
            break;
        }
        offset += V1_HEADER_BYTES + payload.len() as u64;
        records.push(payload);
    }
    Ok((records, torn, total.saturating_sub(offset)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("dd-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn injector() -> Arc<FaultInjector> {
        Arc::new(FaultInjector::new())
    }

    #[test]
    fn append_and_recover_round_trips() {
        let dir = tmpdir("roundtrip");
        let payloads: Vec<&[u8]> = vec![b"alpha", b"", b"{\"rows\":{}}", &[0xFF, 0x00, 0x7F]];
        let stream;
        {
            let (mut wal, rec) = Wal::open(&dir, injector()).unwrap();
            assert!(rec.records.is_empty());
            assert!(!rec.torn_tail);
            stream = wal.stream_id();
            assert_ne!(stream, 0, "primary WAL mints a nonzero stream id");
            for (i, p) in payloads.iter().enumerate() {
                assert_eq!(
                    wal.append(p).unwrap(),
                    i as u64,
                    "seqs are assigned in order"
                );
            }
            assert_eq!(wal.records(), payloads.len() as u64);
        }
        let (wal, rec) = Wal::open(&dir, injector()).unwrap();
        assert!(!rec.torn_tail);
        assert!(!rec.upgraded_v1);
        assert_eq!(rec.records, payloads);
        assert_eq!(rec.first_pending_seq, 0);
        assert_eq!(wal.records(), payloads.len() as u64);
        assert_eq!(wal.bytes(), rec.good_bytes);
        assert_eq!(wal.stream_id(), stream, "stream id survives reopen");
    }

    #[test]
    fn truncated_final_record_is_dropped_not_fatal() {
        let dir = tmpdir("torn");
        let good_bytes;
        {
            let (mut wal, _) = Wal::open(&dir, injector()).unwrap();
            wal.append(b"first record").unwrap();
            wal.append(b"second record").unwrap();
            good_bytes = wal.bytes();
            wal.append(b"third record, about to be torn").unwrap();
        }
        // Simulate a crash mid-append: cut the file inside the third
        // record's payload.
        let path = dir.join("ingest.wal");
        let full = std::fs::metadata(&path).unwrap().len();
        let cut = good_bytes + FRAME_HEADER_BYTES + 4;
        assert!(cut < full);
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(cut).unwrap();
        drop(f);

        let (mut wal, rec) = Wal::open(&dir, injector()).unwrap();
        assert!(rec.torn_tail, "tear must be detected");
        assert_eq!(rec.records.len(), 2, "intact records survive");
        assert_eq!(rec.records[0], b"first record");
        assert_eq!(rec.records[1], b"second record");
        assert_eq!(rec.good_bytes, good_bytes);
        assert_eq!(rec.torn_bytes, cut - good_bytes);

        // The file was truncated back to the last intact record, so new
        // appends land cleanly after it — and reuse the torn record's seq.
        assert_eq!(wal.append(b"post-recovery record").unwrap(), 2);
        drop(wal);
        let (_, rec) = Wal::open(&dir, injector()).unwrap();
        assert!(!rec.torn_tail);
        assert_eq!(rec.records.len(), 3);
        assert_eq!(rec.records[2], b"post-recovery record");
    }

    #[test]
    fn corrupted_checksum_drops_the_pending_tail() {
        let dir = tmpdir("cksum");
        {
            let (mut wal, _) = Wal::open(&dir, injector()).unwrap();
            wal.append(b"keep me").unwrap();
            wal.append(b"flip a bit in me").unwrap();
        }
        let path = dir.join("ingest.wal");
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        let (_, rec) = Wal::open(&dir, injector()).unwrap();
        assert!(rec.torn_tail);
        assert_eq!(rec.records, vec![b"keep me".to_vec()]);
    }

    #[test]
    fn corruption_in_checkpointed_region_is_fatal() {
        let dir = tmpdir("ckpt-corrupt");
        {
            let (mut wal, _) = Wal::open(&dir, injector()).unwrap();
            wal.append(b"checkpointed and shipped").unwrap();
            wal.append(b"pending").unwrap();
            wal.mark_checkpointed(1).unwrap();
        }
        let path = dir.join("ingest.wal");
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a payload byte of the first (checkpoint-owned) record.
        let idx = HEADER_LEN as usize + FRAME_HEADER_BYTES as usize;
        bytes[idx] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        let err = Wal::open(&dir, injector()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(
            err.to_string().contains("seq 0"),
            "the error names the damaged seq: {err}"
        );
    }

    #[test]
    fn checkpoint_keeps_records_fetchable_and_zeroes_pending() {
        let dir = tmpdir("ckpt");
        let (mut wal, _) = Wal::open(&dir, injector()).unwrap();
        wal.append(b"one").unwrap();
        wal.append(b"two").unwrap();
        wal.mark_checkpointed(2).unwrap();
        assert_eq!(wal.records(), 0, "nothing pending after the flush");
        assert_eq!(wal.physical_records(), 2, "frames stay for followers");

        let (frames, next) = wal.read_frames(0, usize::MAX).unwrap();
        assert_eq!(next, 2);
        let mut dec = frame::FrameDecoder::new();
        dec.feed(&frames);
        assert_eq!(dec.next().unwrap().unwrap(), b"one");
        assert_eq!(dec.next().unwrap().unwrap(), b"two");
        assert_eq!(dec.next().unwrap(), None);

        drop(wal);
        let (wal, rec) = Wal::open(&dir, injector()).unwrap();
        assert!(rec.records.is_empty(), "checkpointed records do not replay");
        assert_eq!(rec.first_pending_seq, 2);
        assert_eq!(rec.retained, 2);
        assert_eq!(wal.next_seq(), 2, "seqs keep counting after a flush");
    }

    #[test]
    fn retention_compacts_the_checkpointed_prefix() {
        let dir = tmpdir("retain");
        let opts = WalOptions {
            retain_records: 2,
            fresh_stream: true,
        };
        let (mut wal, _) = Wal::open_with(&dir, injector(), opts).unwrap();
        for i in 0..5u32 {
            wal.append(format!("record {i}").as_bytes()).unwrap();
        }
        wal.mark_checkpointed(5).unwrap();
        assert_eq!(wal.base_seq(), 3, "only the last 2 checkpointed remain");
        assert_eq!(wal.next_seq(), 5);

        let (frames, next) = wal.read_frames(3, usize::MAX).unwrap();
        assert_eq!(next, 5);
        let mut dec = frame::FrameDecoder::new();
        dec.feed(&frames);
        assert_eq!(dec.next().unwrap().unwrap(), b"record 3");
        assert_eq!(dec.next().unwrap().unwrap(), b"record 4");

        assert!(
            wal.read_frames(2, usize::MAX).is_err(),
            "seqs below base are gone"
        );

        // Appends continue after compaction, and reopening agrees.
        assert_eq!(wal.append(b"record 5").unwrap(), 5);
        drop(wal);
        let (wal, rec) = Wal::open_with(&dir, injector(), opts).unwrap();
        assert_eq!(rec.records, vec![b"record 5".to_vec()]);
        assert_eq!(wal.base_seq(), 3);
        assert_eq!(wal.next_seq(), 6);
    }

    #[test]
    fn read_frames_honors_max_bytes_but_returns_at_least_one() {
        let dir = tmpdir("window");
        let (mut wal, _) = Wal::open(&dir, injector()).unwrap();
        let big = vec![0xABu8; 4096];
        for _ in 0..4 {
            wal.append(&big).unwrap();
        }
        // A window smaller than one frame still ships one frame.
        let (frames, next) = wal.read_frames(0, 16).unwrap();
        assert_eq!(next, 1);
        assert_eq!(frames.len(), FRAME_HEADER_BYTES as usize + big.len());
        // A window of ~2.5 frames ships 2.
        let (_, next) = wal.read_frames(0, 2 * 4200).unwrap();
        assert_eq!(next, 2);
        // From the end: empty.
        let (frames, next) = wal.read_frames(4, 1024).unwrap();
        assert!(frames.is_empty());
        assert_eq!(next, 4);
    }

    #[test]
    fn v1_log_upgrades_in_place() {
        let dir = tmpdir("v1");
        std::fs::create_dir_all(&dir).unwrap();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC_V1);
        for payload in [b"legacy one".as_slice(), b"legacy two".as_slice()] {
            bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            bytes.extend_from_slice(&fnv1a64(payload).to_le_bytes());
            bytes.extend_from_slice(payload);
        }
        // Torn v1 tail: half a header.
        bytes.extend_from_slice(&[0x05, 0x00]);
        std::fs::write(dir.join("ingest.wal"), &bytes).unwrap();

        let (wal, rec) = Wal::open(&dir, injector()).unwrap();
        assert!(rec.upgraded_v1);
        assert!(rec.torn_tail, "the v1 tear is reported");
        assert_eq!(
            rec.records,
            vec![b"legacy one".to_vec(), b"legacy two".to_vec()],
            "v1 records come back pending"
        );
        assert_eq!(rec.first_pending_seq, 0);
        assert_ne!(wal.stream_id(), 0);
        drop(wal);

        // The file on disk is now v2.
        let on_disk = std::fs::read(dir.join("ingest.wal")).unwrap();
        assert_eq!(&on_disk[0..8], MAGIC_V2);
        let (_, rec) = Wal::open(&dir, injector()).unwrap();
        assert!(!rec.upgraded_v1);
        assert_eq!(rec.records.len(), 2);
    }

    #[test]
    fn future_format_version_fails_with_a_clear_error() {
        let dir = tmpdir("future-format");
        std::fs::create_dir_all(&dir).unwrap();
        let mut header = header_bytes(42, 0, 0);
        header[8..12].copy_from_slice(&3u32.to_le_bytes());
        std::fs::write(dir.join("ingest.wal"), header).unwrap();

        let err = Wal::open(&dir, injector()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(
            err.to_string().contains("format version 3"),
            "names the version: {err}"
        );
        assert!(err.to_string().contains("newer than supported"));
    }

    #[test]
    fn future_record_version_fails_loud_not_torn() {
        let dir = tmpdir("future-record");
        std::fs::create_dir_all(&dir).unwrap();
        let mut bytes = header_bytes(42, 0, 0).to_vec();
        let payload = b"from the future";
        bytes.push(2); // unknown record version
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&fnv1a64(payload).to_le_bytes());
        bytes.extend_from_slice(payload);
        std::fs::write(dir.join("ingest.wal"), &bytes).unwrap();

        let err = Wal::open(&dir, injector()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(
            err.to_string().contains("record version 2"),
            "names the record version: {err}"
        );
    }

    #[test]
    fn fsync_fault_rolls_back_and_log_stays_intact() {
        let dir = tmpdir("fsync");
        let faults = injector();
        let (mut wal, _) = Wal::open(&dir, faults.clone()).unwrap();
        wal.append(b"durable").unwrap();

        faults.arm(points::WAL_FSYNC, 1);
        let err = wal.append(b"never acked").unwrap_err();
        assert!(err.to_string().contains("injected fsync failure"));
        assert_eq!(wal.records(), 1, "failed append not counted");
        assert!(!wal.poisoned(), "rollback succeeded");

        // The log is still appendable and the failed record left no trace.
        wal.append(b"after the failure").unwrap();
        drop(wal);
        let (_, rec) = Wal::open(&dir, injector()).unwrap();
        assert!(!rec.torn_tail);
        assert_eq!(
            rec.records,
            vec![b"durable".to_vec(), b"after the failure".to_vec()]
        );
    }

    #[test]
    fn torn_write_fault_poisons_until_checkpoint_repair() {
        let dir = tmpdir("tornwrite");
        let faults = injector();
        let (mut wal, _) = Wal::open(&dir, faults.clone()).unwrap();
        wal.append(b"acked").unwrap();

        faults.arm(points::WAL_TORN_WRITE, 1);
        assert!(wal.append(b"torn mid-write").is_err());
        assert!(wal.poisoned());
        assert!(
            wal.append(b"refused").is_err(),
            "poisoned log refuses appends"
        );

        // A checkpoint flush repairs the unknown tail and resumes service.
        wal.mark_checkpointed(wal.next_seq()).unwrap();
        assert!(!wal.poisoned());
        assert_eq!(wal.records(), 0);
        wal.append(b"after repair").unwrap();
        drop(wal);
        let (_, rec) = Wal::open(&dir, injector()).unwrap();
        assert!(!rec.torn_tail);
        assert_eq!(rec.records, vec![b"after repair".to_vec()]);
    }

    #[test]
    fn torn_write_poison_recovers_across_restart() {
        let dir = tmpdir("tornwrite-restart");
        let faults = injector();
        {
            let (mut wal, _) = Wal::open(&dir, faults.clone()).unwrap();
            wal.append(b"acked").unwrap();
            faults.arm(points::WAL_TORN_WRITE, 1);
            assert!(wal.append(b"torn mid-write").is_err());
        }
        // Reopening (a restart) recovers the intact prefix and drops the
        // tear.
        let (_, rec) = Wal::open(&dir, injector()).unwrap();
        assert!(rec.torn_tail);
        assert_eq!(rec.records, vec![b"acked".to_vec()]);
    }

    #[test]
    fn rollback_to_discards_records_appended_since() {
        let dir = tmpdir("rollback");
        let (mut wal, _) = Wal::open(&dir, injector()).unwrap();
        wal.append(b"keep me").unwrap();
        let mark = wal.mark();
        wal.append(b"negatively acked").unwrap();
        wal.rollback_to(&mark).unwrap();
        assert_eq!(wal.records(), 1);
        assert!(!wal.poisoned());

        // The seq is reused and replay never sees the rolled-back record.
        assert_eq!(wal.append(b"after the rollback").unwrap(), 1);
        drop(wal);
        let (_, rec) = Wal::open(&dir, injector()).unwrap();
        assert!(!rec.torn_tail);
        assert_eq!(
            rec.records,
            vec![b"keep me".to_vec(), b"after the rollback".to_vec()]
        );
    }

    #[test]
    fn adopt_stream_only_on_an_empty_log() {
        let dir = tmpdir("adopt");
        let opts = WalOptions {
            retain_records: DEFAULT_RETAIN_RECORDS,
            fresh_stream: false,
        };
        let (mut wal, _) = Wal::open_with(&dir, injector(), opts).unwrap();
        assert_eq!(wal.stream_id(), 0, "follower WAL starts unadopted");
        wal.adopt_stream(0xDEADBEEF, 7).unwrap();
        assert_eq!(wal.stream_id(), 0xDEADBEEF);
        assert_eq!(wal.next_seq(), 7);
        assert_eq!(wal.append(b"first replicated").unwrap(), 7);
        assert!(
            wal.adopt_stream(0xBEEF, 0).is_err(),
            "cannot re-adopt over records"
        );
        drop(wal);
        let (wal, rec) = Wal::open_with(&dir, injector(), opts).unwrap();
        assert_eq!(wal.stream_id(), 0xDEADBEEF, "adoption is durable");
        assert_eq!(rec.first_pending_seq, 7);
        assert_eq!(rec.records, vec![b"first replicated".to_vec()]);
    }

    #[test]
    fn decoder_handles_splits_heartbeats_and_corruption() {
        let mut wire = Vec::new();
        wire.push(frame::HEARTBEAT);
        wire.extend_from_slice(&frame::encode(b"hello"));
        wire.push(frame::HEARTBEAT);
        wire.push(frame::HEARTBEAT);
        wire.extend_from_slice(&frame::encode(b""));
        wire.extend_from_slice(&frame::encode(&[0u8, 1, 2, 3]));

        // Feed one byte at a time: every frame still decodes exactly once.
        let mut dec = frame::FrameDecoder::new();
        let mut out = Vec::new();
        for b in &wire {
            dec.feed(&[*b]);
            while let Some(p) = dec.next().unwrap() {
                out.push(p);
            }
        }
        assert_eq!(out, vec![b"hello".to_vec(), Vec::new(), vec![0u8, 1, 2, 3]]);

        // A flipped payload bit is Corrupt, not a wrong record.
        let mut bad = frame::encode(b"payload");
        let last = bad.len() - 1;
        bad[last] ^= 0x40;
        let mut dec = frame::FrameDecoder::new();
        dec.feed(&bad);
        assert!(matches!(dec.next(), Err(frame::FrameError::Corrupt(_))));

        // A checksum-valid frame under an unknown version is FutureVersion.
        let mut future = frame::encode(b"payload");
        future[0] = 9;
        let mut dec = frame::FrameDecoder::new();
        dec.feed(&future);
        assert_eq!(dec.next(), Err(frame::FrameError::FutureVersion(9)));
    }

    #[test]
    fn non_wal_file_is_refused() {
        let dir = tmpdir("magic");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("ingest.wal"), b"definitely not a WAL file").unwrap();
        assert!(Wal::open(&dir, injector()).is_err());
    }
}
