//! WAL-shipping replication: a primary streams its write-ahead log over
//! `GET /wal`; a follower tails it, persists every record to its own WAL,
//! and replays each through the same DRed/IVM path a live ingest takes.
//!
//! The protocol is deliberately minimal, built on the crate's hand-rolled
//! HTTP/1.1 stack (no new dependencies):
//!
//! * **Handshake.** The follower requests
//!   `GET /wal?from=<seq>&stream=<hex id>`; `from` is its own WAL's
//!   `next_seq` — the first record it does *not* hold durably — and
//!   `stream` is the stream id it adopted (0 = fresh, never adopted). The
//!   primary answers 200 with `X-DD-Stream` (its stream id), `X-DD-From`
//!   (echo), and `X-DD-End` (its current head seq — the follower's first
//!   lag watermark); or **409** when histories diverge (stream id
//!   mismatch, or the follower claims seqs the primary never wrote); or
//!   **410** when the requested seq was compacted away (the follower must
//!   be re-seeded from a fresh checkpoint); or **404** when the primary
//!   has no WAL at all.
//! * **Stream.** The body is `Transfer-Encoding: chunked` and never ends
//!   while both sides are healthy: WAL frames are shipped verbatim
//!   (version byte + length + checksum + payload, exactly the on-disk
//!   bytes), and single `0x00` heartbeat bytes are interleaved when idle
//!   so the follower can distinguish "no news" from "dead primary".
//!   Chunk boundaries carry no meaning — the follower reassembles frames
//!   with [`crate::wal::frame::FrameDecoder`], which re-verifies every
//!   checksum on arrival.
//! * **Resume.** Any cut — mid-chunk, mid-frame, mid-byte — is survivable:
//!   the follower appends a record to its own WAL (fsync) *before*
//!   applying it, so its `next_seq` is always the exact durable resume
//!   point. Reconnects back off exponentially with jitter.
//! * **Divergence is fatal, lag is not.** A 409 (or a record that fails to
//!   apply locally) marks the follower diverged: it keeps serving reads
//!   but fails `/readyz` and the CLI exits with a dedicated code. Lag
//!   beyond `--max-lag-epochs` only fails `/readyz` until the follower
//!   catches back up.

use crate::http::Response;
use crate::server::{Lifecycle, ServeState};
use crate::wal::frame::{self, FrameDecoder, FrameError};
use deepdive_core::checkpoint::fnv1a64;
use deepdive_core::faults::points;
use parking_lot::Mutex;
use serde_json::{json, Value as Json};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How often the primary interleaves a heartbeat byte on an idle stream.
const HEARTBEAT_EVERY: Duration = Duration::from_secs(1);
/// How often the streamer polls the WAL for new frames.
const STREAM_POLL: Duration = Duration::from_millis(25);
/// The follower's socket read timeout; three missed heartbeats means the
/// primary is gone and the follower reconnects.
const FOLLOWER_READ_TIMEOUT: Duration = Duration::from_secs(3);
/// Reconnect backoff bounds (exponential, full jitter on top).
const BACKOFF_FLOOR: Duration = Duration::from_millis(200);
const BACKOFF_CEIL: Duration = Duration::from_secs(5);

/// Replication books, shared by `/metrics`, `/readyz`, and the report.
/// All lock-free except the fatal-error slot.
#[derive(Debug, Default)]
pub struct ReplicationStats {
    /// Follower: currently connected to the primary's stream.
    pub connected: AtomicBool,
    /// Follower: completed at least one handshake (lag is meaningful).
    pub handshook: AtomicBool,
    /// Follower: refused a divergent history (409, or a shipped record the
    /// local state could not apply). Permanent until re-seeded.
    pub diverged: AtomicBool,
    /// Follower: reconnect attempts after the first connection.
    pub reconnects: AtomicU64,
    /// Follower: records applied through DRed/IVM this run.
    pub records_applied: AtomicU64,
    /// Seq one past the last record applied to served state.
    pub applied_seq: AtomicU64,
    /// Highest primary head seq observed (handshake + shipped frames).
    pub watermark_seq: AtomicU64,
    /// Primary: `GET /wal` streams accepted.
    pub streams_served: AtomicU64,
    /// Primary: frames shipped across all streams.
    pub frames_shipped: AtomicU64,
    /// Follower: checkpoint resyncs completed after a 410 (compacted
    /// history) or a scrub-detected corruption repaired from the primary.
    pub resyncs: AtomicU64,
    /// Set when replication cannot continue (divergence, compacted
    /// history, future record version). The CLI exits nonzero on this.
    fatal: Mutex<Option<String>>,
}

impl ReplicationStats {
    /// Epochs the follower trails its latest knowledge of the primary.
    pub fn lag_epochs(&self) -> u64 {
        self.watermark_seq
            .load(Ordering::SeqCst)
            .saturating_sub(self.applied_seq.load(Ordering::SeqCst))
    }

    /// The unrecoverable-error message, when replication has failed.
    pub fn fatal_error(&self) -> Option<String> {
        self.fatal.lock().clone()
    }

    pub fn set_fatal(&self, diverged: bool, message: String) {
        if diverged {
            self.diverged.store(true, Ordering::SeqCst);
        }
        let mut slot = self.fatal.lock();
        if slot.is_none() {
            *slot = Some(message);
        }
    }

    /// Raise the primary-head watermark (it never moves backwards).
    pub fn observe_watermark(&self, seq: u64) {
        self.watermark_seq.fetch_max(seq, Ordering::SeqCst);
    }

    pub fn to_json(&self, follower: bool) -> Json {
        json!({
            "role": if follower { "follower" } else { "primary" },
            "lag_epochs": self.lag_epochs(),
            "wal_offset": self.applied_seq.load(Ordering::SeqCst),
            "watermark_seq": self.watermark_seq.load(Ordering::SeqCst),
            "reconnects": self.reconnects.load(Ordering::SeqCst),
            "records_applied": self.records_applied.load(Ordering::SeqCst),
            "connected": self.connected.load(Ordering::SeqCst),
            "handshook": self.handshook.load(Ordering::SeqCst),
            "diverged": self.diverged.load(Ordering::SeqCst),
            "streams_served": self.streams_served.load(Ordering::SeqCst),
            "frames_shipped": self.frames_shipped.load(Ordering::SeqCst),
            "resyncs": self.resyncs.load(Ordering::SeqCst),
            "fatal": self.fatal_error(),
        })
    }
}

/// xorshift64* seeded from the OS (via `RandomState`'s per-instance key) —
/// jitter-quality randomness without an RNG dependency.
struct XorShift(u64);

impl XorShift {
    fn seeded() -> XorShift {
        use std::collections::hash_map::RandomState;
        use std::hash::{BuildHasher, Hasher};
        let mut h = RandomState::new().build_hasher();
        h.write_u64(std::process::id() as u64);
        XorShift(h.finish() | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

thread_local! {
    static JITTER_RNG: std::cell::RefCell<XorShift> = std::cell::RefCell::new(XorShift::seeded());
}

/// `Retry-After` seconds with small random jitter: uniform in
/// `[base, 2·base]` so a fleet of shed clients (or reconnecting followers)
/// does not retry in lockstep and re-create the spike that shed them.
pub fn jittered_retry_secs(base: u64) -> u64 {
    let base = base.max(1);
    base + JITTER_RNG.with(|rng| rng.borrow_mut().next()) % (base + 1)
}

fn jitter_duration(rng: &mut XorShift, upto: Duration) -> Duration {
    let millis = upto.as_millis().max(1) as u64;
    Duration::from_millis(rng.next() % millis)
}

// ---------------------------------------------------------------------------
// Primary side: `GET /wal` streaming.
// ---------------------------------------------------------------------------

pub(crate) fn write_chunk(w: &mut impl Write, bytes: &[u8]) -> io::Result<()> {
    write!(w, "{:x}\r\n", bytes.len())?;
    w.write_all(bytes)?;
    w.write_all(b"\r\n")?;
    w.flush()
}

/// Serve one follower's tail of the WAL. Writes the entire response
/// (headers + chunked body) itself; returns whether the exchange was
/// healthy (for the endpoint's error book).
///
/// The WAL mutex is held only to batch-read frames — never across a socket
/// write — so a slow follower cannot block ingest.
pub(crate) fn serve_wal_stream(
    req: &crate::http::Request,
    sock: &mut TcpStream,
    state: &ServeState,
) -> bool {
    let Some(wal) = state.wal_handle() else {
        let _ = Response::error(
            404,
            "replication requires a WAL; start this node with --wal-dir",
        )
        .write_to(sock);
        return false;
    };
    let from = match req.query_param("from").map(str::parse::<u64>) {
        Some(Ok(v)) => v,
        Some(Err(_)) => {
            let _ = Response::error(400, "from: not an integer").write_to(sock);
            return false;
        }
        None => {
            let _ = Response::error(400, "missing required query param `from`").write_to(sock);
            return false;
        }
    };
    let peer_stream = match req.query_param("stream") {
        None => 0,
        Some(raw) => match u64::from_str_radix(raw, 16) {
            Ok(v) => v,
            Err(_) => {
                let _ = Response::error(400, "stream: not a hex id").write_to(sock);
                return false;
            }
        },
    };
    let peer_term = match req.query_param("term") {
        None => 0,
        Some(raw) => match raw.parse::<u64>() {
            Ok(v) => v,
            Err(_) => {
                let _ = Response::error(400, "term: not an integer").write_to(sock);
                return false;
            }
        },
    };

    let (stream_id, base_seq, head) = {
        let w = wal.lock();
        (w.stream_id(), w.base_seq(), w.next_seq())
    };
    let term = state.term();
    if peer_term > term {
        // Fencing: the peer has seen a later election than we have. We are
        // a stale primary — stop taking writes immediately and tell the
        // peer; serving it frames from a dead term would split the brain.
        state.fence(peer_term);
        let _ = Response::error(
            409,
            &format!(
                "stale term: this node is at term {term} but the peer has \
                 seen term {peer_term}; this node is fenced"
            ),
        )
        .with_header("X-DD-Term", peer_term.to_string())
        .write_to(sock);
        return false;
    }
    if peer_stream != 0 && peer_stream != stream_id {
        let _ = Response::error(
            409,
            &format!(
                "divergent histories: this primary's stream is {stream_id:016x}, \
                 the follower adopted {peer_stream:016x}; re-seed the follower"
            ),
        )
        .write_to(sock);
        return false;
    }
    if from > head {
        let _ = Response::error(
            409,
            &format!(
                "divergent histories: follower resumes at seq {from} but this \
                 primary's head is {head}; the follower holds records this \
                 primary never wrote"
            ),
        )
        .write_to(sock);
        return false;
    }
    if from < base_seq {
        let _ = Response::error(
            410,
            &format!(
                "seq {from} was compacted away (oldest retained is {base_seq}); \
                 re-seed the follower from a fresh primary checkpoint"
            ),
        )
        .write_to(sock);
        return false;
    }

    let stats = state.replication();
    stats.streams_served.fetch_add(1, Ordering::SeqCst);
    let head_line = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: application/octet-stream\r\n\
         Transfer-Encoding: chunked\r\nConnection: close\r\n\
         X-DD-Stream: {stream_id:016x}\r\nX-DD-From: {from}\r\nX-DD-End: {head}\r\n\
         X-DD-Term: {term}\r\n\r\n"
    );
    if sock.write_all(head_line.as_bytes()).is_err() {
        return false;
    }

    let window = state.stream_window();
    let mut pos = from;
    let mut last_send = Instant::now();
    loop {
        if state.stop_requested() || state.lifecycle() == Lifecycle::Draining || state.fenced() {
            // Clean end-of-stream: the follower reconnects (with backoff)
            // and finds the restarted primary, or its successor. A fenced
            // node must stop shipping frames from its dead term.
            let _ = sock.write_all(b"0\r\n\r\n");
            return true;
        }
        let batch = { wal.lock().read_frames(pos, window) };
        match batch {
            Ok((bytes, end)) if !bytes.is_empty() => {
                if state.faults_ref().trips(points::REPL_STREAM_CUT) {
                    // Ship a torn prefix of the batch and hang up: the
                    // follower's decoder must refuse the partial frame and
                    // resume from its durable offset.
                    let half = (bytes.len() / 2).max(1);
                    let _ = write_chunk(sock, &bytes[..half]);
                    return false;
                }
                if write_chunk(sock, &bytes).is_err() {
                    return true; // peer hung up; normal
                }
                stats.frames_shipped.fetch_add(end - pos, Ordering::SeqCst);
                pos = end;
                last_send = Instant::now();
            }
            Ok(_) => {
                if last_send.elapsed() >= HEARTBEAT_EVERY {
                    if write_chunk(sock, &[frame::HEARTBEAT]).is_err() {
                        return true;
                    }
                    last_send = Instant::now();
                }
                std::thread::sleep(STREAM_POLL);
            }
            Err(_) => {
                // The window compacted out from under a too-slow follower;
                // end the stream — its reconnect will be told 410.
                let _ = sock.write_all(b"0\r\n\r\n");
                return true;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Follower side: the tailer thread.
// ---------------------------------------------------------------------------

enum TailError {
    /// Reconnect with backoff (network trouble, primary restarting,
    /// corrupt frame on the wire).
    Transient(String),
    /// The primary compacted history below our resume point (410): fetch
    /// its latest checkpoint over `GET /checkpoint` and resume tailing
    /// from the checkpoint's seq instead of dying.
    Resync(String),
    /// Stop replicating (divergence, future versions). The bool marks
    /// true divergence for the stats flag.
    Fatal(bool, String),
}

/// The follower's tail loop: connect → handshake → decode/apply until the
/// stream breaks → back off with jitter → reconnect from the durable
/// offset. Runs until shutdown or a fatal replication error.
pub(crate) fn run_follower(state: Arc<ServeState>, primary: String) {
    let mut rng = XorShift::seeded();
    let mut backoff = BACKOFF_FLOOR;
    let mut first_attempt = true;
    let stats = state.replication();
    while !state.stop_requested() {
        if state.lifecycle() == Lifecycle::Replaying {
            // Local WAL replay must finish (and set the durable offset)
            // before new records are applied on top.
            std::thread::sleep(Duration::from_millis(20));
            continue;
        }
        if state.replication_paused() {
            // Promotion in flight (or completed): idle without touching
            // the stream. The pause is cleared if promotion aborts.
            std::thread::sleep(Duration::from_millis(20));
            continue;
        }
        if !first_attempt {
            stats.reconnects.fetch_add(1, Ordering::SeqCst);
        }
        first_attempt = false;
        let outcome = tail_once(&state, &primary);
        stats.connected.store(false, Ordering::SeqCst);
        match outcome {
            Ok(()) => {
                // Clean end of stream (primary drained). Reset backoff —
                // its successor should be picked up promptly.
                backoff = BACKOFF_FLOOR;
            }
            Err(TailError::Resync(message)) => {
                eprintln!("deepdive serve: {message}; resyncing from the primary's checkpoint");
                match state.resync_from_primary(&primary) {
                    Ok(seq) => {
                        stats.resyncs.fetch_add(1, Ordering::SeqCst);
                        eprintln!(
                            "deepdive serve: resync complete; resuming the tail at seq {seq}"
                        );
                        backoff = BACKOFF_FLOOR;
                        continue; // reconnect immediately from the new offset
                    }
                    Err(e) => {
                        eprintln!(
                            "deepdive serve: checkpoint resync failed ({e}); \
                             retrying with backoff"
                        );
                    }
                }
            }
            Err(TailError::Fatal(diverged, message)) => {
                eprintln!("deepdive serve: replication failed permanently: {message}");
                stats.set_fatal(diverged, message);
                break;
            }
            Err(TailError::Transient(message)) => {
                if !state.stop_requested() {
                    eprintln!(
                        "deepdive serve: replication stream lost ({message}); \
                         reconnecting in ~{}ms",
                        backoff.as_millis()
                    );
                }
            }
        }
        sleep_interruptible(&state, backoff + jitter_duration(&mut rng, backoff));
        backoff = (backoff * 2).min(BACKOFF_CEIL);
    }
    stats.connected.store(false, Ordering::SeqCst);
}

fn sleep_interruptible(state: &ServeState, total: Duration) {
    let deadline = Instant::now() + total;
    while Instant::now() < deadline && !state.stop_requested() {
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn transient(e: impl std::fmt::Display) -> TailError {
    TailError::Transient(e.to_string())
}

/// One connection's worth of tailing. `Ok(())` = the primary ended the
/// stream cleanly (drain); errors say whether to reconnect or give up.
fn tail_once(state: &ServeState, primary: &str) -> Result<(), TailError> {
    let wal = state
        .wal_handle()
        .expect("follower mode requires a WAL (checked at construction)");
    let (my_stream, from, my_term) = {
        let w = wal.lock();
        (w.stream_id(), w.next_seq(), w.term())
    };
    let stats = state.replication();

    let addr = primary
        .trim_start_matches("http://")
        .trim_end_matches('/')
        .to_string();
    let mut sock = TcpStream::connect(&addr).map_err(transient)?;
    sock.set_read_timeout(Some(FOLLOWER_READ_TIMEOUT))
        .map_err(transient)?;
    sock.set_write_timeout(Some(Duration::from_secs(5)))
        .map_err(transient)?;
    let request = format!(
        "GET /wal?from={from}&stream={my_stream:016x}&term={my_term} HTTP/1.1\r\n\
         Host: {addr}\r\nConnection: close\r\n\r\n"
    );
    sock.write_all(request.as_bytes()).map_err(transient)?;

    let mut reader = BufReader::new(sock);
    let (status, headers) = read_response_head(&mut reader).map_err(transient)?;
    match status {
        200 => {}
        409 => {
            let body = response_error_body(&mut reader, &headers);
            if body.contains("stale term") {
                // Not divergence: we fenced a deposed primary that is
                // still answering on the old address. Keep retrying —
                // the operator (or failover tooling) will repoint us.
                return Err(TailError::Transient(format!(
                    "peer is a fenced, stale-term primary (409): {body}"
                )));
            }
            return Err(TailError::Fatal(
                true,
                format!("primary refused our history as divergent (409): {body}"),
            ));
        }
        410 => {
            return Err(TailError::Resync(format!(
                "primary compacted history below seq {from} (410): {}",
                response_error_body(&mut reader, &headers)
            )))
        }
        404 => {
            return Err(TailError::Fatal(
                false,
                "primary has no WAL (it must serve with --wal-dir to be followed)".into(),
            ))
        }
        503 => return Err(TailError::Transient("primary not ready (503)".into())),
        other => return Err(TailError::Transient(format!("primary answered {other}"))),
    }

    let primary_stream = headers
        .iter()
        .find(|(k, _)| k == "x-dd-stream")
        .and_then(|(_, v)| u64::from_str_radix(v, 16).ok())
        .ok_or_else(|| transient("handshake missing X-DD-Stream"))?;
    let head = headers
        .iter()
        .find(|(k, _)| k == "x-dd-end")
        .and_then(|(_, v)| v.parse::<u64>().ok())
        .ok_or_else(|| transient("handshake missing X-DD-End"))?;
    // Term fencing, follower side: adopt a newer term (a promotion
    // happened upstream); refuse frames from an older one (we already
    // follow a newer primary than this peer ever was).
    let primary_term = headers
        .iter()
        .find(|(k, _)| k == "x-dd-term")
        .and_then(|(_, v)| v.parse::<u64>().ok())
        .unwrap_or(0);
    if primary_term < my_term {
        return Err(TailError::Transient(format!(
            "peer serves term {primary_term} but we have seen term {my_term}; \
             refusing frames from a stale term"
        )));
    }
    if primary_term > my_term {
        state.adopt_term(primary_term).map_err(transient)?;
    }

    if my_stream == 0 {
        let mut w = wal.lock();
        // Re-check under the lock (we dropped it since the snapshot).
        if w.stream_id() == 0 {
            w.adopt_stream(primary_stream, from).map_err(transient)?;
        } else if w.stream_id() != primary_stream {
            return Err(TailError::Fatal(
                true,
                format!(
                    "adopted stream {:016x} but the primary serves {primary_stream:016x}",
                    w.stream_id()
                ),
            ));
        }
    } else if my_stream != primary_stream {
        return Err(TailError::Fatal(
            true,
            format!(
                "divergent histories: we adopted stream {my_stream:016x}, \
                 the primary serves {primary_stream:016x}"
            ),
        ));
    }
    stats.observe_watermark(head);
    stats.handshook.store(true, Ordering::SeqCst);
    stats.connected.store(true, Ordering::SeqCst);

    // Decode the endless chunked body. Chunk boundaries are arbitrary;
    // the FrameDecoder reassembles and re-verifies each frame. Each chunk
    // is fully decoded before anything is applied, and the watermark is
    // raised over the whole decoded batch first — so fetched-but-unapplied
    // records are visible as lag while the apply loop works through them.
    let mut decoder = FrameDecoder::new();
    let mut fetched = from;
    loop {
        if state.stop_requested() || state.replication_paused() {
            return Ok(());
        }
        match read_chunk(&mut reader) {
            Ok(None) => return Ok(()), // clean end: primary drained
            Ok(Some(data)) => {
                decoder.feed(&data);
                let mut batch = Vec::new();
                let mut failure = None;
                loop {
                    match decoder.next() {
                        Ok(Some(payload)) => batch.push(payload),
                        Ok(None) => break,
                        Err(FrameError::Corrupt(why)) => {
                            // Never apply from a stream that lied once;
                            // everything durable is still intact, so
                            // reconnect resumes exactly after the last
                            // good record.
                            failure = Some(TailError::Transient(format!(
                                "corrupt frame on the wire ({why}); dropping the \
                                 connection and resuming from the durable offset"
                            )));
                            break;
                        }
                        Err(e @ FrameError::FutureVersion(_)) => {
                            failure = Some(TailError::Fatal(false, e.to_string()));
                            break;
                        }
                    }
                }
                fetched += batch.len() as u64;
                stats.observe_watermark(fetched);
                // The records before the bad frame passed their checksums;
                // apply them so the reconnect resumes past them.
                for payload in &batch {
                    apply_one(state, payload)?;
                }
                if let Some(failure) = failure {
                    return Err(failure);
                }
            }
            Err(e) => return Err(transient(format!("stream cut: {e}"))),
        }
    }
}

/// Durably append one replicated record, then apply it. Apply failures are
/// divergence (the primary applied this record; a follower that cannot is
/// no longer a replica); append failures are local-disk transients.
fn apply_one(state: &ServeState, payload: &[u8]) -> Result<(), TailError> {
    if state.faults_ref().trips(points::REPL_APPLY_STALL) {
        std::thread::sleep(Duration::from_millis(50));
    }
    match state.ingest_replicated(payload) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == io::ErrorKind::InvalidData => Err(TailError::Fatal(
            true,
            format!("replicated record failed to apply locally: {e}"),
        )),
        Err(e) => Err(transient(format!(
            "could not persist replicated record: {e}"
        ))),
    }
}

/// Parse an HTTP/1.1 response head: status line + headers (names
/// lower-cased) up to the blank line.
fn read_response_head(r: &mut impl BufRead) -> io::Result<(u16, Vec<(String, String)>)> {
    let status_line = read_crlf_line(r)?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad status line: {status_line:?}"),
            )
        })?;
    let mut headers = Vec::new();
    loop {
        let line = read_crlf_line(r)?;
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
        if headers.len() > 64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "too many response headers",
            ));
        }
    }
    Ok((status, headers))
}

/// Best-effort read of an error response's JSON body (Content-Length
/// framed) for a useful fatal message.
fn response_error_body(r: &mut impl BufRead, headers: &[(String, String)]) -> String {
    let len = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok())
        .unwrap_or(0)
        .min(16 * 1024);
    let mut body = vec![0u8; len];
    if r.read_exact(&mut body).is_err() {
        return "<unreadable body>".into();
    }
    let text = String::from_utf8_lossy(&body).into_owned();
    match serde_json::from_str(&text) {
        Ok(v) => v
            .get("error")
            .and_then(Json::as_str)
            .unwrap_or("<no error field>")
            .to_string(),
        Err(_) => text,
    }
}

fn read_crlf_line(r: &mut impl BufRead) -> io::Result<String> {
    let mut line = String::new();
    let n = r.read_line(&mut line)?;
    if n == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed mid-line",
        ));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

/// Read one transfer-encoding chunk. `Ok(None)` is the zero-length
/// terminator (clean end of stream).
fn read_chunk(r: &mut impl BufRead) -> io::Result<Option<Vec<u8>>> {
    let size_line = read_crlf_line(r)?;
    let size = usize::from_str_radix(size_line.trim(), 16).map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad chunk size line: {size_line:?}"),
        )
    })?;
    if size == 0 {
        // Trailing CRLF after the last-chunk marker (best effort — the
        // peer may just close).
        let mut crlf = [0u8; 2];
        let _ = r.read_exact(&mut crlf);
        return Ok(None);
    }
    if size > 64 * 1024 * 1024 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "chunk over the 64 MiB cap",
        ));
    }
    let mut data = vec![0u8; size];
    r.read_exact(&mut data)?;
    let mut crlf = [0u8; 2];
    r.read_exact(&mut crlf)?;
    Ok(Some(data))
}

// ---------------------------------------------------------------------------
// Checkpoint resync + control-plane HTTP helpers.
// ---------------------------------------------------------------------------

fn connect_peer(peer: &str, read_timeout: Duration) -> io::Result<(String, TcpStream)> {
    let addr = peer
        .trim_start_matches("http://")
        .trim_end_matches('/')
        .to_string();
    let sock = TcpStream::connect(&addr)?;
    sock.set_read_timeout(Some(read_timeout))?;
    sock.set_write_timeout(Some(Duration::from_secs(5)))?;
    Ok((addr, sock))
}

fn header_value<'h>(headers: &'h [(String, String)], name: &str) -> Option<&'h str> {
    headers
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

/// Fetch the primary's current checkpoint bundle (`GET /checkpoint`) and
/// install it into `dest`, hash-verifying every file and writing each via
/// tmp + fsync + rename so a cut mid-transfer never leaves a torn
/// artifact. Returns the number of files installed.
///
/// The bundle is a sequence of text frames over a Content-Length body:
///
/// ```text
/// FILE <name> <len> <fnv1a64-hex>\n<len raw bytes>\n
/// ...
/// END\n
/// ```
pub(crate) fn fetch_checkpoint_bundle(primary: &str, dest: &std::path::Path) -> io::Result<usize> {
    let (addr, mut sock) = connect_peer(primary, Duration::from_secs(30))?;
    let request = format!("GET /checkpoint HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    sock.write_all(request.as_bytes())?;
    let mut reader = BufReader::new(sock);
    let (status, headers) = read_response_head(&mut reader)?;
    if status != 200 {
        return Err(io::Error::other(format!(
            "primary answered {status} to GET /checkpoint: {}",
            response_error_body(&mut reader, &headers)
        )));
    }

    let bad = |why: String| io::Error::new(io::ErrorKind::InvalidData, why);
    let mut installed = 0usize;
    loop {
        let line = read_crlf_line(&mut reader)?;
        if line == "END" {
            break;
        }
        let mut parts = line.split_whitespace();
        let (tag, name, len, hash) = (
            parts.next().unwrap_or(""),
            parts.next().unwrap_or(""),
            parts.next().unwrap_or(""),
            parts.next().unwrap_or(""),
        );
        if tag != "FILE" {
            return Err(bad(format!("bad bundle frame header: {line:?}")));
        }
        if name.is_empty()
            || name.contains('/')
            || name.contains('\\')
            || name.contains("..")
            || name.starts_with('.')
        {
            return Err(bad(format!("unsafe bundle file name: {name:?}")));
        }
        let len: usize = len
            .parse()
            .map_err(|_| bad(format!("bad bundle length in {line:?}")))?;
        if len > 256 * 1024 * 1024 {
            return Err(bad(format!("bundle file {name} over the 256 MiB cap")));
        }
        let want = u64::from_str_radix(hash, 16)
            .map_err(|_| bad(format!("bad bundle hash in {line:?}")))?;
        let mut content = vec![0u8; len];
        reader.read_exact(&mut content)?;
        let mut nl = [0u8; 1];
        reader.read_exact(&mut nl)?;
        if nl[0] != b'\n' {
            return Err(bad(format!("bundle frame for {name} missing terminator")));
        }
        let got = fnv1a64(&content);
        if got != want {
            return Err(bad(format!(
                "bundle file {name} failed its hash check \
                 (got {got:016x}, want {want:016x})"
            )));
        }
        let tmp = dest.join(format!(".resync-{name}.tmp"));
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&content)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, dest.join(name))?;
        installed += 1;
    }
    if let Ok(dir) = std::fs::File::open(dest) {
        let _ = dir.sync_all();
    }
    Ok(installed)
}

/// Minimal one-shot HTTP request returning `(status, parsed JSON body)`.
/// Used by the promote CLI, the scrubber's cross-node fingerprint check,
/// and the failover tests — all against this crate's own server.
pub fn http_request_json(method: &str, peer: &str, path: &str) -> io::Result<(u16, Json)> {
    let (addr, mut sock) = connect_peer(peer, Duration::from_secs(30))?;
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\
         Content-Length: 0\r\n\r\n"
    );
    sock.write_all(request.as_bytes())?;
    let mut reader = BufReader::new(sock);
    let (status, headers) = read_response_head(&mut reader)?;
    let body = match header_value(&headers, "content-length").and_then(|v| v.parse::<usize>().ok())
    {
        Some(len) => {
            let mut buf = vec![0u8; len.min(16 * 1024 * 1024)];
            reader.read_exact(&mut buf)?;
            buf
        }
        None => {
            let mut buf = Vec::new();
            reader.read_to_end(&mut buf)?;
            buf
        }
    };
    let text = String::from_utf8_lossy(&body);
    Ok((status, serde_json::from_str(&text).unwrap_or(Json::Null)))
}

/// Ask the node at `peer` to promote itself to primary (`POST /promote`).
/// Returns the HTTP status and response body; 200 with `"promoted": true`
/// means the node now serves writes under a new term.
pub fn promote(peer: &str, force: bool) -> io::Result<(u16, Json)> {
    let path = if force {
        "/promote?force=1"
    } else {
        "/promote"
    };
    http_request_json("POST", peer, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jittered_retry_stays_in_range() {
        for _ in 0..100 {
            let v = jittered_retry_secs(1);
            assert!((1..=2).contains(&v), "{v}");
            let v = jittered_retry_secs(4);
            assert!((4..=8).contains(&v), "{v}");
        }
        // Jitter actually varies (not a constant offset).
        let draws: std::collections::HashSet<u64> =
            (0..64).map(|_| jittered_retry_secs(8)).collect();
        assert!(draws.len() > 1, "jitter must vary across draws");
    }

    #[test]
    fn chunk_reader_round_trips() {
        let mut wire = Vec::new();
        wire.extend_from_slice(b"5\r\nhello\r\n");
        wire.extend_from_slice(b"1\r\n\x00\r\n");
        wire.extend_from_slice(b"0\r\n\r\n");
        let mut r = std::io::BufReader::new(&wire[..]);
        assert_eq!(read_chunk(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_chunk(&mut r).unwrap().unwrap(), vec![0u8]);
        assert!(read_chunk(&mut r).unwrap().is_none());
    }

    #[test]
    fn response_head_parses_status_and_headers() {
        let raw = b"HTTP/1.1 409 Conflict\r\nContent-Type: application/json\r\n\
                    X-DD-Stream: 00000000deadbeef\r\n\r\n";
        let mut r = std::io::BufReader::new(&raw[..]);
        let (status, headers) = read_response_head(&mut r).unwrap();
        assert_eq!(status, 409);
        assert_eq!(
            headers
                .iter()
                .find(|(k, _)| k == "x-dd-stream")
                .map(|(_, v)| v.as_str()),
            Some("00000000deadbeef")
        );
    }
}
