//! The daemon: a thread-pooled TCP accept loop routing requests against the
//! current [`ServeSnapshot`], plus the single-writer ingest path.
//!
//! Ownership layout:
//!
//! * Readers (`GET /relations`, `/marginals`, `/healthz`, `/readyz`,
//!   `/metrics`) touch only the snapshot cell and atomics — they never take
//!   the writer lock, so queries stay fast while an ingest is re-grounding.
//! * `POST /documents` serializes through `Mutex<DeepDive>`: append the
//!   validated body to the write-ahead log (fsync'd — the ack promises
//!   durability), route the new rows through incremental view maintenance
//!   and DRed (§4.1) so only the touched region re-grounds, run a bounded
//!   Gibbs refresh sized to the grounding delta (§4.2), then publish the
//!   next epoch with one pointer swap. A concurrent reader sees epoch N or
//!   N+1, never a mixture.
//!
//! Robustness posture (crash + overload):
//!
//! * **Durability.** Startup restores the checkpoint, then replays the WAL
//!   through the same ingest path; `/readyz` reports 503 until the replayed
//!   epoch swaps in. A successful checkpoint flush (startup replay or
//!   graceful drain) truncates the WAL.
//! * **Admission control.** At most `max_inflight` connections are queued
//!   or being served; beyond that the accept loop sheds with
//!   `503 + Retry-After` instead of queuing unboundedly. `POST /documents`
//!   additionally passes a token-bucket rate limit (429). Per-connection
//!   read/write timeouts plus an overall request deadline cut slowloris and
//!   stalled-mid-body peers with 408.
//! * **Lifecycle.** `graceful_shutdown` stops accepting, drains in-flight
//!   requests up to the drain budget, flushes a final checkpoint, and
//!   marks the WAL checkpointed; `abort` drops everything on the floor
//!   (the chaos tests' in-process `kill -9`).
//! * **Replication.** A primary streams its WAL over `GET /wal`; a node
//!   started with [`ServeConfig::follow`] tails that stream, persists each
//!   record to its own WAL, applies it through the same DRed/IVM path, and
//!   serves reads at observable epoch lag while answering `POST /documents`
//!   with 405. See [`crate::replication`] for the protocol.

use crate::http::{ParseError, ParseLimits, Request, Response};
use crate::metrics::ServeMetrics;
use crate::replication::{self, jittered_retry_secs, ReplicationStats};
use crate::snapshot::{ServeSnapshot, SnapshotCell};
use crate::subscriptions::{
    render_snapshot_frame, value_to_json, EpochDelta, IvmTrace, RowFilter, Subscriber,
    SubscriptionRegistry, SubscriptionSpec, RESERVED_QUERY_KEYS,
};
use crate::wal::{Wal, WalOptions, WalRecovery, DEFAULT_RETAIN_RECORDS, DEFAULT_SEGMENT_BYTES};
use deepdive_core::faults::{is_durable_storage_error, points, FaultInjector};
use deepdive_core::{Checkpoint, CheckpointTracker, DeepDive};
use deepdive_inference::{bounded_options, RefreshBudget};
use deepdive_sampler::GibbsOptions;
use deepdive_storage::{
    value_from_tsv, BaseChange, ExecutionContext, MemoryBudget, Row, Schema, Value as DbValue,
    ValueType,
};
use parking_lot::Mutex;
use serde_json::{json, Map, Value as Json};
use std::collections::HashSet;
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; `127.0.0.1:0` picks a free port (see
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads answering requests (the accept loop is separate).
    pub workers: usize,
    /// Default (and maximum) rows per page on list endpoints.
    pub page_limit: usize,
    /// Gibbs budget for post-ingest refreshes.
    pub refresh: RefreshBudget,
    /// Where the ingest write-ahead log lives. `None` disables durability:
    /// ingests are acknowledged from memory only (the pre-WAL behavior,
    /// still right for exploratory serving over a scratch checkpoint).
    pub wal_dir: Option<PathBuf>,
    /// Where the final checkpoint is flushed on graceful shutdown (and
    /// after startup replay). Normally the `--resume` run directory.
    pub checkpoint_dir: Option<PathBuf>,
    /// Admission bound: connections queued or in-flight beyond this are
    /// shed with `503 + Retry-After`.
    pub max_inflight: usize,
    /// Token-bucket rate limit on `POST /documents`, in requests/second
    /// (burst = one second's worth). `None` = unlimited.
    pub ingest_rate: Option<f64>,
    /// How long a graceful shutdown waits for in-flight requests.
    pub drain: Duration,
    /// Per-syscall socket read timeout (each blocking read).
    pub read_timeout: Duration,
    /// Per-syscall socket write timeout (a peer not reading its response).
    pub write_timeout: Duration,
    /// Overall budget for reading one request (header + body); a peer
    /// dribbling bytes slower than this is cut with 408.
    pub request_deadline: Duration,
    /// Fault injection for chaos tests (fsync failures, torn WAL writes,
    /// replay stalls); defaults to a never-tripping injector.
    pub faults: Arc<FaultInjector>,
    /// Follow this primary (`http://host:port`) as a read-only replica:
    /// tail its WAL stream, apply every record locally, answer
    /// `POST /documents` with 405. Requires [`ServeConfig::wal_dir`] — the
    /// follower persists its own WAL copy so a crash resumes from the last
    /// durable offset without re-fetching history.
    pub follow: Option<String>,
    /// A follower whose epoch lag exceeds this fails `/readyz` (503) until
    /// it catches back up; load balancers route around stale replicas.
    pub max_lag_epochs: u64,
    /// Largest batch of WAL frame bytes shipped per chunk on `GET /wal`.
    pub stream_window: usize,
    /// Checkpointed records kept in the WAL for followers to fetch before
    /// compaction trims them (compacted-away offsets answer 410).
    pub wal_retain: u64,
    /// Group-commit linger window: how long the committer thread collects
    /// concurrent `POST /documents` bodies before fsyncing them as one WAL
    /// batch. `Duration::ZERO` disables group commit entirely (every
    /// request pays its own fsync — the pre-batching behavior, and the
    /// bench baseline).
    pub linger: Duration,
    /// WAL segment rotation threshold: a segment that reaches this many
    /// payload bytes is sealed and a new one started. Compaction later
    /// unlinks whole checkpointed segments past the retention horizon.
    pub wal_segment_bytes: u64,
    /// Full-rewrite cadence for incremental checkpoints: once this many
    /// database deltas are chained onto the base, the next flush rewrites
    /// the base and resets the chain. 0 = never (the first flush is always
    /// a full rewrite regardless).
    pub checkpoint_full_every: u64,
    /// How often the background flusher checkpoints pending WAL records and
    /// compacts checkpointed segments. Not a CLI flag; tests shrink it.
    pub flush_interval: Duration,
    /// Most live subscriptions registered at once; registration beyond this
    /// answers 429.
    pub max_subscriptions: usize,
    /// Byte budget for each subscriber's pending-frame queue. A consumer
    /// that falls further behind than this is shed (queue cleared, `lagged`
    /// frame, snapshot re-base) rather than allowed to block ingest.
    pub sub_queue_bytes: usize,
    /// Anti-entropy scrub cadence: how often the background scrubber
    /// re-verifies every WAL frame checksum and the whole checkpoint chain,
    /// quarantining and repairing what fails. `Duration::ZERO` (the
    /// default) disables the scrubber.
    pub scrub_interval: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            page_limit: 100,
            refresh: RefreshBudget::default(),
            wal_dir: None,
            checkpoint_dir: None,
            max_inflight: 64,
            ingest_rate: None,
            drain: Duration::from_secs(5),
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            request_deadline: Duration::from_secs(15),
            faults: Arc::new(FaultInjector::new()),
            follow: None,
            max_lag_epochs: 16,
            stream_window: 1 << 20,
            wal_retain: DEFAULT_RETAIN_RECORDS,
            linger: Duration::from_millis(2),
            wal_segment_bytes: DEFAULT_SEGMENT_BYTES,
            checkpoint_full_every: 16,
            flush_interval: Duration::from_secs(5),
            max_subscriptions: 64,
            sub_queue_bytes: 1 << 20,
            scrub_interval: Duration::ZERO,
        }
    }
}

/// Where the daemon is in its life: replaying the WAL (serving the
/// pre-replay epoch, not ready), ready, or draining for shutdown.
/// `/healthz` stays 200 throughout — liveness and readiness are distinct.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lifecycle {
    Replaying,
    Ready,
    Draining,
}

impl Lifecycle {
    pub fn as_str(&self) -> &'static str {
        match self {
            Lifecycle::Replaying => "replaying",
            Lifecycle::Ready => "ready",
            Lifecycle::Draining => "draining",
        }
    }

    fn from_u8(v: u8) -> Lifecycle {
        match v {
            0 => Lifecycle::Replaying,
            2 => Lifecycle::Draining,
            _ => Lifecycle::Ready,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            Lifecycle::Replaying => 0,
            Lifecycle::Ready => 1,
            Lifecycle::Draining => 2,
        }
    }
}

/// Classic token bucket: `rate` tokens/second refill, burst of one
/// second's worth (at least 1). `try_take` either spends a token or says
/// how long until one is available.
struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    fn new(rate: f64) -> TokenBucket {
        let burst = rate.max(1.0);
        TokenBucket {
            rate: rate.max(f64::MIN_POSITIVE),
            burst,
            tokens: burst,
            last: Instant::now(),
        }
    }

    fn try_take(&mut self) -> Result<(), u64> {
        let now = Instant::now();
        self.tokens =
            (self.tokens + now.duration_since(self.last).as_secs_f64() * self.rate).min(self.burst);
        self.last = now;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            Ok(())
        } else {
            Err(((1.0 - self.tokens) / self.rate).ceil().max(1.0) as u64)
        }
    }
}

/// WAL bookkeeping surfaced in `/metrics` and the replay report.
#[derive(Debug, Default, Clone)]
struct WalStats {
    torn_tail_recovered: bool,
    torn_bytes: u64,
    replayed_records: u64,
    replay_skipped: u64,
}

/// Group-commit counters (monotonic; `/metrics` derives `avg_batch` and
/// `fsyncs_saved` from them).
#[derive(Debug, Default)]
struct GroupCommitStats {
    /// WAL batches durably committed (one fsync each).
    batches: AtomicU64,
    /// Records across those batches.
    records: AtomicU64,
}

/// Incremental-checkpoint bookkeeping surfaced in `/metrics` and
/// `report.json` (cumulative except `chain_len`, which is the current
/// chain depth).
#[derive(Debug, Default, Clone)]
struct CheckpointStats {
    flushes: u64,
    full_rewrites: u64,
    artifacts_written: u64,
    artifacts_skipped: u64,
    chain_len: u64,
}

/// One ingest handed to the committer thread: the raw body plus the
/// channel its worker is parked on awaiting the batch's fate.
struct CommitRequest {
    body: Vec<u8>,
    reply: mpsc::Sender<Response>,
}

/// Everything a request handler can reach, shared across workers.
pub struct ServeState {
    snapshot: SnapshotCell,
    /// The single writer. Only `POST /documents`, WAL replay, and the final
    /// checkpoint flush lock it.
    writer: Mutex<DeepDive>,
    pub metrics: ServeMetrics,
    budget: Arc<MemoryBudget>,
    ctx: Arc<ExecutionContext>,
    /// Relations derived by rules — not ingestible.
    derived: HashSet<String>,
    /// Full-quality inference options the run was configured with (the
    /// refresh derives bounded options from these).
    inference: GibbsOptions,
    refresh: RefreshBudget,
    page_limit: usize,
    started: Instant,
    lifecycle: AtomicU8,
    /// Connections admitted (queued or being served) right now.
    inflight: AtomicUsize,
    max_inflight: usize,
    ingest_bucket: Option<Mutex<TokenBucket>>,
    wal: Option<Mutex<Wal>>,
    wal_stats: Mutex<WalStats>,
    wal_dir: Option<PathBuf>,
    checkpoint_dir: Option<PathBuf>,
    /// Group-commit ingress: workers send [`CommitRequest`]s here and park
    /// on the reply. `None` until the committer thread spawns (and again
    /// once shutdown tears it down — senders observing a closed channel
    /// fall back to the inline single-request path).
    committer: Mutex<Option<mpsc::Sender<CommitRequest>>>,
    /// Group-commit linger window (the committer's batching horizon).
    linger: Duration,
    group_commit: GroupCommitStats,
    /// Dirty-tracking state threaded between incremental checkpoint
    /// flushes; lives beside the writer because a flush holds the writer
    /// lock anyway.
    ckpt_tracker: Mutex<CheckpointTracker>,
    ckpt_stats: Mutex<CheckpointStats>,
    checkpoint_full_every: u64,
    faults: Arc<FaultInjector>,
    read_timeout: Duration,
    write_timeout: Duration,
    request_deadline: Duration,
    /// The primary this node follows (`None` = it started as a primary).
    /// The *current* role is [`ServeState::is_follower`] — `POST /promote`
    /// flips a follower to primary at runtime.
    follow: Option<String>,
    max_lag_epochs: u64,
    stream_window: usize,
    /// Set by shutdown/abort; unblocks `GET /wal` streamers and the
    /// follower's tailer, which otherwise run forever.
    stopping: AtomicBool,
    replication: ReplicationStats,
    /// Live subscriptions and the delta router that feeds them.
    subs: SubscriptionRegistry,
    /// This node's fencing term — the election counter persisted in the
    /// WAL v3 header. Mirrors `Wal::term` so handlers read it lock-free.
    term: AtomicU64,
    /// Dynamic role. Starts as `follow.is_some()`; a successful
    /// `POST /promote` flips it to false.
    follower: AtomicBool,
    /// Pauses just the follower's tailer (promotion in flight). Cleared
    /// again if the promotion aborts; permanent once promoted.
    repl_paused: AtomicBool,
    /// Set when a peer's higher term revealed this node is a deposed
    /// primary: writes are refused, `GET /wal` streams end, `/readyz`
    /// answers "fenced".
    fenced: Mutex<Option<String>>,
    /// Set when the WAL or checkpoint hit a durable-storage failure
    /// (ENOSPC/EIO): writes are refused and the CLI exits 8.
    storage_fatal: Mutex<Option<String>>,
    /// Set when the scrubber found corruption it could not repair: the
    /// node degrades to read-only and `/readyz` answers "corrupt".
    corrupt: Mutex<Option<String>>,
    /// Anti-entropy scrubber books (`/metrics`, report.json).
    scrub: ScrubStats,
}

/// Scrub counters: passes run, corruptions found (WAL frames, checkpoint
/// artifacts, cross-node fingerprint mismatches), and repairs completed.
#[derive(Debug, Default)]
pub struct ScrubStats {
    pub runs: AtomicU64,
    pub corrupt_found: AtomicU64,
    pub repaired: AtomicU64,
}

impl ServeState {
    /// The currently served snapshot (for tests and the CLI banner).
    pub fn current(&self) -> Arc<ServeSnapshot> {
        self.snapshot.load()
    }

    pub fn lifecycle(&self) -> Lifecycle {
        Lifecycle::from_u8(self.lifecycle.load(Ordering::SeqCst))
    }

    fn set_lifecycle(&self, l: Lifecycle) {
        self.lifecycle.store(l.as_u8(), Ordering::SeqCst);
    }

    /// Atomically transition `from` → `to`; false when the state had
    /// already moved on. Replay uses this for Replaying → Ready so it can
    /// never clobber a `Draining` set by a concurrent graceful shutdown
    /// (which would reopen `/readyz` and the ingest gate mid-drain).
    fn lifecycle_cas(&self, from: Lifecycle, to: Lifecycle) -> bool {
        self.lifecycle
            .compare_exchange(from.as_u8(), to.as_u8(), Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    /// Current admission queue depth (queued + in-flight connections).
    pub fn queue_depth(&self) -> usize {
        self.inflight.load(Ordering::SeqCst)
    }

    /// `(records, bytes)` currently in the WAL; zeros when disabled.
    /// `records` counts *pending* records (appended since the last
    /// checkpoint mark) — checkpointed records retained for replication
    /// show up in `physical_records` under `/metrics` instead.
    pub fn wal_gauges(&self) -> (u64, u64) {
        match &self.wal {
            Some(wal) => {
                let wal = wal.lock();
                (wal.records(), wal.bytes())
            }
            None => (0, 0),
        }
    }

    /// True when this node tails a primary instead of taking writes.
    /// Dynamic: a follower stops being one the moment `POST /promote`
    /// succeeds.
    pub fn is_follower(&self) -> bool {
        self.follower.load(Ordering::SeqCst)
    }

    /// The node's current fencing term (0 = no WAL / never elected).
    pub fn term(&self) -> u64 {
        self.term.load(Ordering::SeqCst)
    }

    /// `"primary"` or `"follower"`, for status bodies.
    pub fn role_str(&self) -> &'static str {
        if self.is_follower() {
            "follower"
        } else {
            "primary"
        }
    }

    /// Adopt a term learned from a peer (never lowers). Persists it in the
    /// WAL manifest so a restart still refuses stale-term primaries.
    pub(crate) fn adopt_term(&self, term: u64) -> io::Result<()> {
        if let Some(wal) = &self.wal {
            wal.lock().set_term(term)?;
        }
        self.term.fetch_max(term, Ordering::SeqCst);
        Ok(())
    }

    /// A peer proved a newer term exists: this node is a deposed primary.
    /// Refuse writes from here on — acking them would split the brain.
    pub(crate) fn fence(&self, peer_term: u64) {
        let mut slot = self.fenced.lock();
        if slot.is_none() {
            let msg = format!(
                "fenced: a peer has seen term {peer_term}, newer than ours ({}); this \
                 deposed primary refuses writes — restart it with --follow pointing \
                 at the new primary",
                self.term()
            );
            eprintln!("deepdive serve: {msg}");
            *slot = Some(msg);
        }
    }

    pub(crate) fn fenced(&self) -> bool {
        self.fenced.lock().is_some()
    }

    pub fn fenced_reason(&self) -> Option<String> {
        self.fenced.lock().clone()
    }

    /// True while the tailer must stay off the stream (promote in flight,
    /// or this node was promoted).
    pub(crate) fn replication_paused(&self) -> bool {
        self.repl_paused.load(Ordering::SeqCst)
    }

    /// The durable-storage failure (ENOSPC/EIO) that stopped writes, when
    /// one happened. The CLI maps this to exit 8.
    pub fn storage_fatal_error(&self) -> Option<String> {
        self.storage_fatal.lock().clone()
    }

    /// Classify an I/O error from the WAL or checkpoint path: a
    /// durable-storage failure (disk full, I/O error) latches the node
    /// into refusing writes, and the CLI exits 8.
    fn note_storage_error(&self, e: &io::Error, what: &str) {
        if !is_durable_storage_error(e) {
            return;
        }
        let mut slot = self.storage_fatal.lock();
        if slot.is_none() {
            let msg = format!("durable storage failure during {what}: {e}");
            eprintln!("deepdive serve: FATAL: {msg}");
            *slot = Some(msg);
        }
    }

    /// The unrepairable corruption that degraded this node to read-only,
    /// when the scrubber found one.
    pub fn corrupt_reason(&self) -> Option<String> {
        self.corrupt.lock().clone()
    }

    fn set_corrupt(&self, why: String) {
        let mut slot = self.corrupt.lock();
        if slot.is_none() {
            eprintln!(
                "deepdive serve: scrub: degrading to read-only: {why} \
                 (reads keep serving the last good epoch)"
            );
            *slot = Some(why);
        }
    }

    /// Why writes are currently refused, if they are (fencing, unrepaired
    /// corruption, or a durable-storage failure).
    fn write_block_reason(&self) -> Option<String> {
        self.fenced_reason()
            .or_else(|| self.corrupt_reason())
            .or_else(|| self.storage_fatal_error())
    }

    pub(crate) fn checkpoint_dir(&self) -> Option<&std::path::Path> {
        self.checkpoint_dir.as_deref()
    }

    /// The scrub counters as the JSON gauge object `/metrics` and
    /// `report.json` share.
    fn scrub_json(&self) -> Json {
        json!({
            "runs": self.scrub.runs.load(Ordering::SeqCst),
            "corrupt_found": self.scrub.corrupt_found.load(Ordering::SeqCst),
            "repaired": self.scrub.repaired.load(Ordering::SeqCst),
        })
    }

    /// Run one scrub pass right now (tests; the scrubber thread calls the
    /// same path on its interval).
    pub fn scrub_now(&self) {
        scrub_once(self);
    }

    /// Re-seed this node's entire state from the primary's live checkpoint:
    /// fetch the bundle (hash-verified, tmp+rename installed), verify the
    /// chain, load it over the served state, publish the restored epoch,
    /// and rewrite the local WAL to resume at the checkpoint's position.
    /// Returns the seq the tail resumes from.
    ///
    /// This is the 410 (compacted-history) recovery path and the
    /// follower's scrub-repair path.
    pub(crate) fn resync_from_primary(&self, primary: &str) -> io::Result<u64> {
        let dir = self.checkpoint_dir.as_ref().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                "checkpoint resync requires a checkpoint dir (nowhere to \
                 install the primary's checkpoint); re-seed this follower manually",
            )
        })?;
        let files = replication::fetch_checkpoint_bundle(primary, dir)?;
        let ckpt = Checkpoint::new(dir.clone()).map_err(io::Error::other)?;
        ckpt.verify().map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("fetched checkpoint failed verification: {e}"),
            )
        })?;
        let (stream_id, seq, term) = read_wal_position(Some(dir)).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                "fetched checkpoint carries no wal_position.json; the primary \
                 must flush at least one checkpoint with a WAL attached",
            )
        })?;
        {
            let mut dd = self.writer.lock();
            dd.load_checkpoint(&ckpt).map_err(io::Error::other)?;
            *self.ckpt_tracker.lock() = CheckpointTracker::default();
            self.publish_epoch(&dd, 1, &self.inference, IvmTrace::default());
            let new_term = term.max(self.term());
            if let Some(wal) = &self.wal {
                wal.lock().reset_stream(stream_id, seq, new_term)?;
            }
            self.term.fetch_max(new_term, Ordering::SeqCst);
            self.replication.applied_seq.store(seq, Ordering::SeqCst);
            self.replication.observe_watermark(seq);
        }
        eprintln!(
            "deepdive serve: installed {files} checkpoint file(s) from the primary; \
             local WAL reset to stream {stream_id:016x} seq {seq}"
        );
        Ok(seq)
    }

    /// The `group_commit` gauge object shared by `/metrics` and
    /// `report.json`: committed batches, mean records per batch, and the
    /// fsyncs batching avoided versus one-fsync-per-request.
    fn group_commit_json(&self) -> Json {
        let batches = self.group_commit.batches.load(Ordering::Relaxed);
        let records = self.group_commit.records.load(Ordering::Relaxed);
        json!({
            "batches": batches,
            "avg_batch": if batches > 0 {
                records as f64 / batches as f64
            } else {
                0.0
            },
            "fsyncs_saved": records.saturating_sub(batches),
        })
    }

    /// Replication books (`/metrics`, `/readyz`, the CLI's divergence exit).
    pub fn replication(&self) -> &ReplicationStats {
        &self.replication
    }

    /// The live-subscription registry (tests and `/metrics`).
    pub fn subscriptions(&self) -> &SubscriptionRegistry {
        &self.subs
    }

    /// Capture and publish the next snapshot — the single epoch swap every
    /// ingest path funnels through — and fan the exact delta out to live
    /// subscribers. The diff against the outgoing snapshot is computed only
    /// while subscribers exist, and routing happens strictly *after* the
    /// swap: a consumer that re-bases on `snapshot.load()` is therefore
    /// always at-or-ahead of any frame it may have missed while shed.
    ///
    /// Callers hold the writer lock, which orders concurrent publications
    /// (and thus frame epochs) totally. Returns `(epoch, fingerprint)`.
    fn publish_epoch(
        &self,
        dd: &DeepDive,
        advance: u64,
        opts: &GibbsOptions,
        trace: IvmTrace,
    ) -> (u64, u64) {
        let prev = self.snapshot.load();
        let epoch = prev.epoch + advance;
        let snapshot = ServeSnapshot::capture(dd, epoch, opts);
        let fingerprint = snapshot.fingerprint;
        let delta = self
            .subs
            .is_active()
            .then(|| EpochDelta::diff(&prev, &snapshot, trace));
        self.snapshot.store(snapshot);
        if let Some(delta) = delta {
            self.subs.route(&delta);
        }
        (epoch, fingerprint)
    }

    pub(crate) fn wal_handle(&self) -> Option<&Mutex<Wal>> {
        self.wal.as_ref()
    }

    pub(crate) fn stop_requested(&self) -> bool {
        self.stopping.load(Ordering::SeqCst)
    }

    pub(crate) fn faults_ref(&self) -> &FaultInjector {
        &self.faults
    }

    pub(crate) fn stream_window(&self) -> usize {
        self.stream_window
    }

    pub(crate) fn max_lag_epochs(&self) -> u64 {
        self.max_lag_epochs
    }

    /// Apply one record shipped from the primary: durably append it to the
    /// local WAL (the resume offset moves only over fsync'd records), then
    /// run it through the same validate → DRed/IVM → bounded-refresh →
    /// snapshot-swap path a live `POST /documents` takes — which is what
    /// makes a caught-up follower's marginals bit-identical to the
    /// primary's. `InvalidData` means the record can never apply here
    /// (divergence); other errors are local-disk transients.
    ///
    /// Lock order: wal (append, released), then writer — the same order as
    /// `post_documents` and `flush_checkpoint`, so the three can interleave
    /// but never deadlock.
    pub(crate) fn ingest_replicated(&self, payload: &[u8]) -> io::Result<()> {
        let wal = self.wal.as_ref().expect("follower mode requires a WAL");
        let seq = match wal.lock().append(payload) {
            Ok(seq) => seq,
            Err(e) => {
                self.note_storage_error(&e, "replicated WAL append");
                return Err(e);
            }
        };
        let mut dd = self.writer.lock();
        let changes = parse_ingest_body(&dd, &self.derived, payload).map_err(|resp| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("replicated record failed validation: {}", resp.body),
            )
        })?;
        let (delta, result) = dd.apply_base_changes_traced(changes).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("DRed/IVM refused: {e}"))
        })?;
        let mut trace = IvmTrace::default();
        trace.absorb(&result);
        let opts = bounded_options(&self.inference, &self.refresh, delta.total());
        self.publish_epoch(&dd, 1, &opts, trace);
        // Advance the applied offset while still holding the writer lock so
        // a concurrent checkpoint flush can never mark past what the
        // checkpoint it just saved actually contains.
        self.replication
            .applied_seq
            .store(seq + 1, Ordering::SeqCst);
        self.replication.observe_watermark(seq + 1);
        self.replication
            .records_applied
            .fetch_add(1, Ordering::SeqCst);
        Ok(())
    }

    /// Flush a checkpoint capturing every applied ingest, then mark the WAL
    /// checkpointed through what the checkpoint holds — those records are
    /// now owned by the checkpoint (and retained only for followers still
    /// fetching them). Requires the writer lock to be free (callers must
    /// not hold it). The writer lock is held across both the save and the
    /// mark (writer → wal, the same order `post_documents` takes) so no
    /// ingest can append between them — an interleaved append would be
    /// applied and acked, then silently skipped by the mark without being
    /// in the checkpoint.
    ///
    /// On a primary every appended record is applied under the writer lock,
    /// so the mark covers the whole log (`next_seq`). On a follower the
    /// tailer may have fsync'd records it has not applied yet; those stay
    /// pending — marking them would lose them if the follower crashed
    /// before applying.
    ///
    /// The checkpoint directory also gets `wal_position.json` (stream id +
    /// seq + term), so copying the directory to seed a new follower carries
    /// the exact offset it should resume the stream from.
    fn flush_checkpoint(&self) -> io::Result<()> {
        let flushed = self.flush_checkpoint_inner();
        if let Err(e) = &flushed {
            // ENOSPC/EIO here means acked durability can no longer be
            // honored; latch the failure so writes stop and the CLI exits 8.
            self.note_storage_error(e, "checkpoint flush");
        }
        flushed
    }

    fn flush_checkpoint_inner(&self) -> io::Result<()> {
        let Some(dir) = &self.checkpoint_dir else {
            return Ok(());
        };
        let dd = self.writer.lock();
        let mut ckpt = Checkpoint::new(dir.clone()).map_err(io::Error::other)?;
        ckpt.set_faults(self.faults.clone());
        let report = {
            let mut tracker = self.ckpt_tracker.lock();
            dd.save_checkpoint_incremental(&ckpt, &mut tracker, self.checkpoint_full_every)
                .map_err(io::Error::other)?
        };
        {
            let mut stats = self.ckpt_stats.lock();
            stats.flushes += 1;
            if report.full {
                stats.full_rewrites += 1;
            }
            stats.artifacts_written += report.artifacts_written;
            stats.artifacts_skipped += report.artifacts_skipped;
            stats.chain_len = report.chain_len;
        }
        if let Some(wal) = &self.wal {
            let mut wal = wal.lock();
            let through = if self.is_follower() {
                self.replication.applied_seq.load(Ordering::SeqCst)
            } else {
                wal.next_seq()
            };
            wal.mark_checkpointed(through)?;
            let position = json!({
                "stream_id": format!("{:016x}", wal.stream_id()),
                "seq": through,
                "term": wal.term(),
            });
            std::fs::write(
                dir.join("wal_position.json"),
                serde_json::to_string_pretty(&position).expect("a Value renders"),
            )?;
        }
        Ok(())
    }

    /// Write the replay report (`report.json` in the WAL dir): what the
    /// recovery scan found and what replay did — including `wal_torn_tail`,
    /// the flag operators alert on.
    fn write_wal_report(&self) {
        let Some(dir) = &self.wal_dir else { return };
        let stats = self.wal_stats.lock().clone();
        let (records, bytes) = self.wal_gauges();
        let (segments, segment_bytes, compactions) = match &self.wal {
            Some(wal) => {
                let wal = wal.lock();
                (
                    wal.segments() as u64,
                    wal.segment_target(),
                    wal.compactions(),
                )
            }
            None => (0, 0, 0),
        };
        let ck = self.ckpt_stats.lock().clone();
        let report = json!({
            "wal": json!({
                "wal_torn_tail": stats.torn_tail_recovered,
                "torn_bytes_dropped": stats.torn_bytes,
                "records_replayed": stats.replayed_records,
                "records_skipped": stats.replay_skipped,
                "records_pending": records,
                "bytes": bytes,
                "segments": segments,
                "segment_bytes": segment_bytes,
                "compactions": compactions,
                "group_commit": self.group_commit_json(),
            }),
            "checkpoint": json!({
                "enabled": self.checkpoint_dir.is_some(),
                "flushes": ck.flushes,
                "full_rewrites": ck.full_rewrites,
                "incremental": json!({
                    "artifacts_written": ck.artifacts_written,
                    "artifacts_skipped": ck.artifacts_skipped,
                    "chain_len": ck.chain_len,
                }),
            }),
            "replication": self.replication.to_json(self.is_follower()),
            "term": self.term(),
            "scrub": self.scrub_json(),
        });
        let text = serde_json::to_string_pretty(&report).expect("report renders");
        if let Err(e) = std::fs::write(dir.join("report.json"), text) {
            eprintln!("deepdive serve: cannot write WAL replay report: {e}");
        }
    }
}

/// A bound, not-yet-started server.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServeState>,
    workers: usize,
    drain: Duration,
    flush_interval: Duration,
    scrub_interval: Duration,
    /// Intact WAL records recovered at open, pending replay on `start`.
    pending_replay: Vec<Vec<u8>>,
}

impl Server {
    /// Materialize the initial snapshot from `dd`'s current state (normally
    /// restored from a checkpoint), open the write-ahead log (recovering
    /// any records a crash left behind), and bind the listener. Marginals
    /// are computed once, up front, with the run's full inference options —
    /// serving never pays that cost again until an ingest.
    ///
    /// If the WAL holds records, the daemon starts in `Replaying` state:
    /// it serves the pre-replay epoch, answers `/readyz` with 503, and
    /// refuses ingests until [`Server::start`]'s replay thread swaps the
    /// replayed epoch in.
    pub fn new(dd: DeepDive, config: &ServeConfig) -> io::Result<Server> {
        if config.follow.is_some() && config.wal_dir.is_none() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "follower mode requires a WAL (--wal-dir): the local copy is \
                 what lets a crashed follower resume without re-fetching history",
            ));
        }
        let inference = dd.config.inference.clone();
        let snapshot = ServeSnapshot::capture(&dd, 0, &inference);
        let derived = dd.grounder.engine().program().derived_relations();
        let budget = dd.db.memory_budget().clone();
        let ctx = dd.execution_context().clone();
        let listener = TcpListener::bind(&config.addr)?;

        let mut pending_replay = Vec::new();
        let mut wal_stats = WalStats::default();
        let replication = ReplicationStats::default();
        let mut initial_term = 0u64;
        let wal = match &config.wal_dir {
            Some(dir) => {
                let options = WalOptions {
                    retain_records: config.wal_retain,
                    // A follower's log carries the *primary's* stream id; a
                    // fresh one stays unadopted (0) until the handshake.
                    fresh_stream: config.follow.is_none(),
                    segment_bytes: config.wal_segment_bytes,
                };
                let (mut wal, mut recovery): (Wal, WalRecovery) =
                    Wal::open_with(dir, config.faults.clone(), options)?;
                if recovery.torn_tail {
                    eprintln!(
                        "deepdive serve: WARNING: dropped a torn WAL tail ({} bytes after {} \
                         intact records) — a crash interrupted an unacknowledged append",
                        recovery.torn_bytes,
                        recovery.records.len()
                    );
                }
                if config.follow.is_some() && wal.stream_id() == 0 {
                    // A checkpoint copied from the primary carries the
                    // stream position it was cut at; adopt it so the tail
                    // starts exactly where the seed state ends.
                    if let Some((stream_id, seq, term)) =
                        read_wal_position(config.checkpoint_dir.as_deref())
                    {
                        wal.adopt_stream(stream_id, seq)?;
                        if term > wal.term() {
                            wal.set_term(term)?;
                        }
                        eprintln!(
                            "deepdive serve: follower adopted stream {stream_id:016x} at seq \
                             {seq} (term {term}) from the seed checkpoint"
                        );
                    }
                }
                if recovery.manifest_rebuilt {
                    // The manifest was rebuilt from segment headers, so its
                    // checkpoint mark can be *behind* the truth (the segment
                    // snapshot only moves on rotation). `wal_position.json`
                    // records what the checkpoint actually holds — skip
                    // those records instead of double-applying them, and
                    // restore the persisted term if the headers lost it.
                    eprintln!(
                        "deepdive serve: WARNING: WAL manifest was missing or corrupt; \
                         rebuilt it from segment headers"
                    );
                    if let Some((stream_id, seq, term)) =
                        read_wal_position(config.checkpoint_dir.as_deref())
                    {
                        if stream_id == wal.stream_id() {
                            if term > wal.term() {
                                wal.set_term(term)?;
                            }
                            let through = seq.min(wal.next_seq());
                            if through > recovery.first_pending_seq {
                                let skip = ((through - recovery.first_pending_seq) as usize)
                                    .min(recovery.records.len());
                                recovery.records.drain(..skip);
                                recovery.first_pending_seq = through;
                                wal.mark_checkpointed(through)?;
                                eprintln!(
                                    "deepdive serve: skipped {skip} record(s) already held by \
                                     the checkpoint (wal_position.json says seq {seq})"
                                );
                            }
                        }
                    }
                }
                wal_stats.torn_tail_recovered = recovery.torn_tail;
                wal_stats.torn_bytes = recovery.torn_bytes;
                pending_replay = recovery.records;
                // Until replay finishes, the served state holds exactly the
                // checkpoint: applied = first pending seq.
                replication
                    .applied_seq
                    .store(recovery.first_pending_seq, Ordering::SeqCst);
                replication.observe_watermark(wal.next_seq());
                initial_term = wal.term();
                Some(Mutex::new(wal))
            }
            None => None,
        };

        let lifecycle = if pending_replay.is_empty() {
            Lifecycle::Ready
        } else {
            Lifecycle::Replaying
        };

        Ok(Server {
            listener,
            state: Arc::new(ServeState {
                snapshot: SnapshotCell::new(snapshot),
                writer: Mutex::new(dd),
                metrics: ServeMetrics::default(),
                budget,
                ctx,
                derived,
                inference,
                refresh: config.refresh.clone(),
                page_limit: config.page_limit.max(1),
                started: Instant::now(),
                lifecycle: AtomicU8::new(lifecycle.as_u8()),
                inflight: AtomicUsize::new(0),
                max_inflight: config.max_inflight.max(1),
                ingest_bucket: config
                    .ingest_rate
                    .filter(|r| *r > 0.0)
                    .map(|r| Mutex::new(TokenBucket::new(r))),
                wal,
                wal_stats: Mutex::new(wal_stats),
                wal_dir: config.wal_dir.clone(),
                checkpoint_dir: config.checkpoint_dir.clone(),
                committer: Mutex::new(None),
                linger: config.linger,
                group_commit: GroupCommitStats::default(),
                ckpt_tracker: Mutex::new(CheckpointTracker::default()),
                ckpt_stats: Mutex::new(CheckpointStats::default()),
                checkpoint_full_every: config.checkpoint_full_every,
                faults: config.faults.clone(),
                read_timeout: config.read_timeout,
                write_timeout: config.write_timeout,
                request_deadline: config.request_deadline,
                follow: config.follow.clone(),
                max_lag_epochs: config.max_lag_epochs,
                stream_window: config.stream_window.max(1),
                stopping: AtomicBool::new(false),
                replication,
                subs: SubscriptionRegistry::new(config.max_subscriptions, config.sub_queue_bytes),
                term: AtomicU64::new(initial_term),
                follower: AtomicBool::new(config.follow.is_some()),
                repl_paused: AtomicBool::new(false),
                fenced: Mutex::new(None),
                storage_fatal: Mutex::new(None),
                corrupt: Mutex::new(None),
                scrub: ScrubStats::default(),
            }),
            workers: config.workers.max(1),
            drain: config.drain,
            flush_interval: config.flush_interval,
            scrub_interval: config.scrub_interval,
            pending_replay,
        })
    }

    /// The bound address (resolves `:0` to the actual port).
    pub fn addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    pub fn state(&self) -> Arc<ServeState> {
        self.state.clone()
    }

    /// WAL records recovered at open and pending replay (for the banner).
    pub fn pending_replay(&self) -> usize {
        self.pending_replay.len()
    }

    /// Spawn the accept loop, worker pool, and (when the WAL recovered
    /// records) the replay thread; returns the handle used to reach and
    /// stop them. Readers are served immediately — from the pre-replay
    /// epoch until replay publishes its single swap.
    pub fn start(self) -> io::Result<ServerHandle> {
        let addr = self.listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(std::sync::Mutex::new(rx));

        let mut workers = Vec::with_capacity(self.workers);
        for _ in 0..self.workers {
            let rx = rx.clone();
            let state = self.state.clone();
            workers.push(std::thread::spawn(move || loop {
                // Hold the receiver lock only for the dequeue.
                let stream = rx.lock().unwrap_or_else(|p| p.into_inner()).recv();
                match stream {
                    Ok(stream) => {
                        handle_connection(stream, &state);
                        state.inflight.fetch_sub(1, Ordering::SeqCst);
                    }
                    Err(_) => break, // accept loop dropped the sender
                }
            }));
        }

        let accept_shutdown = shutdown.clone();
        let accept_state = self.state.clone();
        let listener = self.listener;
        listener.set_nonblocking(true)?;
        let accept = std::thread::spawn(move || {
            accept_loop(&listener, &tx, &accept_state, &accept_shutdown);
            // Dropping `tx` (with `listener`) drains the workers.
        });

        let replay = if self.pending_replay.is_empty() {
            self.state.write_wal_report();
            None
        } else {
            let state = self.state.clone();
            let records = self.pending_replay;
            Some(std::thread::spawn(move || replay_wal(&state, records)))
        };

        // The follower's tailer: waits out local replay itself, then tails
        // the primary until shutdown or a fatal replication error.
        let tailer = self.state.follow.clone().map(|primary| {
            let state = self.state.clone();
            std::thread::spawn(move || replication::run_follower(state, primary))
        });

        // Group committer: the single consumer that turns concurrent POSTs
        // into one WAL fsync per linger window. Only a primary with a WAL
        // and a nonzero linger gets one; otherwise `POST /documents` stays
        // on the inline one-fsync-per-request path.
        let committer = (!self.state.is_follower()
            && self.state.wal.is_some()
            && self.state.linger > Duration::ZERO)
            .then(|| {
                let (commit_tx, commit_rx) = mpsc::channel::<CommitRequest>();
                *self.state.committer.lock() = Some(commit_tx);
                let state = self.state.clone();
                std::thread::spawn(move || committer_loop(&state, &commit_rx))
            });

        // Background flusher: periodic incremental checkpoint + WAL
        // compaction, off the committer thread so neither ever holds up an
        // in-flight ack (and compaction never blocks reads at all — it only
        // takes the wal lock, briefly). Followers flush too: their local
        // checkpoint is what a crash restarts from, what `GET /checkpoint`
        // serves after a promotion, and what bounds their own WAL growth.
        let flusher = (self.state.wal.is_some()
            && self.state.checkpoint_dir.is_some()
            && self.flush_interval > Duration::ZERO)
            .then(|| {
                let state = self.state.clone();
                let interval = self.flush_interval;
                std::thread::spawn(move || flusher_loop(&state, interval))
            });

        // Anti-entropy scrubber: re-verify WAL frame checksums and the
        // checkpoint chain on interval, quarantine + repair what fails.
        let scrubber = (self.scrub_interval > Duration::ZERO).then(|| {
            let state = self.state.clone();
            let interval = self.scrub_interval;
            std::thread::spawn(move || scrubber_loop(&state, interval))
        });

        Ok(ServerHandle {
            addr,
            state: self.state,
            shutdown,
            workers,
            accept: Some(accept),
            replay,
            tailer,
            committer,
            flusher,
            scrubber,
            drain: self.drain,
        })
    }
}

/// Largest batch one group commit will take — past this the committer
/// commits immediately rather than lingering (bounds both ack latency under
/// saturation and the size of a rollback should a batch-mate fail to apply).
const MAX_COMMIT_BATCH: usize = 256;

/// The committer thread: park on the channel, gather one linger window's
/// worth of requests, commit them as a unit. Exits when every sender is
/// gone (shutdown drops the one in `ServeState` after the workers drain);
/// a blocking `recv` still yields all queued requests first, so nothing
/// enqueued is ever abandoned.
fn committer_loop(state: &ServeState, rx: &mpsc::Receiver<CommitRequest>) {
    loop {
        let first = match rx.recv() {
            Ok(req) => req,
            Err(_) => break,
        };
        let mut batch = vec![first];
        let deadline = Instant::now() + state.linger;
        while batch.len() < MAX_COMMIT_BATCH {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(req) => batch.push(req),
                Err(_) => break,
            }
        }
        commit_batch(state, batch);
    }
}

/// Commit one batch: parse every body, fsync them as a single WAL append,
/// apply each through DRed/IVM, publish one snapshot swap, and answer every
/// request — 200 only after both its batch's fsync and its own apply
/// succeeded, exactly the per-request ack semantics, amortized.
fn commit_batch(state: &ServeState, batch: Vec<CommitRequest>) {
    let mut dd = state.writer.lock();

    // Validation failures drop out of the batch with a 400 before anything
    // touches the log.
    let mut parsed = Vec::with_capacity(batch.len());
    for req in batch {
        match parse_ingest_body(&dd, &state.derived, &req.body) {
            Ok(changes) => parsed.push((req, changes)),
            Err(resp) => {
                let _ = req.reply.send(resp);
            }
        }
    }
    if parsed.is_empty() {
        return;
    }

    // Durability first, one fsync for the whole batch. A failed append is a
    // failed batch: nothing was applied yet, nobody is acknowledged.
    let wal = state.wal.as_ref().expect("committer runs only with a WAL");
    let mark = wal.lock().mark();
    {
        let bodies: Vec<&[u8]> = parsed.iter().map(|(req, _)| req.body.as_slice()).collect();
        if let Err(e) = wal.lock().append_batch(&bodies) {
            state.note_storage_error(&e, "WAL batch append");
            let msg = format!("ingest not applied: WAL append failed: {e}");
            for (req, _) in parsed {
                let _ = req.reply.send(Response::error(500, &msg));
            }
            return;
        }
    }
    state.group_commit.batches.fetch_add(1, Ordering::Relaxed);
    state
        .group_commit
        .records
        .fetch_add(parsed.len() as u64, Ordering::Relaxed);

    // Apply each record on its own: one bad batch-mate must not fail its
    // neighbors.
    let mut applied: Vec<(CommitRequest, usize, Json, usize)> = Vec::with_capacity(parsed.len());
    let mut failed: Vec<(CommitRequest, String)> = Vec::new();
    let mut trace = IvmTrace::default();
    for (req, changes) in parsed {
        let inserted = changes.len();
        match dd.apply_base_changes_traced(changes) {
            Ok((delta, result)) => {
                trace.absorb(&result);
                let delta_json = json!({
                    "added_variables": delta.added_variables,
                    "removed_variables": delta.removed_variables,
                    "added_factors": delta.added_factors,
                    "removed_factors": delta.removed_factors,
                    "evidence_changes": delta.evidence_changes,
                    "total": delta.total(),
                });
                applied.push((req, inserted, delta_json, delta.total()));
            }
            Err(e) => failed.push((req, e.to_string())),
        }
    }

    if !failed.is_empty() {
        // The 500s promise "no durable trace": cut the whole batch off the
        // log and re-append only the applied records, so a restart can
        // never replay a record whose client was told it failed. The writer
        // lock is still held, so nothing appended after the batch.
        let rewrite = {
            let mut wal = wal.lock();
            wal.rollback_to(&mark).and_then(|()| {
                let keep: Vec<&[u8]> = applied
                    .iter()
                    .map(|(req, ..)| req.body.as_slice())
                    .collect();
                wal.append_batch(&keep).map(|_| ())
            })
        };
        if let Err(re) = rewrite {
            // The log no longer matches what was applied and is poisoned
            // until the next checkpoint flush repairs it. Nobody gets an
            // ack: the durability half of the promise is gone for the
            // applied records too. (Their in-memory effects surface in a
            // later epoch — the same poison-window caveat as the
            // single-request path, see DESIGN §13.)
            eprintln!(
                "deepdive serve: WARNING: could not roll failed ingests off the WAL \
                 ({re}); log poisoned until the next checkpoint flush"
            );
            let msg = "ingest not applied: WAL rewrite failed after a batch-mate's apply \
                       failure; log poisoned until the next checkpoint flush";
            for (req, ..) in applied {
                let _ = req.reply.send(Response::error(500, msg));
            }
            for (req, e) in failed {
                let _ = req
                    .reply
                    .send(Response::error(500, &format!("ingest not applied: {e}")));
            }
            return;
        }
        for (req, e) in failed {
            let _ = req
                .reply
                .send(Response::error(500, &format!("ingest not applied: {e}")));
        }
    }
    if applied.is_empty() {
        return;
    }

    // One bounded refresh sized by the batch's summed grounding delta, one
    // snapshot swap, one epoch advance per applied record (epoch stays in
    // lockstep with the WAL seq, exactly as the inline path keeps it).
    // Subscribers see the whole batch as one delta set.
    let changed_total: usize = applied.iter().map(|(.., total)| *total).sum();
    let opts = bounded_options(&state.inference, &state.refresh, changed_total);
    let (epoch, fingerprint) = state.publish_epoch(&dd, applied.len() as u64, &opts, trace);
    let next = wal.lock().next_seq();
    state.replication.applied_seq.store(next, Ordering::SeqCst);
    state.replication.observe_watermark(next);
    let (wal_records, wal_bytes) = state.wal_gauges();

    for (req, inserted, delta_json, _) in applied {
        let _ = req.reply.send(Response::json(
            200,
            &json!({
                "epoch": epoch,
                "fingerprint": format!("{fingerprint:016x}"),
                "inserted": inserted,
                "durable": true,
                "wal_records": wal_records,
                "wal_bytes": wal_bytes,
                "delta": delta_json,
                "refresh_samples": opts.samples,
            }),
        ));
    }
}

/// The background flusher: every `interval`, checkpoint pending WAL records
/// incrementally and compact checkpointed segments past the retention
/// horizon. Runs on its own thread — an in-flight flush or compaction never
/// sits between a request and its ack, and `/readyz` never leaves `Ready`
/// for either.
fn flusher_loop(state: &ServeState, interval: Duration) {
    let mut last = Instant::now();
    loop {
        std::thread::sleep(Duration::from_millis(25));
        if state.stop_requested() {
            break;
        }
        if last.elapsed() < interval || state.lifecycle() != Lifecycle::Ready {
            continue;
        }
        last = Instant::now();
        if state.faults.trips(points::WAL_COMPACT_STALL) {
            // Deterministically widen the in-flight window so tests can
            // watch `/readyz` hold steady across a slow flush cycle.
            std::thread::sleep(Duration::from_millis(200));
        }
        if state.wal_gauges().0 > 0 {
            if let Err(e) = state.flush_checkpoint() {
                eprintln!(
                    "deepdive serve: WARNING: periodic checkpoint flush failed ({e}); \
                     keeping the WAL for the next attempt"
                );
                continue;
            }
        }
        if let Some(wal) = &state.wal {
            if let Err(e) = wal.lock().compact() {
                eprintln!("deepdive serve: WARNING: WAL compaction failed: {e}");
            }
        }
    }
}

/// The anti-entropy scrubber thread: every `interval`, run one scrub pass
/// (WAL frame checksums, checkpoint chain hashes, cross-node fingerprint).
fn scrubber_loop(state: &ServeState, interval: Duration) {
    let mut last = Instant::now();
    loop {
        std::thread::sleep(Duration::from_millis(25));
        if state.stop_requested() {
            break;
        }
        if last.elapsed() < interval || state.lifecycle() != Lifecycle::Ready {
            continue;
        }
        last = Instant::now();
        scrub_once(state);
    }
}

/// One scrub pass: re-verify every WAL frame checksum (fresh reads, not
/// cached state), re-verify the whole checkpoint chain, repair what fails
/// (from the primary for a follower, from a fresh flush for a primary),
/// and — on a caught-up follower — compare served fingerprints with the
/// primary to catch silent divergence no checksum can see.
fn scrub_once(state: &ServeState) {
    state.scrub.runs.fetch_add(1, Ordering::SeqCst);
    if state.corrupt_reason().is_some() {
        // Already degraded; nothing more a scrub can do.
        return;
    }

    // 1. WAL: every frame, every segment, read back from disk.
    if let Some(wal) = state.wal_handle() {
        let verified = wal.lock().verify();
        if let Err(e) = verified {
            state.scrub.corrupt_found.fetch_add(1, Ordering::SeqCst);
            eprintln!("deepdive serve: scrub: WAL corruption: {e}");
            repair_wal(state, &e);
        }
    }

    // 2. Checkpoint chain: every artifact against its manifest hash, every
    // delta against the chain.
    if let Some(dir) = state.checkpoint_dir() {
        if dir.join("MANIFEST.tsv").exists() {
            let verified =
                Checkpoint::new(dir.to_path_buf()).and_then(|ckpt| ckpt.verify().map(|_| ()));
            if let Err(e) = verified {
                state.scrub.corrupt_found.fetch_add(1, Ordering::SeqCst);
                eprintln!("deepdive serve: scrub: checkpoint corruption: {e}");
                let file = match &e {
                    deepdive_core::CheckpointError::Corrupt { file, .. } => Some(file.clone()),
                    _ => None,
                };
                repair_checkpoint(state, file.as_deref(), &e.to_string());
            }
        }
    }

    // 3. Cross-node anti-entropy: a caught-up follower compares its served
    // (epoch, fingerprint) with the primary's. Checksums catch bit-rot;
    // this catches state divergence with intact checksums. A node that has
    // ever resynced from a checkpoint bundle is excluded: the resync
    // re-based its epoch counter, so an epoch collision with the primary
    // no longer implies comparable histories.
    if state.is_follower() && !state.replication.diverged.load(Ordering::SeqCst) {
        if let Some(primary) = &state.follow {
            if state.replication.connected.load(Ordering::SeqCst)
                && state.replication.lag_epochs() == 0
                && state.replication.resyncs.load(Ordering::SeqCst) == 0
            {
                scrub_fingerprint(state, primary);
            }
        }
    }
}

/// Compare this follower's `(epoch, fingerprint)` with the primary's; a
/// different fingerprint at the *same* epoch is divergence — mark it fatal
/// exactly as a refused record would be.
fn scrub_fingerprint(state: &ServeState, primary: &str) {
    let Ok((200, body)) = replication::http_request_json("GET", primary, "/healthz") else {
        return; // primary unreachable or unhealthy: the tailer's problem
    };
    let snap = state.snapshot.load();
    let (Some(p_epoch), Some(p_fp)) = (
        body.get("epoch").and_then(Json::as_u64),
        body.get("fingerprint").and_then(Json::as_str),
    ) else {
        return;
    };
    let ours = format!("{:016x}", snap.fingerprint);
    // Only a stable comparison counts: same epoch before *and* after, so a
    // concurrent ingest cannot fake a mismatch.
    if p_epoch == snap.epoch && p_fp != ours && state.snapshot.load().epoch == snap.epoch {
        state.scrub.corrupt_found.fetch_add(1, Ordering::SeqCst);
        state.replication.set_fatal(
            true,
            format!(
                "scrub: fingerprint mismatch at epoch {p_epoch} (ours {ours}, \
                 primary {p_fp}): silent divergence — re-seed this follower"
            ),
        );
    }
}

/// Repair a corrupt WAL. A follower re-seeds from the primary's checkpoint
/// (peer repair); a primary's applied state is intact in memory, so it
/// flushes a fresh checkpoint and rewrites the log empty at the same
/// stream and term (followers that still needed the dropped records get
/// 410 → resync). When neither works the node degrades to read-only.
fn repair_wal(state: &ServeState, err: &io::Error) {
    if state.is_follower() {
        if let Some(primary) = state.follow.clone() {
            match state.resync_from_primary(&primary) {
                Ok(_) => {
                    state.scrub.repaired.fetch_add(1, Ordering::SeqCst);
                    state.replication.resyncs.fetch_add(1, Ordering::SeqCst);
                    eprintln!("deepdive serve: scrub: WAL repaired from the primary");
                    return;
                }
                Err(re) => {
                    eprintln!("deepdive serve: scrub: peer repair failed: {re}")
                }
            }
        }
        state.set_corrupt(format!("WAL corrupt and peer repair failed: {err}"));
        return;
    }
    let repaired = state.flush_checkpoint().and_then(|()| {
        let wal = state.wal_handle().expect("repair runs only with a WAL");
        let mut w = wal.lock();
        let (stream, next, term) = (w.stream_id(), w.next_seq(), w.term());
        w.reset_stream(stream, next, term)
    });
    match repaired {
        Ok(()) => {
            state.scrub.repaired.fetch_add(1, Ordering::SeqCst);
            eprintln!(
                "deepdive serve: scrub: WAL repaired — state checkpointed and the \
                 log rewritten clean"
            );
        }
        Err(re) => state.set_corrupt(format!("WAL corrupt ({err}) and local repair failed: {re}")),
    }
}

/// Repair a corrupt checkpoint: quarantine the named artifact (rename to
/// `<file>.quarantine` so nothing ever loads it again), then rebuild — a
/// follower fetches the primary's bundle, a primary rewrites the full
/// checkpoint from its live state.
fn repair_checkpoint(state: &ServeState, file: Option<&str>, reason: &str) {
    if let (Some(dir), Some(file)) = (state.checkpoint_dir(), file) {
        let bad = dir.join(file);
        if bad.exists() {
            match std::fs::rename(&bad, dir.join(format!("{file}.quarantine"))) {
                Ok(()) => eprintln!("deepdive serve: scrub: quarantined {file}"),
                Err(e) => eprintln!("deepdive serve: scrub: could not quarantine {file}: {e}"),
            }
        }
    }
    if state.is_follower() {
        if let Some(primary) = state.follow.clone() {
            match state.resync_from_primary(&primary) {
                Ok(_) => {
                    state.scrub.repaired.fetch_add(1, Ordering::SeqCst);
                    state.replication.resyncs.fetch_add(1, Ordering::SeqCst);
                    eprintln!("deepdive serve: scrub: checkpoint repaired from the primary");
                    return;
                }
                Err(re) => eprintln!("deepdive serve: scrub: peer repair failed: {re}"),
            }
        }
        state.set_corrupt(format!(
            "checkpoint corrupt and peer repair failed: {reason}"
        ));
        return;
    }
    // Primary: the served state is the source of truth; force the next
    // flush to be a full rewrite and take it now.
    *state.ckpt_tracker.lock() = CheckpointTracker::default();
    match state.flush_checkpoint() {
        Ok(()) => {
            state.scrub.repaired.fetch_add(1, Ordering::SeqCst);
            eprintln!("deepdive serve: scrub: checkpoint repaired by a full rewrite");
        }
        Err(re) => state.set_corrupt(format!(
            "checkpoint corrupt ({reason}) and rewrite failed: {re}"
        )),
    }
}

/// Read the `wal_position.json` a checkpoint flush leaves beside the
/// checkpoint: `(stream_id, seq, term)`. Absent or unreadable simply means
/// "no recorded position" (e.g. a pre-replication checkpoint); a position
/// written before terms existed reads as term 0.
fn read_wal_position(dir: Option<&std::path::Path>) -> Option<(u64, u64, u64)> {
    let text = std::fs::read_to_string(dir?.join("wal_position.json")).ok()?;
    let v: Json = serde_json::from_str(&text).ok()?;
    let stream_id = u64::from_str_radix(v.get("stream_id")?.as_str()?, 16).ok()?;
    let seq = v.get("seq")?.as_u64()?;
    let term = v.get("term").and_then(Json::as_u64).unwrap_or(0);
    (stream_id != 0).then_some((stream_id, seq, term))
}

/// Nonblocking accept + admission control: beyond `max_inflight` admitted
/// connections (or during drain) the connection is answered `503` with
/// `Retry-After` and closed — bounded queueing with explicit load-shedding
/// instead of an unbounded backlog that falls over.
fn accept_loop(
    listener: &TcpListener,
    tx: &mpsc::Sender<TcpStream>,
    state: &ServeState,
    shutdown: &AtomicBool,
) {
    loop {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                if state.lifecycle() == Lifecycle::Draining {
                    shed(stream, state, "draining for shutdown");
                    continue;
                }
                // Admit up front so the gauge covers queued + in-flight.
                let admitted = state.inflight.fetch_add(1, Ordering::SeqCst);
                if admitted >= state.max_inflight {
                    state.inflight.fetch_sub(1, Ordering::SeqCst);
                    shed(stream, state, "admission queue full");
                    continue;
                }
                if tx.send(stream).is_err() {
                    state.inflight.fetch_sub(1, Ordering::SeqCst);
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Answer a shed connection `503 + Retry-After` without parsing anything;
/// the write is bounded by a short timeout so a dead peer cannot stall the
/// accept loop.
fn shed(mut stream: TcpStream, state: &ServeState, why: &str) {
    state.metrics.record_shed();
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let _ = Response::error(503, why)
        .with_retry_after(jittered_retry_secs(1))
        .write_to(&mut stream);
}

/// Replay recovered WAL records through the same validate → DRed/IVM path a
/// live `POST /documents` takes, then publish one snapshot swap sized by
/// the shared [`RefreshBudget`]. Readers keep the pre-replay epoch until
/// that swap; `/readyz` flips to 200 after it. A successful checkpoint
/// flush then truncates the WAL.
fn replay_wal(state: &ServeState, records: Vec<Vec<u8>>) {
    let stall = state.faults.trips(points::WAL_REPLAY_STALL);
    let mut replayed = 0u64;
    let mut skipped = 0u64;
    let mut changed_total = 0usize;
    let mut trace = IvmTrace::default();
    {
        let mut dd = state.writer.lock();
        for (i, record) in records.iter().enumerate() {
            if stall {
                // Deterministically widen the not-ready window so tests can
                // observe readers during replay.
                std::thread::sleep(Duration::from_millis(50));
            }
            let changes = match parse_ingest_body(&dd, &state.derived, record) {
                Ok(changes) => changes,
                Err(resp) => {
                    eprintln!(
                        "deepdive serve: WARNING: WAL record {} failed validation and was \
                         skipped: {}",
                        i + 1,
                        resp.body
                    );
                    skipped += 1;
                    continue;
                }
            };
            match dd.apply_base_changes_traced(changes) {
                Ok((delta, result)) => {
                    trace.absorb(&result);
                    changed_total += delta.total();
                    replayed += 1;
                }
                Err(e) => {
                    eprintln!(
                        "deepdive serve: WARNING: WAL record {} failed to apply and was \
                         skipped: {e}",
                        i + 1
                    );
                    skipped += 1;
                }
            }
        }
        // One bounded refresh over everything the replay re-grounded, one
        // swap: concurrent readers see the pre-replay epoch, then this one.
        // The epoch advances by the *applied* records only, matching the
        // live path's one-epoch-per-successful-POST.
        let opts = bounded_options(&state.inference, &state.refresh, changed_total);
        state.publish_epoch(&dd, replayed, &opts, trace);
        // Every pending record is now consumed (applied or skipped): the
        // served state covers the whole local log.
        if let Some(wal) = &state.wal {
            let next = wal.lock().next_seq();
            state.replication.applied_seq.store(next, Ordering::SeqCst);
            state.replication.observe_watermark(next);
        }
    }
    {
        let mut stats = state.wal_stats.lock();
        stats.replayed_records = replayed;
        stats.replay_skipped = skipped;
    }
    if skipped > 0 && state.is_follower() {
        // A primary may carry operator-injected bad records; a follower's
        // log holds only records the primary applied, so one that cannot
        // apply here is a fork, not noise.
        state.replication.set_fatal(
            true,
            format!("{skipped} locally-durable replicated record(s) failed to re-apply"),
        );
    }
    // The replayed state is as durable as the checkpoint we can flush; only
    // a successful flush may truncate the log.
    if let Err(e) = state.flush_checkpoint() {
        eprintln!(
            "deepdive serve: WARNING: post-replay checkpoint flush failed ({e}); \
             keeping the WAL for the next restart"
        );
    }
    if !state.lifecycle_cas(Lifecycle::Replaying, Lifecycle::Ready) {
        eprintln!("deepdive serve: WAL replay finished during shutdown; staying not-ready");
    }
    state.write_wal_report();
    eprintln!("deepdive serve: WAL replay complete: {replayed} records applied, {skipped} skipped");
}

/// Handle to a running server: address, shared state, clean shutdown.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServeState>,
    shutdown: Arc<AtomicBool>,
    workers: Vec<JoinHandle<()>>,
    accept: Option<JoinHandle<()>>,
    replay: Option<JoinHandle<()>>,
    tailer: Option<JoinHandle<()>>,
    committer: Option<JoinHandle<()>>,
    flusher: Option<JoinHandle<()>>,
    scrubber: Option<JoinHandle<()>>,
    drain: Duration,
}

/// What a graceful shutdown accomplished.
#[derive(Debug, Clone, Copy)]
pub struct DrainSummary {
    /// In-flight requests left when the drain budget expired (0 = clean).
    pub stragglers: usize,
    /// Whether the final checkpoint (and WAL truncation) succeeded.
    pub checkpoint_flushed: bool,
}

impl ServerHandle {
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn state(&self) -> Arc<ServeState> {
        self.state.clone()
    }

    /// Graceful shutdown: stop accepting (new connections are shed with
    /// 503 while the listener lives, refused once it closes), drain
    /// in-flight requests up to the drain budget, flush a final checkpoint,
    /// truncate the WAL, and join every thread that finished in time.
    pub fn graceful_shutdown(mut self) -> io::Result<DrainSummary> {
        self.state.set_lifecycle(Lifecycle::Draining);
        // Stop replication first: `GET /wal` streamers end their chunked
        // bodies cleanly, and the follower's tailer (which would otherwise
        // reconnect forever) winds down. Subscription streamers end their
        // bodies the same way once the registry closes and wakes them.
        self.state.stopping.store(true, Ordering::SeqCst);
        self.state.subs.close_all();
        if let Some(tailer) = self.tailer.take() {
            let _ = tailer.join();
        }
        // Let the replay finish first — it holds the writer lock and is
        // finite; the final checkpoint needs its result anyway.
        if let Some(replay) = self.replay.take() {
            let _ = replay.join();
        }
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }

        // Drain: wait for admitted connections to finish, bounded by the
        // drain budget (socket deadlines bound each one individually).
        let deadline = Instant::now() + self.drain;
        while self.state.queue_depth() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        let stragglers = self.state.queue_depth();
        if stragglers == 0 {
            // The accept loop dropped the sender; workers drain the queue
            // and exit.
            for t in self.workers.drain(..) {
                let _ = t.join();
            }
        } else {
            eprintln!(
                "deepdive serve: drain budget expired with {stragglers} request(s) still \
                 in flight; detaching workers"
            );
            self.workers.clear();
        }

        // The committer outlives the workers — an in-flight POST may be
        // parked on its reply channel. Once they are gone, dropping the
        // stored sender disconnects the channel and the committer exits
        // after draining anything still queued. A detached straggler may
        // hold a sender clone, so only join when the drain was clean.
        *self.state.committer.lock() = None;
        if let Some(committer) = self.committer.take() {
            if stragglers == 0 {
                let _ = committer.join();
            }
        }
        if let Some(flusher) = self.flusher.take() {
            let _ = flusher.join();
        }
        if let Some(scrubber) = self.scrubber.take() {
            let _ = scrubber.join();
        }

        let checkpoint_flushed = match self.state.flush_checkpoint() {
            Ok(()) => true,
            Err(e) => {
                eprintln!(
                    "deepdive serve: WARNING: final checkpoint flush failed ({e}); \
                     keeping the WAL"
                );
                false
            }
        };
        self.state.write_wal_report();
        Ok(DrainSummary {
            stragglers,
            checkpoint_flushed,
        })
    }

    /// Stop accepting, drain in-flight requests, flush the final
    /// checkpoint, join every thread. (The graceful path; chaos tests use
    /// [`ServerHandle::abort`] for the crash path.)
    pub fn shutdown(self) {
        let _ = self.graceful_shutdown();
    }

    /// Simulated `kill -9`: tear the server down with *no* drain, *no*
    /// final checkpoint, and *no* WAL truncation — exactly the state a
    /// crash leaves on disk. Chaos tests restart from the checkpoint + WAL
    /// this leaves behind and assert replay recovers every acknowledged
    /// ingest.
    pub fn abort(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.state.stopping.store(true, Ordering::SeqCst);
        self.state.subs.close_all();
        if let Some(tailer) = self.tailer.take() {
            let _ = tailer.join();
        }
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        if let Some(replay) = self.replay.take() {
            let _ = replay.join();
        }
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
        *self.state.committer.lock() = None;
        if let Some(committer) = self.committer.take() {
            let _ = committer.join();
        }
        if let Some(flusher) = self.flusher.take() {
            let _ = flusher.join();
        }
        if let Some(scrubber) = self.scrubber.take() {
            let _ = scrubber.join();
        }
    }

    /// Serve until `stop` flips true (the CLI sets it from SIGTERM/SIGINT),
    /// replication fails permanently, or durable storage fails (the CLI
    /// inspects [`ReplicationStats::fatal_error`] /
    /// [`ServeState::storage_fatal_error`] afterwards and exits nonzero),
    /// then drain gracefully.
    pub fn run_until(self, stop: &AtomicBool) -> io::Result<DrainSummary> {
        while !stop.load(Ordering::SeqCst) {
            if self.state.replication.fatal_error().is_some()
                || self.state.storage_fatal_error().is_some()
            {
                break;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        self.graceful_shutdown()
    }

    /// Block until every serving thread exits (a daemon that runs forever).
    pub fn join(mut self) {
        if let Some(replay) = self.replay.take() {
            let _ = replay.join();
        }
        if let Some(tailer) = self.tailer.take() {
            let _ = tailer.join();
        }
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
        *self.state.committer.lock() = None;
        if let Some(committer) = self.committer.take() {
            let _ = committer.join();
        }
        if let Some(flusher) = self.flusher.take() {
            let _ = flusher.join();
        }
        if let Some(scrubber) = self.scrubber.take() {
            let _ = scrubber.join();
        }
    }
}

fn handle_connection(stream: TcpStream, state: &ServeState) {
    // A silent peer must not pin a worker: every read and write syscall is
    // bounded, and the whole request must arrive within the deadline.
    let _ = stream.set_read_timeout(Some(state.read_timeout));
    let _ = stream.set_write_timeout(Some(state.write_timeout));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut write_half = stream;
    let limits = ParseLimits {
        max_body: crate::http::MAX_BODY_BYTES,
        deadline: Some(Instant::now() + state.request_deadline),
    };
    match Request::parse_with(&mut reader, &limits) {
        Ok(req) => {
            let start = Instant::now();
            // A handler panic must cost one connection, not one worker: the
            // dispatch below runs under `catch_unwind`, and an unwound
            // request is answered 500 (best-effort — a stream that already
            // wrote its header just drops) and counted in `/metrics`.
            // `GET /wal` and `POST /subscriptions` own the socket: they
            // write unbounded chunked streams, which the Response type (one
            // buffered body) cannot express.
            if req.method == "GET" && req.path == "/wal" {
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    replication::serve_wal_stream(&req, &mut write_half, state)
                }));
                let ok = outcome.unwrap_or_else(|_| {
                    state.metrics.record_panic();
                    false
                });
                state.metrics.record("wal", start.elapsed(), ok);
                return;
            }
            if req.method == "POST" && req.path == "/subscriptions" {
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    post_subscriptions(&req, &mut write_half, state)
                }));
                let ok = outcome.unwrap_or_else(|_| {
                    state.metrics.record_panic();
                    let _ = Response::error(500, "handler panicked; the worker survived")
                        .write_to(&mut write_half);
                    false
                });
                state.metrics.record("subscriptions", start.elapsed(), ok);
                return;
            }
            let outcome =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| route(&req, state)));
            let (endpoint, response) = match outcome {
                Ok(routed) => routed,
                Err(_) => {
                    state.metrics.record_panic();
                    (
                        "other",
                        Response::error(500, "handler panicked; the worker survived"),
                    )
                }
            };
            state
                .metrics
                .record(endpoint, start.elapsed(), response.status < 400);
            let _ = response.write_to(&mut write_half);
        }
        Err(ParseError::Bad { status, message }) => {
            if status == 408 {
                state.metrics.record_timeout();
            }
            let _ = Response::error(status, &message).write_to(&mut write_half);
        }
        Err(ParseError::Io(_)) => {}
    }
}

fn route(req: &Request, state: &ServeState) -> (&'static str, Response) {
    if state.faults.trips(points::SERVE_HANDLER_PANIC) {
        // The regression stand-in for any latent handler bug: prove the
        // worker catches the unwind, answers 500, and keeps serving.
        panic!("armed serve_handler_panic fault point");
    }
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => ("healthz", healthz(state)),
        ("GET", "/readyz") => ("readyz", readyz(state)),
        ("GET", "/metrics") => ("metrics", metrics(state)),
        ("POST", "/documents") if state.is_follower() => (
            "documents",
            // RFC 7231 §6.5.5: a 405 names the methods that *are* allowed;
            // the forwarding hint tells the client where writes do land.
            Response::error(
                405,
                "this node is a read-only replica; POST /documents to the primary",
            )
            .with_header("Allow", "GET, HEAD")
            .with_header("X-DD-Primary", state.follow.clone().unwrap_or_default()),
        ),
        ("POST", "/documents") => ("documents", post_documents(req, state)),
        ("POST", "/promote") => ("promote", post_promote(req, state)),
        (_, "/promote") => (
            "other",
            Response::error(405, "use POST").with_header("Allow", "POST"),
        ),
        ("GET", "/checkpoint") => ("checkpoint", get_checkpoint_bundle(state)),
        (_, "/checkpoint") => (
            "other",
            Response::error(405, "use GET").with_header("Allow", "GET"),
        ),
        (_, "/healthz" | "/readyz" | "/metrics") => (
            "other",
            Response::error(405, "use GET").with_header("Allow", "GET"),
        ),
        (_, "/documents") => (
            "other",
            Response::error(405, "use POST").with_header("Allow", "POST"),
        ),
        // `GET /wal` is intercepted in `handle_connection` (it streams);
        // any other method on it lands here.
        (_, "/wal") => (
            "other",
            Response::error(405, "use GET").with_header("Allow", "GET"),
        ),
        // `POST /subscriptions` is likewise intercepted (stream mode owns
        // the socket); the cursor/list/cancel forms are plain responses.
        ("GET", "/subscriptions") => (
            "subscriptions",
            Response::json(200, &state.subs.list_json()),
        ),
        (_, "/subscriptions") => (
            "other",
            Response::error(405, "use POST to subscribe, GET to list")
                .with_header("Allow", "GET, POST"),
        ),
        ("GET", path) => {
            if let Some(name) = path.strip_prefix("/relations/") {
                ("relations", get_relation(req, name, state))
            } else if let Some(name) = path.strip_prefix("/marginals/") {
                ("marginals", get_marginals(req, name, state))
            } else if let Some(id) = path.strip_prefix("/subscriptions/") {
                ("subscriptions", poll_subscription(req, id, state))
            } else {
                ("other", Response::error(404, "no such route"))
            }
        }
        ("DELETE", path) => {
            if let Some(id) = path.strip_prefix("/subscriptions/") {
                (
                    "subscriptions",
                    if state.subs.remove(id) {
                        Response::json(200, &json!({ "removed": id }))
                    } else {
                        Response::error(404, &format!("no subscription `{id}`"))
                    },
                )
            } else {
                ("other", Response::error(404, "no such route"))
            }
        }
        (_, path) if path.starts_with("/subscriptions/") => (
            "other",
            Response::error(405, "use GET to poll, DELETE to cancel")
                .with_header("Allow", "GET, DELETE"),
        ),
        (_, path) if path.starts_with("/relations/") || path.starts_with("/marginals/") => (
            "other",
            Response::error(405, "use GET").with_header("Allow", "GET"),
        ),
        _ => ("other", Response::error(404, "no such route")),
    }
}

/// `POST /promote`: atomically flip this caught-up follower to primary
/// under a new, strictly higher term. Idempotent on a node that is already
/// primary. Refuses (409) a diverged follower, or one that still trails
/// the last known primary head — unless `?force=1` accepts losing the
/// unfetched records.
///
/// The flip is fencing-safe: the new term is persisted in the WAL manifest
/// *before* the role flips, so the deposed primary — should it come back —
/// sees the higher term in the very first handshake and fences itself.
fn post_promote(req: &Request, state: &ServeState) -> Response {
    let force = matches!(req.query_param("force"), Some("1") | Some("true"));
    if !state.is_follower() {
        return Response::json(
            200,
            &json!({
                "promoted": false,
                "role": "primary",
                "term": state.term(),
                "note": "already primary",
            }),
        );
    }
    if state.lifecycle() != Lifecycle::Ready {
        return Response::error(503, "cannot promote: node is not ready")
            .with_retry_after(jittered_retry_secs(1));
    }
    let repl = state.replication();
    if repl.diverged.load(Ordering::SeqCst) || repl.fatal_error().is_some() {
        return Response::error(
            409,
            "cannot promote a diverged follower; re-seed it from a fresh checkpoint first",
        );
    }
    let Some(wal) = &state.wal else {
        return Response::error(400, "promote requires a WAL (--wal-dir)");
    };

    // Park the tailer and wait for it to let go of the stream; records it
    // already fetched are applied before it pauses, so `applied_seq` is
    // final once `connected` drops.
    state.repl_paused.store(true, Ordering::SeqCst);
    let deadline = Instant::now() + Duration::from_secs(10);
    while repl.connected.load(Ordering::SeqCst) && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    if repl.connected.load(Ordering::SeqCst) {
        state.repl_paused.store(false, Ordering::SeqCst);
        return Response::error(
            503,
            "cannot promote: the tailer did not release the stream in time",
        )
        .with_retry_after(jittered_retry_secs(1));
    }

    let new_term;
    {
        // The writer lock orders the flip against any in-flight apply.
        let _dd = state.writer.lock();
        let lag = repl.lag_epochs();
        if lag > 0 && !force {
            state.repl_paused.store(false, Ordering::SeqCst);
            return Response::error(
                409,
                &format!(
                    "cannot promote: this follower trails the last known primary head \
                     by {lag} record(s); let it catch up, or pass ?force=1 to accept \
                     losing them"
                ),
            );
        }
        let mut w = wal.lock();
        new_term = w.term() + 1;
        if let Err(e) = w.set_term(new_term) {
            state.repl_paused.store(false, Ordering::SeqCst);
            return Response::error(
                500,
                &format!("cannot promote: persisting term {new_term} failed: {e}"),
            );
        }
        state.term.store(new_term, Ordering::SeqCst);
        state.follower.store(false, Ordering::SeqCst);
        // A forced promotion abandons the unfetched records; the books
        // must not report them as lag forever.
        let applied = repl.applied_seq.load(Ordering::SeqCst);
        repl.watermark_seq.store(applied, Ordering::SeqCst);
    }
    eprintln!("deepdive serve: promoted to primary at term {new_term}");
    // Record the new term in wal_position.json (best effort — the term is
    // already durable in the WAL manifest).
    if let Err(e) = state.flush_checkpoint() {
        eprintln!("deepdive serve: WARNING: post-promote checkpoint flush failed ({e})");
    }
    let snap = state.snapshot.load();
    Response::json(
        200,
        &json!({
            "promoted": true,
            "role": "primary",
            "term": new_term,
            "epoch": snap.epoch,
            "fingerprint": format!("{:016x}", snap.fingerprint),
            "wal_offset": state.replication().applied_seq.load(Ordering::SeqCst),
        }),
    )
}

/// `GET /checkpoint`: the node's current checkpoint directory as a
/// hash-framed bundle (see [`replication::fetch_checkpoint_bundle`] for
/// the frame format). Flushes first so the bundle is current through every
/// applied record. This is what a 410'd follower resyncs from.
fn get_checkpoint_bundle(state: &ServeState) -> Response {
    let Some(dir) = state.checkpoint_dir().map(|d| d.to_path_buf()) else {
        return Response::error(404, "this node keeps no checkpoint (no checkpoint dir)");
    };
    if state.lifecycle() != Lifecycle::Ready {
        return Response::error(503, "not ready").with_retry_after(jittered_retry_secs(1));
    }
    if let Some(why) = state.write_block_reason() {
        // A fenced or corrupt node must not seed peers from suspect state.
        return Response::error(503, &format!("refusing to serve a checkpoint: {why}"));
    }
    if let Err(e) = state.flush_checkpoint() {
        return Response::error(500, &format!("checkpoint flush failed: {e}"));
    }
    // Hold the writer lock while reading: a flush holds it too, so no
    // half-written chain can be bundled.
    let _dd = state.writer.lock();
    let entries = match std::fs::read_dir(&dir) {
        Ok(entries) => entries,
        Err(e) => return Response::error(500, &format!("cannot read checkpoint dir: {e}")),
    };
    let mut names: Vec<String> = entries
        .filter_map(|e| e.ok())
        .filter(|e| e.file_type().map(|t| t.is_file()).unwrap_or(false))
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| !n.starts_with('.') && !n.ends_with(".tmp") && !n.ends_with(".quarantine"))
        .collect();
    names.sort();
    let mut body = String::new();
    for name in &names {
        let content = match std::fs::read_to_string(dir.join(name)) {
            Ok(c) => c,
            Err(e) => {
                return Response::error(500, &format!("cannot read checkpoint file {name}: {e}"))
            }
        };
        let hash = deepdive_core::checkpoint::fnv1a64(content.as_bytes());
        body.push_str(&format!("FILE {name} {} {hash:016x}\n", content.len()));
        body.push_str(&content);
        body.push('\n');
    }
    body.push_str("END\n");
    Response::octet(200, body)
        .with_header("X-DD-Term", state.term().to_string())
        .with_header("X-DD-Files", names.len().to_string())
}

fn healthz(state: &ServeState) -> Response {
    let snap = state.snapshot.load();
    Response::json(
        200,
        &json!({
            "status": "ok",
            "lifecycle": state.lifecycle().as_str(),
            "role": state.role_str(),
            "term": state.term(),
            "epoch": snap.epoch,
            "fingerprint": format!("{:016x}", snap.fingerprint),
            "wal_offset": state.replication().applied_seq.load(Ordering::SeqCst),
            "uptime_secs": state.started.elapsed().as_secs_f64(),
            "relations": snap.db.len(),
            "total_rows": snap.db.total_rows(),
            "marginal_rows": snap.total_marginals(),
        }),
    )
}

/// Readiness, distinct from liveness: 503 while the WAL is replaying
/// (readers would see the pre-replay epoch) and while draining (new work
/// belongs elsewhere). Load balancers route on this; `/healthz` answers
/// "is the process alive" and stays 200 throughout.
///
/// A follower additionally gates on replication: 503 while it has never
/// completed a handshake ("syncing"), when its history diverged from the
/// primary ("diverged" — permanent until re-seeded), or while its epoch
/// lag exceeds `--max-lag-epochs` ("lagging" — clears when it catches up).
fn readyz(state: &ServeState) -> Response {
    let lifecycle = state.lifecycle();
    let snap = state.snapshot.load();
    let mut not_ready: Option<&str> = match lifecycle {
        Lifecycle::Ready => None,
        Lifecycle::Replaying | Lifecycle::Draining => Some(lifecycle.as_str()),
    };
    let repl = state.replication();
    let replication = state.is_follower().then(|| {
        json!({
            "lag_epochs": repl.lag_epochs(),
            "max_lag_epochs": state.max_lag_epochs(),
            "connected": repl.connected.load(Ordering::SeqCst),
            "handshook": repl.handshook.load(Ordering::SeqCst),
            "diverged": repl.diverged.load(Ordering::SeqCst),
        })
    });
    // Self-healing storage gates, in severity order: unrepaired corruption
    // beats fencing beats a dead disk — all three make this node a bad
    // routing target for anything but last-resort reads.
    let mut detail: Option<String> = None;
    if not_ready.is_none() {
        if let Some(why) = state.corrupt_reason() {
            not_ready = Some("corrupt");
            detail = Some(why);
        } else if let Some(why) = state.fenced_reason() {
            not_ready = Some("fenced");
            detail = Some(why);
        } else if let Some(why) = state.storage_fatal_error() {
            not_ready = Some("storage_failed");
            detail = Some(why);
        }
    }
    if not_ready.is_none() && state.is_follower() {
        not_ready = if repl.fatal_error().is_some() {
            Some("diverged")
        } else if !repl.handshook.load(Ordering::SeqCst) {
            Some("syncing")
        } else if repl.lag_epochs() > state.max_lag_epochs() {
            Some("lagging")
        } else {
            None
        };
    }
    let mut body = Map::new();
    body.insert("status".into(), json!(not_ready.unwrap_or("ready")));
    body.insert("role".into(), json!(state.role_str()));
    body.insert("term".into(), json!(state.term()));
    body.insert("epoch".into(), json!(snap.epoch));
    body.insert(
        "wal_offset".into(),
        json!(repl.applied_seq.load(Ordering::SeqCst)),
    );
    if let Some(detail) = detail {
        body.insert("detail".into(), json!(detail));
    }
    if let Some(replication) = replication {
        body.insert("replication".into(), replication);
    }
    let body = Json::Object(body);
    match not_ready {
        None => Response::json(200, &body),
        Some(_) => Response::json(503, &body).with_retry_after(jittered_retry_secs(1)),
    }
}

fn metrics(state: &ServeState) -> Response {
    let snap = state.snapshot.load();
    let mut phases = Map::new();
    for (phase, s) in state.ctx.metrics.snapshot() {
        phases.insert(
            phase,
            json!({
                "wall_secs": s.wall.as_secs_f64(),
                "items": s.items,
                "items_per_sec": s.throughput(),
            }),
        );
    }
    let (wal_records, wal_bytes) = state.wal_gauges();
    let wal_stats = state.wal_stats.lock().clone();
    // Stream geometry for operators watching replication: where the log
    // starts (compaction floor), ends, and is checkpointed through — plus
    // the segment layout compaction works in.
    let (wal_stream, wal_segments, wal_segment_bytes, wal_compactions) = match &state.wal {
        Some(wal) => {
            let wal = wal.lock();
            (
                Some(json!({
                    "stream_id": format!("{:016x}", wal.stream_id()),
                    "base_seq": wal.base_seq(),
                    "next_seq": wal.next_seq(),
                    "checkpoint_seq": wal.checkpoint_seq(),
                    "physical_records": wal.physical_records(),
                })),
                wal.segments() as u64,
                wal.segment_target(),
                wal.compactions(),
            )
        }
        None => (None, 0, 0, 0),
    };
    let ck = state.ckpt_stats.lock().clone();
    Response::json(
        200,
        &json!({
            "epoch": snap.epoch,
            "lifecycle": state.lifecycle().as_str(),
            "requests": state.metrics.to_json(),
            "admission": json!({
                "queue_depth": state.queue_depth(),
                "max_inflight": state.max_inflight,
                "shed_total": state.metrics.shed_total(),
                "rate_limited_total": state.metrics.rate_limited_total(),
                "timeout_total": state.metrics.timeout_total(),
                "panic_total": state.metrics.panic_total(),
            }),
            "subscriptions": {
                let g = state.subs.gauges();
                json!({
                    "active": g.active,
                    "max": g.max,
                    "frames_routed": g.frames_routed,
                    "sheds": g.sheds,
                })
            },
            "wal": json!({
                "enabled": state.wal.is_some(),
                "records": wal_records,
                "bytes": wal_bytes,
                "torn_tail_recovered": wal_stats.torn_tail_recovered,
                "replayed_records": wal_stats.replayed_records,
                "replay_skipped": wal_stats.replay_skipped,
                "stream": wal_stream,
                "segments": wal_segments,
                "segment_bytes": wal_segment_bytes,
                "compactions": wal_compactions,
                "group_commit": state.group_commit_json(),
            }),
            "checkpoint": json!({
                "enabled": state.checkpoint_dir.is_some(),
                "flushes": ck.flushes,
                "full_rewrites": ck.full_rewrites,
                "incremental": json!({
                    "artifacts_written": ck.artifacts_written,
                    "artifacts_skipped": ck.artifacts_skipped,
                    "chain_len": ck.chain_len,
                }),
            }),
            "replication": state.replication().to_json(state.is_follower()),
            "term": state.term(),
            "scrub": state.scrub_json(),
            "storage": json!({
                "resident_bytes": state.budget.resident(),
                "peak_resident_bytes": state.budget.peak_resident(),
                "memory_budget_bytes": state.budget.limit(),
            }),
            "execution": json!({
                "threads": state.ctx.threads(),
                "partitions": state.ctx.partitions(),
                "phases": Json::Object(phases),
            }),
        }),
    )
}

fn row_to_json(schema: Option<&Schema>, row: &Row) -> Json {
    let mut obj = Map::new();
    for (i, v) in row.iter().enumerate() {
        let name = schema
            .and_then(|s| s.columns.get(i))
            .map(|c| c.name.clone())
            .unwrap_or_else(|| format!("c{i}"));
        obj.insert(name, value_to_json(v));
    }
    Json::Object(obj)
}

/// Parse `offset`/`limit` query params, clamping `limit` to the configured
/// page cap.
fn paging(req: &Request, page_limit: usize) -> Result<(usize, usize), Response> {
    let parse = |key: &str, default: usize| -> Result<usize, Response> {
        match req.query_param(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| Response::error(400, &format!("{key}: `{raw}` is not an integer"))),
        }
    };
    let offset = parse("offset", 0)?;
    let limit = parse("limit", page_limit)?.min(page_limit);
    Ok((offset, limit))
}

fn get_relation(req: &Request, name: &str, state: &ServeState) -> Response {
    // Pagination is positional within one epoch's snapshot, so a cursor
    // must stay pinned to the epoch it started on: page 1 reports the
    // epoch, later pages pass `?epoch=` back and keep reading the *same*
    // frozen snapshot even while ingest swaps new ones in. A pinned epoch
    // that has fallen out of the retention ring answers `410 Gone` with the
    // current epoch so the client restarts its scan coherently — strictly
    // better than silently skipping or double-seeing rows across a swap.
    let snap = match req.query_param("epoch") {
        None => state.snapshot.load(),
        Some(raw) => {
            let Ok(epoch) = raw.parse::<u64>() else {
                return Response::error(400, &format!("epoch: `{raw}` is not an integer"));
            };
            match state.snapshot.at_epoch(epoch) {
                Some(snap) => snap,
                None => {
                    let current = state.snapshot.load().epoch;
                    return Response::json(
                        410,
                        &json!({
                            "error": format!(
                                "epoch {epoch} is no longer retained; restart from the \
                                 current epoch"
                            ),
                            "current_epoch": current,
                        }),
                    );
                }
            }
        }
    };
    let Some(rel) = snap.db.relation(name) else {
        return Response::error(404, &format!("no relation `{name}`"));
    };
    let (offset, limit) = match paging(req, state.page_limit) {
        Ok(p) => p,
        Err(resp) => return resp,
    };

    // Any query key naming a column filters on that column (`?m1=7`,
    // `?mtext=Barack+Obama`). Each raw value is parsed ONCE against the
    // column's declared type into a typed predicate (see
    // [`crate::subscriptions::RowFilter`], shared with subscriptions), so
    // matching compares `Value`s directly instead of re-rendering every
    // cell to TSV.
    let pairs = req
        .query
        .iter()
        .filter(|(k, _)| !RESERVED_QUERY_KEYS.contains(&k.as_str()))
        .map(|(k, v)| (k.as_str(), v.as_str()));
    let filter = match RowFilter::parse(rel.schema(), pairs) {
        Ok(f) => f,
        Err(e) => return Response::error(400, &e),
    };

    // Snapshot rows are sorted ascending by full row, so an equality filter
    // on the leading column selects one contiguous range — binary-search it
    // instead of scanning the whole relation.
    let all = rel.rows();
    let scan: &[(Row, i64)] = if filter.unsatisfiable {
        &[]
    } else if let Some(v) = filter.leading_eq() {
        let lo = all.partition_point(|(r, _)| r[0] < *v);
        let hi = all[lo..].partition_point(|(r, _)| r[0] == *v) + lo;
        &all[lo..hi]
    } else {
        all
    };

    let mut total = 0usize;
    let mut rows = Vec::new();
    for (row, count) in scan.iter().filter(|(row, _)| filter.matches(row)) {
        if total >= offset && rows.len() < limit {
            let mut obj = match row_to_json(Some(rel.schema()), row) {
                Json::Object(o) => o,
                _ => unreachable!("row_to_json returns an object"),
            };
            obj.insert("count".into(), json!(*count));
            rows.push(Json::Object(obj));
        }
        total += 1;
    }

    Response::json(
        200,
        &json!({
            "relation": name,
            "epoch": snap.epoch,
            "fingerprint": format!("{:016x}", snap.fingerprint),
            "offset": offset,
            "limit": limit,
            "total": total,
            "rows": rows,
        }),
    )
}

fn get_marginals(req: &Request, name: &str, state: &ServeState) -> Response {
    let snap = state.snapshot.load();
    if !snap.marginals.contains_key(name) {
        return Response::error(
            404,
            &format!("no marginals for `{name}` (not a query relation)"),
        );
    }
    let (offset, limit) = match paging(req, state.page_limit) {
        Ok(p) => p,
        Err(resp) => return resp,
    };
    let parse_p = |key: &str, default: f64| -> Result<f64, Response> {
        match req.query_param(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| Response::error(400, &format!("{key}: `{raw}` is not a number"))),
        }
    };
    let min_p = match parse_p("min_p", 0.0) {
        Ok(p) => p,
        Err(resp) => return resp,
    };
    let max_p = match parse_p("max_p", 1.0) {
        Ok(p) => p,
        Err(resp) => return resp,
    };

    let schema = snap.db.relation(name).map(|r| r.schema());
    let mut total = 0usize;
    let mut rows = Vec::new();
    for (row, p) in snap
        .marginal_rows(name)
        .iter()
        .filter(|(_, p)| *p >= min_p && *p <= max_p)
    {
        if total >= offset && rows.len() < limit {
            let mut obj = match row_to_json(schema, row) {
                Json::Object(o) => o,
                _ => unreachable!("row_to_json returns an object"),
            };
            obj.insert("probability".into(), json!(*p));
            rows.push(Json::Object(obj));
        }
        total += 1;
    }

    Response::json(
        200,
        &json!({
            "relation": name,
            "epoch": snap.epoch,
            "fingerprint": format!("{:016x}", snap.fingerprint),
            "min_p": min_p,
            "max_p": max_p,
            "offset": offset,
            "limit": limit,
            "total": total,
            "rows": rows,
        }),
    )
}

/// Convert one JSON cell to a typed storage value.
fn json_to_value(cell: &Json, ty: ValueType) -> Result<DbValue, String> {
    match cell {
        Json::Null => Ok(DbValue::Null),
        Json::Bool(b) => match ty {
            ValueType::Bool | ValueType::Any => Ok(DbValue::Bool(*b)),
            other => Err(format!("boolean cell for {other} column")),
        },
        Json::Number(n) => match ty {
            ValueType::Int => n
                .as_i64()
                .map(DbValue::Int)
                .ok_or_else(|| "not an i64".into()),
            ValueType::Id => n
                .as_u64()
                .map(DbValue::Id)
                .ok_or_else(|| "not a u64 id".into()),
            ValueType::Float => n
                .as_f64()
                .map(DbValue::Float)
                .ok_or_else(|| "not a float".into()),
            ValueType::Any => Ok(n
                .as_i64()
                .map(DbValue::Int)
                .or_else(|| n.as_f64().map(DbValue::Float))
                .unwrap_or(DbValue::Null)),
            other => Err(format!("numeric cell for {other} column")),
        },
        // Strings parse through the TSV cell grammar, so `"7"` works for an
        // id column and `"\\N"` for NULL — same rules as `deepdive run`.
        Json::String(s) => value_from_tsv(s, ty),
        Json::Array(_) | Json::Object(_) => Err("cell must be a scalar".into()),
    }
}

/// Validate one ingest body (`{"rows": {"Relation": [[cell, ...], ...]}}`)
/// against the live schemas and convert it to base changes. Shared by the
/// live `POST /documents` path and WAL replay — by construction, replay
/// revalidates exactly what an ack validated.
fn parse_ingest_body(
    dd: &DeepDive,
    derived: &HashSet<String>,
    body: &[u8],
) -> Result<Vec<BaseChange>, Response> {
    let Ok(text) = std::str::from_utf8(body) else {
        return Err(Response::error(400, "body is not UTF-8"));
    };
    let body: Json = match serde_json::from_str(text) {
        Ok(v) => v,
        Err(e) => return Err(Response::error(400, &format!("bad JSON: {e}"))),
    };
    let Some(rows) = body.get("rows").and_then(Json::as_object) else {
        return Err(Response::error(
            400,
            "body must be {\"rows\": {relation: [[cell, ...], ...]}}",
        ));
    };

    let mut changes: Vec<BaseChange> = Vec::new();
    for (relation, rel_rows) in rows.iter() {
        if derived.contains(relation) {
            return Err(Response::error(
                400,
                &format!("`{relation}` is derived by rules; ingest base relations only"),
            ));
        }
        let schema = match dd.db.schema(relation) {
            Ok(s) => s,
            Err(_) => {
                return Err(Response::error(
                    400,
                    &format!("unknown relation `{relation}`"),
                ))
            }
        };
        let Some(rel_rows) = rel_rows.as_array() else {
            return Err(Response::error(
                400,
                &format!("`{relation}` must map to an array of rows"),
            ));
        };
        for (i, row_json) in rel_rows.iter().enumerate() {
            let Some(cells) = row_json.as_array() else {
                return Err(Response::error(
                    400,
                    &format!("{relation}[{i}]: row must be an array"),
                ));
            };
            if cells.len() != schema.columns.len() {
                return Err(Response::error(
                    400,
                    &format!(
                        "{relation}[{i}]: {} cells for {} columns",
                        cells.len(),
                        schema.columns.len()
                    ),
                ));
            }
            let mut row = Vec::with_capacity(cells.len());
            for (cell, col) in cells.iter().zip(&schema.columns) {
                match json_to_value(cell, col.ty) {
                    Ok(v) => row.push(v),
                    Err(e) => {
                        return Err(Response::error(
                            400,
                            &format!("{relation}[{i}].{}: {e}", col.name),
                        ))
                    }
                }
            }
            changes.push(BaseChange::insert(relation.clone(), row.into_boxed_slice()));
        }
    }
    if changes.is_empty() {
        return Err(Response::error(400, "no rows to ingest"));
    }
    Ok(changes)
}

/// `POST /documents` body: `{"rows": {"Relation": [[cell, ...], ...]}}`.
///
/// Ack semantics: a 200 means the body is fsync'd in the WAL *and* applied
/// to the served state — it survives `kill -9` from that point on. Any
/// non-200 means the ingest left no durable trace.
fn post_documents(req: &Request, state: &ServeState) -> Response {
    match state.lifecycle() {
        Lifecycle::Ready => {}
        Lifecycle::Replaying => {
            return Response::error(503, "not ready: WAL replay in progress")
                .with_retry_after(jittered_retry_secs(1));
        }
        Lifecycle::Draining => {
            return Response::error(503, "draining for shutdown")
                .with_retry_after(jittered_retry_secs(1));
        }
    }
    if let Some(why) = state.write_block_reason() {
        // Fenced (a newer primary exists), corrupt (scrub found rot it
        // could not repair), or dead disk: acking a write here would break
        // the durability promise or split the brain.
        return Response::error(503, &why).with_retry_after(jittered_retry_secs(2));
    }
    if let Some(bucket) = &state.ingest_bucket {
        if let Err(retry_secs) = bucket.lock().try_take() {
            state.metrics.record_rate_limited();
            return Response::error(429, "ingest rate limit exceeded")
                .with_retry_after(jittered_retry_secs(retry_secs));
        }
    }

    // Group commit: hand the body to the committer and park until this
    // record's batch fsyncs and applies — the response carries the same
    // promise as the inline path below, amortized over the batch. Falls
    // through to the inline path when no committer runs (no WAL, zero
    // linger, a follower) or the channel is already torn down by shutdown.
    let committer = state.committer.lock().clone();
    if let Some(tx) = committer {
        let (reply_tx, reply_rx) = mpsc::channel();
        let sent = tx
            .send(CommitRequest {
                body: req.body.clone(),
                reply: reply_tx,
            })
            .is_ok();
        if sent {
            return match reply_rx.recv() {
                Ok(resp) => resp,
                Err(_) => Response::error(500, "ingest not applied: committer exited mid-batch"),
            };
        }
    }

    // Single writer: everything from validation through the WAL append to
    // the snapshot swap happens under this lock, so concurrent POSTs
    // serialize (and the WAL orders records exactly as they were applied)
    // and readers keep the previous epoch until `store`.
    let mut dd = state.writer.lock();

    let changes = match parse_ingest_body(&dd, &state.derived, &req.body) {
        Ok(changes) => changes,
        Err(resp) => return resp,
    };
    let inserted = changes.len();

    // Durability first: the record must be fsync'd before anything is
    // applied or acknowledged. A failed append acknowledges nothing.
    let wal_before = state.wal.as_ref().map(|wal| wal.lock().mark());
    let mut appended_seq = None;
    if let Some(wal) = &state.wal {
        match wal.lock().append(&req.body) {
            Ok(seq) => appended_seq = Some(seq),
            Err(e) => {
                state.note_storage_error(&e, "WAL append");
                return Response::error(
                    500,
                    &format!("ingest not applied: WAL append failed: {e}"),
                );
            }
        }
    }

    // DRed/IVM: derive exactly what the new rows imply, nothing else.
    let (delta, ivm_result) = match dd.apply_base_changes_traced(changes) {
        Ok(d) => d,
        Err(e) => {
            // The 500 promises "no durable trace", so the just-appended
            // record must come back off the log — otherwise a restart would
            // replay (and possibly apply) an ingest the client was told
            // failed. The writer lock is still held, so nothing appended
            // after our record. A failed cut poisons the log, refusing
            // appends until a checkpoint flush truncates it.
            if let (Some(wal), Some(mark)) = (&state.wal, wal_before) {
                if let Err(re) = wal.lock().rollback_to(&mark) {
                    eprintln!(
                        "deepdive serve: WARNING: could not roll failed ingest off the WAL \
                         ({re}); log poisoned until the next checkpoint flush"
                    );
                }
            }
            return Response::error(500, &format!("ingest not applied: {e}"));
        }
    };

    // Bounded refresh sized to the touched region, then one atomic swap.
    let opts = bounded_options(&state.inference, &state.refresh, delta.total());
    let mut trace = IvmTrace::default();
    trace.absorb(&ivm_result);
    let (epoch, fingerprint) = state.publish_epoch(&dd, 1, &opts, trace);
    if let Some(seq) = appended_seq {
        // Keep the primary's replication books current so `/metrics`
        // reports the same offsets followers resume from.
        state
            .replication
            .applied_seq
            .store(seq + 1, Ordering::SeqCst);
        state.replication.observe_watermark(seq + 1);
    }
    let (wal_records, wal_bytes) = state.wal_gauges();

    Response::json(
        200,
        &json!({
            "epoch": epoch,
            "fingerprint": format!("{:016x}", fingerprint),
            "inserted": inserted,
            "durable": state.wal.is_some(),
            "wal_records": wal_records,
            "wal_bytes": wal_bytes,
            "delta": json!({
                "added_variables": delta.added_variables,
                "removed_variables": delta.removed_variables,
                "added_factors": delta.added_factors,
                "removed_factors": delta.removed_factors,
                "evidence_changes": delta.evidence_changes,
                "total": delta.total(),
            }),
            "refresh_samples": opts.samples,
        }),
    )
}

/// Subscription stream cadence: a heartbeat frame goes out after this much
/// silence (the `GET /wal` discipline), and the frame-wait wakes at least
/// this often to notice shutdown.
const SUB_HEARTBEAT_EVERY: Duration = Duration::from_secs(1);
const SUB_WAIT_TICK: Duration = Duration::from_millis(100);
/// Longest long-poll wait a client may request (`?wait_ms=`).
const SUB_MAX_WAIT: Duration = Duration::from_secs(30);

/// `POST /subscriptions`: register a subscriber and either stream delta
/// frames on this connection (chunked, heartbeats, `mode: "stream"` — the
/// default) or return its id for cursor polling (`mode: "poll"`).
///
/// Body: `{"relation": {"name": R, "where": {col: val}},
///         "marginals": {"name": Q, "min_p": .., "max_p": ..},
///         "mode": "stream"|"poll", "id": optional, "snapshot": bool}`.
///
/// Owns the socket (like `GET /wal`) because stream mode writes an
/// unbounded chunked body. Returns the `ok` bit for the metrics book.
fn post_subscriptions(req: &Request, w: &mut TcpStream, state: &ServeState) -> bool {
    let respond = |w: &mut TcpStream, resp: Response| -> bool {
        let ok = resp.status < 400;
        let _ = resp.write_to(w);
        ok
    };
    match state.lifecycle() {
        Lifecycle::Ready => {}
        Lifecycle::Replaying => {
            return respond(
                w,
                Response::error(503, "not ready: WAL replay in progress")
                    .with_retry_after(jittered_retry_secs(1)),
            );
        }
        Lifecycle::Draining => {
            return respond(
                w,
                Response::error(503, "draining for shutdown")
                    .with_retry_after(jittered_retry_secs(1)),
            );
        }
    }
    let Ok(text) = std::str::from_utf8(&req.body) else {
        return respond(w, Response::error(400, "body is not UTF-8"));
    };
    let body: Json = match serde_json::from_str(text) {
        Ok(v) => v,
        Err(e) => return respond(w, Response::error(400, &format!("bad JSON: {e}"))),
    };
    let mode = body.get("mode").and_then(Json::as_str).unwrap_or("stream");
    if !matches!(mode, "stream" | "poll") {
        return respond(w, Response::error(400, "mode must be `stream` or `poll`"));
    }
    let snap0 = state.snapshot.load();
    let spec = match SubscriptionSpec::parse(&body, &snap0) {
        Ok(spec) => spec,
        Err((status, msg)) => return respond(w, Response::error(status, &msg)),
    };
    let id = body.get("id").and_then(Json::as_str).map(|s| s.to_string());
    let sub = match state.subs.create(spec, id, snap0.epoch) {
        Ok(sub) => sub,
        Err((status, msg)) => {
            let resp = Response::error(status, &msg);
            let resp = if status == 429 || status == 503 {
                resp.with_retry_after(jittered_retry_secs(1))
            } else {
                resp
            };
            return respond(w, resp);
        }
    };

    // Registration-then-load closes the race with a concurrent publish:
    // any delta routed before the subscriber existed is covered by this
    // snapshot, and any frame at-or-below its epoch is dropped as already
    // incorporated.
    let snap = state.snapshot.load();
    sub.ack_through(snap.epoch);

    if mode == "poll" {
        let mut resp = Map::new();
        resp.insert("id".into(), json!(sub.id));
        resp.insert("epoch".into(), json!(snap.epoch));
        if sub.spec.initial_snapshot {
            let frame: Json = serde_json::from_str(&render_snapshot_frame(&sub.spec, &snap))
                .expect("frames render as valid JSON");
            resp.insert("snapshot".into(), frame);
        }
        return respond(w, Response::json(201, &Json::Object(resp)));
    }

    let ok = stream_subscription(w, state, &sub, &snap);
    // A stream-mode subscription lives exactly as long as its connection.
    state.subs.remove(&sub.id);
    ok
}

/// Write one ndjson frame as an HTTP chunk.
fn write_frame(w: &mut TcpStream, frame: &str) -> io::Result<()> {
    let mut line = String::with_capacity(frame.len() + 1);
    line.push_str(frame);
    line.push('\n');
    replication::write_chunk(w, line.as_bytes())
}

/// The streaming half of a subscription: initial snapshot frame, then one
/// delta frame per epoch, 1 s heartbeats through silence, shed/re-base on
/// lag — until the client hangs up or the daemon drains.
fn stream_subscription(
    w: &mut TcpStream,
    state: &ServeState,
    sub: &Arc<Subscriber>,
    first: &Arc<ServeSnapshot>,
) -> bool {
    let header = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\n\
         Transfer-Encoding: chunked\r\nConnection: close\r\n\
         X-DD-Sub: {}\r\nX-DD-Epoch: {}\r\n\r\n",
        sub.id, first.epoch
    );
    if w.write_all(header.as_bytes()).is_err() {
        return false;
    }
    if sub.spec.initial_snapshot
        && write_frame(w, &render_snapshot_frame(&sub.spec, first)).is_err()
    {
        return false;
    }
    // Everything at or below the cursor is already reflected in the
    // client's base state; frames there would be (idempotent) duplicates.
    let mut cursor = first.epoch;
    let mut last_write = Instant::now();
    loop {
        if state.stop_requested() || state.lifecycle() == Lifecycle::Draining {
            break;
        }
        enum Action {
            Frames(Vec<(u64, String)>),
            Lagged(u64),
            Closed,
            Idle,
        }
        let action = {
            let mut q = sub.q.lock();
            if q.closed {
                Action::Closed
            } else if let Some(at) = q.lagged.take() {
                q.frames.clear();
                q.bytes = 0;
                Action::Lagged(at)
            } else if q.frames.is_empty() {
                drop(sub.wait_on(q, SUB_WAIT_TICK));
                Action::Idle
            } else {
                let frames: Vec<(u64, String)> =
                    q.frames.drain(..).map(|f| (f.epoch, f.body)).collect();
                q.bytes = 0;
                let through = frames.last().expect("nonempty").0;
                q.acked_through = q.acked_through.max(through);
                Action::Frames(frames)
            }
        };
        match action {
            Action::Closed => break,
            Action::Frames(frames) => {
                for (epoch, body) in frames {
                    if epoch <= cursor {
                        continue;
                    }
                    if write_frame(w, &body).is_err() {
                        return false;
                    }
                    cursor = epoch;
                }
                last_write = Instant::now();
            }
            Action::Lagged(shed_at) => {
                // The queue overflowed and was cleared: tell the client
                // exactly where continuity broke, then re-base it on the
                // current snapshot. Because routing happens after the swap,
                // this snapshot covers every frame dropped while lagged.
                let snap = state.snapshot.load();
                sub.ack_through(snap.epoch);
                let lag = json!({
                    "type": "lagged",
                    "shed_at": shed_at,
                    "resume_epoch": snap.epoch,
                })
                .to_string();
                if write_frame(w, &lag).is_err()
                    || write_frame(w, &render_snapshot_frame(&sub.spec, &snap)).is_err()
                {
                    return false;
                }
                cursor = snap.epoch;
                last_write = Instant::now();
            }
            Action::Idle => {
                if last_write.elapsed() >= SUB_HEARTBEAT_EVERY {
                    let hb = json!({ "type": "heartbeat", "epoch": cursor }).to_string();
                    if write_frame(w, &hb).is_err() {
                        return false;
                    }
                    last_write = Instant::now();
                }
            }
        }
    }
    let _ = w.write_all(b"0\r\n\r\n");
    let _ = w.flush();
    true
}

/// `GET /subscriptions/<id>?from=<epoch>&wait_ms=<ms>`: the long-poll
/// cursor mode. Frames strictly above `from` are returned *without* being
/// consumed — the next poll's `from` acknowledges them, so a lost response
/// is re-fetched, not lost. A cursor the queue can no longer serve
/// contiguously (shed while away, `from` before the acked floor, or ahead
/// of the server after a restart) gets `reset: true` with a full snapshot
/// frame at the current epoch instead of a silent gap.
fn poll_subscription(req: &Request, id: &str, state: &ServeState) -> Response {
    let current = state.snapshot.load();
    let Some(sub) = state.subs.get(id) else {
        return Response::json(
            404,
            &json!({
                "error": format!("no subscription `{id}` (re-subscribe and re-base)"),
                "current_epoch": current.epoch,
            }),
        );
    };
    let from = match req.query_param("from") {
        None => sub.q.lock().acked_through,
        Some(raw) => match raw.parse::<u64>() {
            Ok(v) => v,
            Err(_) => return Response::error(400, &format!("from: `{raw}` is not an integer")),
        },
    };
    let wait = match req.query_param("wait_ms") {
        None => Duration::ZERO,
        Some(raw) => match raw.parse::<u64>() {
            Ok(ms) => Duration::from_millis(ms).min(SUB_MAX_WAIT),
            Err(_) => return Response::error(400, &format!("wait_ms: `{raw}` is not an integer")),
        },
    };

    let needs_reset = {
        let q = sub.q.lock();
        // A queued frame whose `from_epoch` is above the cursor means the
        // chain between them is gone (frames route contiguously, so this
        // only happens across a shed/restart) — deltas alone can't bridge it.
        let gap = q
            .frames
            .iter()
            .find(|f| f.epoch > from)
            .map(|f| f.from_epoch > from)
            .unwrap_or(false);
        q.lagged.is_some() || from < q.acked_through || from > current.epoch || gap
    };
    if needs_reset {
        {
            let mut q = sub.q.lock();
            q.lagged = None;
        }
        // `ack_through` (not clear): frames beyond the re-base epoch stay
        // queued, so continuity holds from the snapshot forward.
        sub.ack_through(current.epoch);
        let frame: Json = serde_json::from_str(&render_snapshot_frame(&sub.spec, &current))
            .expect("frames render as valid JSON");
        return Response::json(
            200,
            &json!({
                "id": sub.id,
                "reset": true,
                "from": current.epoch,
                "through": current.epoch,
                "frames": [frame],
            }),
        );
    }
    sub.ack_through(from);

    if wait > Duration::ZERO {
        let deadline = Instant::now() + wait;
        while !sub.wait_actionable(SUB_WAIT_TICK.min(wait)) {
            if Instant::now() >= deadline || state.stop_requested() {
                break;
            }
        }
    }

    let (frames, through, lagged_now) = {
        let q = sub.q.lock();
        let mut frames = Vec::new();
        let mut through = from;
        for f in q.frames.iter().filter(|f| f.epoch > from) {
            frames.push(serde_json::from_str(&f.body).expect("frames render as valid JSON"));
            through = f.epoch;
        }
        (frames, through, q.lagged.is_some())
    };
    if lagged_now {
        // Shed while we were waiting: surface it now rather than making the
        // client discover the gap next poll.
        let lag = json!({ "type": "lagged", "resume_epoch": current.epoch });
        return Response::json(
            200,
            &json!({
                "id": sub.id,
                "from": from,
                "through": from,
                "frames": [lag],
                "lagged": true,
            }),
        );
    }
    Response::json(
        200,
        &json!({
            "id": sub.id,
            "from": from,
            "through": through,
            "frames": frames,
        }),
    )
}
