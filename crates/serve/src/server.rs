//! The daemon: a thread-pooled TCP accept loop routing requests against the
//! current [`ServeSnapshot`], plus the single-writer ingest path.
//!
//! Ownership layout:
//!
//! * Readers (`GET /relations`, `/marginals`, `/healthz`, `/metrics`) touch
//!   only the snapshot cell and atomics — they never take the writer lock,
//!   so queries stay fast while an ingest is re-grounding.
//! * `POST /documents` serializes through `Mutex<DeepDive>`: route the new
//!   rows through incremental view maintenance and DRed (§4.1) so only the
//!   touched region re-grounds, run a bounded Gibbs refresh sized to the
//!   grounding delta (§4.2), then publish the next epoch with one pointer
//!   swap. A concurrent reader sees epoch N or N+1, never a mixture.

use crate::http::{ParseError, Request, Response};
use crate::metrics::ServeMetrics;
use crate::snapshot::{ServeSnapshot, SnapshotCell};
use deepdive_core::DeepDive;
use deepdive_inference::{bounded_options, RefreshBudget};
use deepdive_sampler::GibbsOptions;
use deepdive_storage::{
    value_from_tsv, value_to_tsv, BaseChange, ExecutionContext, MemoryBudget, Row, Schema,
    Value as DbValue, ValueType,
};
use parking_lot::Mutex;
use serde_json::{json, Map, Value as Json};
use std::collections::HashSet;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; `127.0.0.1:0` picks a free port (see
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads answering requests (the accept loop is separate).
    pub workers: usize,
    /// Default (and maximum) rows per page on list endpoints.
    pub page_limit: usize,
    /// Gibbs budget for post-ingest refreshes.
    pub refresh: RefreshBudget,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            page_limit: 100,
            refresh: RefreshBudget::default(),
        }
    }
}

/// Everything a request handler can reach, shared across workers.
pub struct ServeState {
    snapshot: SnapshotCell,
    /// The single writer. Only `POST /documents` (and shutdown) lock it.
    writer: Mutex<DeepDive>,
    pub metrics: ServeMetrics,
    budget: Arc<MemoryBudget>,
    ctx: Arc<ExecutionContext>,
    /// Relations derived by rules — not ingestible.
    derived: HashSet<String>,
    /// Full-quality inference options the run was configured with (the
    /// refresh derives bounded options from these).
    inference: GibbsOptions,
    refresh: RefreshBudget,
    page_limit: usize,
    started: Instant,
}

impl ServeState {
    /// The currently served snapshot (for tests and the CLI banner).
    pub fn current(&self) -> Arc<ServeSnapshot> {
        self.snapshot.load()
    }
}

/// A bound, not-yet-started server.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServeState>,
    workers: usize,
}

impl Server {
    /// Materialize the initial snapshot from `dd`'s current state (normally
    /// restored from a checkpoint) and bind the listener. Marginals are
    /// computed once, up front, with the run's full inference options —
    /// serving never pays that cost again until an ingest.
    pub fn new(dd: DeepDive, config: &ServeConfig) -> io::Result<Server> {
        let inference = dd.config.inference.clone();
        let snapshot = ServeSnapshot::capture(&dd, 0, &inference);
        let derived = dd.grounder.engine().program().derived_relations();
        let budget = dd.db.memory_budget().clone();
        let ctx = dd.execution_context().clone();
        let listener = TcpListener::bind(&config.addr)?;
        Ok(Server {
            listener,
            state: Arc::new(ServeState {
                snapshot: SnapshotCell::new(snapshot),
                writer: Mutex::new(dd),
                metrics: ServeMetrics::default(),
                budget,
                ctx,
                derived,
                inference,
                refresh: config.refresh.clone(),
                page_limit: config.page_limit.max(1),
                started: Instant::now(),
            }),
            workers: config.workers.max(1),
        })
    }

    /// The bound address (resolves `:0` to the actual port).
    pub fn addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    pub fn state(&self) -> Arc<ServeState> {
        self.state.clone()
    }

    /// Spawn the accept loop and worker pool; returns the handle used to
    /// reach and stop them.
    pub fn start(self) -> io::Result<ServerHandle> {
        let addr = self.listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(std::sync::Mutex::new(rx));

        let mut threads = Vec::with_capacity(self.workers + 1);
        for _ in 0..self.workers {
            let rx = rx.clone();
            let state = self.state.clone();
            threads.push(std::thread::spawn(move || loop {
                // Hold the receiver lock only for the dequeue.
                let stream = rx.lock().unwrap_or_else(|p| p.into_inner()).recv();
                match stream {
                    Ok(stream) => handle_connection(stream, &state),
                    Err(_) => break, // accept loop dropped the sender
                }
            }));
        }

        let accept_shutdown = shutdown.clone();
        let listener = self.listener;
        threads.push(std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_shutdown.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(stream) = stream {
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
            }
            // Dropping `tx` drains the workers.
        }));

        Ok(ServerHandle {
            addr,
            state: self.state,
            shutdown,
            threads,
        })
    }
}

/// Handle to a running server: address, shared state, clean shutdown.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServeState>,
    shutdown: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn state(&self) -> Arc<ServeState> {
        self.state.clone()
    }

    /// Stop accepting, drain in-flight requests, join every thread.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with one throwaway connection.
        let _ = TcpStream::connect(self.addr);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Block until every serving thread exits (a daemon that runs forever).
    pub fn join(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn handle_connection(stream: TcpStream, state: &ServeState) {
    // A silent peer must not pin a worker forever.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut write_half = stream;
    match Request::parse(&mut reader) {
        Ok(req) => {
            let start = Instant::now();
            let (endpoint, response) = route(&req, state);
            state
                .metrics
                .record(endpoint, start.elapsed(), response.status < 400);
            let _ = response.write_to(&mut write_half);
        }
        Err(ParseError::Bad { status, message }) => {
            let _ = Response::error(status, &message).write_to(&mut write_half);
        }
        Err(ParseError::Io(_)) => {}
    }
}

fn route(req: &Request, state: &ServeState) -> (&'static str, Response) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => ("healthz", healthz(state)),
        ("GET", "/metrics") => ("metrics", metrics(state)),
        ("POST", "/documents") => ("documents", post_documents(req, state)),
        (_, "/healthz" | "/metrics") => ("other", Response::error(405, "use GET")),
        (_, "/documents") => ("other", Response::error(405, "use POST")),
        ("GET", path) => {
            if let Some(name) = path.strip_prefix("/relations/") {
                ("relations", get_relation(req, name, state))
            } else if let Some(name) = path.strip_prefix("/marginals/") {
                ("marginals", get_marginals(req, name, state))
            } else {
                ("other", Response::error(404, "no such route"))
            }
        }
        (_, path) if path.starts_with("/relations/") || path.starts_with("/marginals/") => {
            ("other", Response::error(405, "use GET"))
        }
        _ => ("other", Response::error(404, "no such route")),
    }
}

fn healthz(state: &ServeState) -> Response {
    let snap = state.snapshot.load();
    Response::json(
        200,
        &json!({
            "status": "ok",
            "epoch": snap.epoch,
            "fingerprint": format!("{:016x}", snap.fingerprint),
            "uptime_secs": state.started.elapsed().as_secs_f64(),
            "relations": snap.db.len(),
            "total_rows": snap.db.total_rows(),
            "marginal_rows": snap.total_marginals(),
        }),
    )
}

fn metrics(state: &ServeState) -> Response {
    let snap = state.snapshot.load();
    let mut phases = Map::new();
    for (phase, s) in state.ctx.metrics.snapshot() {
        phases.insert(
            phase,
            json!({
                "wall_secs": s.wall.as_secs_f64(),
                "items": s.items,
                "items_per_sec": s.throughput(),
            }),
        );
    }
    Response::json(
        200,
        &json!({
            "epoch": snap.epoch,
            "requests": state.metrics.to_json(),
            "storage": json!({
                "resident_bytes": state.budget.resident(),
                "peak_resident_bytes": state.budget.peak_resident(),
                "memory_budget_bytes": state.budget.limit(),
            }),
            "execution": json!({
                "threads": state.ctx.threads(),
                "partitions": state.ctx.partitions(),
                "phases": Json::Object(phases),
            }),
        }),
    )
}

fn value_to_json(v: &DbValue) -> Json {
    match v {
        DbValue::Null => Json::Null,
        DbValue::Bool(b) => json!(*b),
        DbValue::Int(i) => json!(*i),
        DbValue::Float(f) => json!(*f),
        DbValue::Text(t) => json!(t.as_ref()),
        DbValue::Id(id) => json!(*id),
    }
}

fn row_to_json(schema: Option<&Schema>, row: &Row) -> Json {
    let mut obj = Map::new();
    for (i, v) in row.iter().enumerate() {
        let name = schema
            .and_then(|s| s.columns.get(i))
            .map(|c| c.name.clone())
            .unwrap_or_else(|| format!("c{i}"));
        obj.insert(name, value_to_json(v));
    }
    Json::Object(obj)
}

/// Parse `offset`/`limit` query params, clamping `limit` to the configured
/// page cap.
fn paging(req: &Request, page_limit: usize) -> Result<(usize, usize), Response> {
    let parse = |key: &str, default: usize| -> Result<usize, Response> {
        match req.query_param(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| Response::error(400, &format!("{key}: `{raw}` is not an integer"))),
        }
    };
    let offset = parse("offset", 0)?;
    let limit = parse("limit", page_limit)?.min(page_limit);
    Ok((offset, limit))
}

fn get_relation(req: &Request, name: &str, state: &ServeState) -> Response {
    let snap = state.snapshot.load();
    let Some(rel) = snap.db.relation(name) else {
        return Response::error(404, &format!("no relation `{name}`"));
    };
    let (offset, limit) = match paging(req, state.page_limit) {
        Ok(p) => p,
        Err(resp) => return resp,
    };

    // Any query key naming a column filters on that column's TSV rendering
    // (`?mtext=Barack+Obama`, `?m1=7`).
    let mut filters: Vec<(usize, &str)> = Vec::new();
    for (key, value) in &req.query {
        if key == "offset" || key == "limit" {
            continue;
        }
        match rel.schema().columns.iter().position(|c| &c.name == key) {
            Some(idx) => filters.push((idx, value)),
            None => {
                return Response::error(400, &format!("`{key}` is not a column of `{name}`"));
            }
        }
    }
    let keep = |row: &Row| -> bool { filters.iter().all(|(i, v)| value_to_tsv(&row[*i]) == **v) };

    let mut total = 0usize;
    let mut rows = Vec::new();
    for (row, count) in rel.rows().iter().filter(|(row, _)| keep(row)) {
        if total >= offset && rows.len() < limit {
            let mut obj = match row_to_json(Some(rel.schema()), row) {
                Json::Object(o) => o,
                _ => unreachable!("row_to_json returns an object"),
            };
            obj.insert("count".into(), json!(*count));
            rows.push(Json::Object(obj));
        }
        total += 1;
    }

    Response::json(
        200,
        &json!({
            "relation": name,
            "epoch": snap.epoch,
            "fingerprint": format!("{:016x}", snap.fingerprint),
            "offset": offset,
            "limit": limit,
            "total": total,
            "rows": rows,
        }),
    )
}

fn get_marginals(req: &Request, name: &str, state: &ServeState) -> Response {
    let snap = state.snapshot.load();
    if !snap.marginals.contains_key(name) {
        return Response::error(
            404,
            &format!("no marginals for `{name}` (not a query relation)"),
        );
    }
    let (offset, limit) = match paging(req, state.page_limit) {
        Ok(p) => p,
        Err(resp) => return resp,
    };
    let parse_p = |key: &str, default: f64| -> Result<f64, Response> {
        match req.query_param(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| Response::error(400, &format!("{key}: `{raw}` is not a number"))),
        }
    };
    let min_p = match parse_p("min_p", 0.0) {
        Ok(p) => p,
        Err(resp) => return resp,
    };
    let max_p = match parse_p("max_p", 1.0) {
        Ok(p) => p,
        Err(resp) => return resp,
    };

    let schema = snap.db.relation(name).map(|r| r.schema());
    let mut total = 0usize;
    let mut rows = Vec::new();
    for (row, p) in snap
        .marginal_rows(name)
        .iter()
        .filter(|(_, p)| *p >= min_p && *p <= max_p)
    {
        if total >= offset && rows.len() < limit {
            let mut obj = match row_to_json(schema, row) {
                Json::Object(o) => o,
                _ => unreachable!("row_to_json returns an object"),
            };
            obj.insert("probability".into(), json!(*p));
            rows.push(Json::Object(obj));
        }
        total += 1;
    }

    Response::json(
        200,
        &json!({
            "relation": name,
            "epoch": snap.epoch,
            "fingerprint": format!("{:016x}", snap.fingerprint),
            "min_p": min_p,
            "max_p": max_p,
            "offset": offset,
            "limit": limit,
            "total": total,
            "rows": rows,
        }),
    )
}

/// Convert one JSON cell to a typed storage value.
fn json_to_value(cell: &Json, ty: ValueType) -> Result<DbValue, String> {
    match cell {
        Json::Null => Ok(DbValue::Null),
        Json::Bool(b) => match ty {
            ValueType::Bool | ValueType::Any => Ok(DbValue::Bool(*b)),
            other => Err(format!("boolean cell for {other} column")),
        },
        Json::Number(n) => match ty {
            ValueType::Int => n
                .as_i64()
                .map(DbValue::Int)
                .ok_or_else(|| "not an i64".into()),
            ValueType::Id => n
                .as_u64()
                .map(DbValue::Id)
                .ok_or_else(|| "not a u64 id".into()),
            ValueType::Float => n
                .as_f64()
                .map(DbValue::Float)
                .ok_or_else(|| "not a float".into()),
            ValueType::Any => Ok(n
                .as_i64()
                .map(DbValue::Int)
                .or_else(|| n.as_f64().map(DbValue::Float))
                .unwrap_or(DbValue::Null)),
            other => Err(format!("numeric cell for {other} column")),
        },
        // Strings parse through the TSV cell grammar, so `"7"` works for an
        // id column and `"\\N"` for NULL — same rules as `deepdive run`.
        Json::String(s) => value_from_tsv(s, ty),
        Json::Array(_) | Json::Object(_) => Err("cell must be a scalar".into()),
    }
}

/// `POST /documents` body: `{"rows": {"Relation": [[cell, ...], ...]}}`.
fn post_documents(req: &Request, state: &ServeState) -> Response {
    let Ok(text) = std::str::from_utf8(&req.body) else {
        return Response::error(400, "body is not UTF-8");
    };
    let body: Json = match serde_json::from_str(text) {
        Ok(v) => v,
        Err(e) => return Response::error(400, &format!("bad JSON: {e}")),
    };
    let Some(rows) = body.get("rows").and_then(Json::as_object) else {
        return Response::error(
            400,
            "body must be {\"rows\": {relation: [[cell, ...], ...]}}",
        );
    };

    // Single writer: everything from validation to the snapshot swap happens
    // under this lock, so concurrent POSTs serialize and readers keep the
    // previous epoch until `store`.
    let mut dd = state.writer.lock();

    let mut changes: Vec<BaseChange> = Vec::new();
    for (relation, rel_rows) in rows.iter() {
        if state.derived.contains(relation) {
            return Response::error(
                400,
                &format!("`{relation}` is derived by rules; ingest base relations only"),
            );
        }
        let schema = match dd.db.schema(relation) {
            Ok(s) => s,
            Err(_) => return Response::error(400, &format!("unknown relation `{relation}`")),
        };
        let Some(rel_rows) = rel_rows.as_array() else {
            return Response::error(400, &format!("`{relation}` must map to an array of rows"));
        };
        for (i, row_json) in rel_rows.iter().enumerate() {
            let Some(cells) = row_json.as_array() else {
                return Response::error(400, &format!("{relation}[{i}]: row must be an array"));
            };
            if cells.len() != schema.columns.len() {
                return Response::error(
                    400,
                    &format!(
                        "{relation}[{i}]: {} cells for {} columns",
                        cells.len(),
                        schema.columns.len()
                    ),
                );
            }
            let mut row = Vec::with_capacity(cells.len());
            for (cell, col) in cells.iter().zip(&schema.columns) {
                match json_to_value(cell, col.ty) {
                    Ok(v) => row.push(v),
                    Err(e) => {
                        return Response::error(400, &format!("{relation}[{i}].{}: {e}", col.name))
                    }
                }
            }
            changes.push(BaseChange::insert(relation.clone(), row.into_boxed_slice()));
        }
    }
    if changes.is_empty() {
        return Response::error(400, "no rows to ingest");
    }
    let inserted = changes.len();

    // DRed/IVM: derive exactly what the new rows imply, nothing else.
    let delta = match dd.apply_base_changes(changes) {
        Ok(d) => d,
        Err(e) => return Response::error(400, &format!("ingest failed: {e}")),
    };

    // Bounded refresh sized to the touched region, then one atomic swap.
    let opts = bounded_options(&state.inference, &state.refresh, delta.total());
    let epoch = state.snapshot.load().epoch + 1;
    let snapshot = ServeSnapshot::capture(&dd, epoch, &opts);
    let fingerprint = snapshot.fingerprint;
    state.snapshot.store(snapshot);

    Response::json(
        200,
        &json!({
            "epoch": epoch,
            "fingerprint": format!("{:016x}", fingerprint),
            "inserted": inserted,
            "delta": json!({
                "added_variables": delta.added_variables,
                "removed_variables": delta.removed_variables,
                "added_factors": delta.added_factors,
                "removed_factors": delta.removed_factors,
                "evidence_changes": delta.evidence_changes,
                "total": delta.total(),
            }),
            "refresh_samples": opts.samples,
        }),
    )
}
