//! Immutable serving snapshots and the epoch-swap cell readers load them
//! through.
//!
//! The consistency model is the paper's §4.2 materialization stance applied
//! to serving: readers never see the database mid-update. Every query is
//! answered from one [`ServeSnapshot`] — an immutable view of relations plus
//! marginals captured together — and the single writer publishes a new
//! snapshot atomically by swapping an `Arc` pointer. A reader that loaded
//! epoch N keeps answering from epoch N even while epoch N+1 is being built;
//! there is no torn state in between.

use deepdive_core::DeepDive;
use deepdive_sampler::GibbsOptions;
use deepdive_storage::{value_to_tsv, DatabaseSnapshot, Row};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// FNV-1a over the snapshot's logical content; two snapshots with the same
/// relations and marginals fingerprint identically, and any visible
/// difference (a row, a count, a probability) changes it. Tests use this to
/// prove reads are never torn: every observed epoch must map to exactly one
/// fingerprint.
fn fnv1a64(bytes: &[u8], mut hash: u64) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

/// One immutable, internally consistent view the daemon serves from.
#[derive(Debug)]
pub struct ServeSnapshot {
    /// Monotonic generation; bumped by every applied ingest.
    pub epoch: u64,
    /// All relations, frozen at capture time.
    pub db: DatabaseSnapshot,
    /// Query-relation marginals from the same state: relation → sorted
    /// `(row, probability)`.
    pub marginals: BTreeMap<String, Vec<(Row, f64)>>,
    /// Content hash over relations and marginals (see [`fingerprint`]).
    pub fingerprint: u64,
}

fn fingerprint(db: &DatabaseSnapshot, marginals: &BTreeMap<String, Vec<(Row, f64)>>) -> u64 {
    let mut h = FNV_OFFSET;
    for name in db.relation_names() {
        let rel = db.relation(name).expect("name came from the snapshot");
        h = fnv1a64(name.as_bytes(), h);
        for (row, count) in rel.rows() {
            for v in row.iter() {
                h = fnv1a64(value_to_tsv(v).as_bytes(), h);
            }
            h = fnv1a64(&count.to_le_bytes(), h);
        }
    }
    for (name, rows) in marginals {
        h = fnv1a64(name.as_bytes(), h);
        for (row, p) in rows {
            for v in row.iter() {
                h = fnv1a64(value_to_tsv(v).as_bytes(), h);
            }
            h = fnv1a64(&p.to_bits().to_le_bytes(), h);
        }
    }
    h
}

impl ServeSnapshot {
    /// Capture relations + marginals from the writer's state. The caller
    /// holds the writer lock, so nothing mutates `dd` mid-capture.
    pub fn capture(dd: &DeepDive, epoch: u64, opts: &GibbsOptions) -> ServeSnapshot {
        let db = dd.db.snapshot();
        let mut marginals: BTreeMap<String, Vec<(Row, f64)>> = BTreeMap::new();
        for ((relation, row), p) in dd.snapshot_marginals(opts) {
            marginals.entry(relation).or_default().push((row, p));
        }
        for rows in marginals.values_mut() {
            rows.sort_by(|a, b| a.0.cmp(&b.0));
        }
        let fingerprint = fingerprint(&db, &marginals);
        ServeSnapshot {
            epoch,
            db,
            marginals,
            fingerprint,
        }
    }

    /// Marginal rows for one query relation (empty slice when unknown).
    pub fn marginal_rows(&self, relation: &str) -> &[(Row, f64)] {
        self.marginals
            .get(relation)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Total marginal rows across all query relations.
    pub fn total_marginals(&self) -> usize {
        self.marginals.values().map(Vec::len).sum()
    }
}

/// How many retired snapshots [`SnapshotCell`] keeps reachable by epoch.
/// Pinned-epoch pagination (`/relations?epoch=N`) works within this window;
/// older epochs answer `410 Gone`. Snapshots are `Arc`s over mostly-shared
/// column storage, so the ring holds references, not copies.
pub const RETAINED_EPOCHS: usize = 8;

/// The epoch-swap cell: readers `load` an `Arc` under a briefly held read
/// lock; the writer `store`s the next snapshot under the write lock. Readers
/// hold the lock only for the pointer clone, never for request handling, so
/// a slow response cannot block publication (and vice versa).
///
/// A short history ring of retired snapshots backs pinned-epoch pagination:
/// a client that captured epoch N on page 1 can keep paging epoch N across
/// swaps until it falls out of the ring.
#[derive(Debug)]
pub struct SnapshotCell {
    current: RwLock<Arc<ServeSnapshot>>,
    retired: Mutex<VecDeque<Arc<ServeSnapshot>>>,
}

impl SnapshotCell {
    pub fn new(snapshot: ServeSnapshot) -> Self {
        SnapshotCell {
            current: RwLock::new(Arc::new(snapshot)),
            retired: Mutex::new(VecDeque::with_capacity(RETAINED_EPOCHS)),
        }
    }

    /// The current snapshot; the returned `Arc` stays valid (and immutable)
    /// across any number of subsequent swaps.
    pub fn load(&self) -> Arc<ServeSnapshot> {
        self.current.read().clone()
    }

    /// Publish a new snapshot. All loads strictly after this return it; the
    /// outgoing snapshot is retired into the history ring.
    pub fn store(&self, snapshot: ServeSnapshot) {
        let next = Arc::new(snapshot);
        let prev = {
            let mut cur = self.current.write();
            std::mem::replace(&mut *cur, next)
        };
        let mut ring = self.retired.lock();
        if ring.len() >= RETAINED_EPOCHS {
            ring.pop_front();
        }
        ring.push_back(prev);
    }

    /// The snapshot at `epoch`, if it is the current one or still retained.
    pub fn at_epoch(&self, epoch: u64) -> Option<Arc<ServeSnapshot>> {
        let cur = self.load();
        if cur.epoch == epoch {
            return Some(cur);
        }
        self.retired
            .lock()
            .iter()
            .rev()
            .find(|s| s.epoch == epoch)
            .cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepdive_storage::{row, Database, Schema, ValueType};

    fn snapshot_of(db: &Database, epoch: u64) -> ServeSnapshot {
        let db = db.snapshot();
        let fingerprint = fingerprint(&db, &BTreeMap::new());
        ServeSnapshot {
            epoch,
            db,
            marginals: BTreeMap::new(),
            fingerprint,
        }
    }

    #[test]
    fn fingerprint_tracks_visible_content() {
        let db = Database::new();
        db.create_relation(
            Schema::build("R")
                .col("x", ValueType::Int)
                .col("t", ValueType::Text)
                .finish(),
        )
        .unwrap();
        db.insert("R", row![1i64, "a"]).unwrap();
        let s1 = snapshot_of(&db, 0);
        let s1_again = snapshot_of(&db, 0);
        assert_eq!(s1.fingerprint, s1_again.fingerprint, "deterministic");

        db.insert("R", row![2i64, "b"]).unwrap();
        let s2 = snapshot_of(&db, 1);
        assert_ne!(s1.fingerprint, s2.fingerprint, "a new row changes it");
    }

    #[test]
    fn cell_swap_preserves_loaded_snapshots() {
        let db = Database::new();
        db.create_relation(Schema::build("R").col("x", ValueType::Int).finish())
            .unwrap();
        db.insert("R", row![1i64]).unwrap();
        let cell = SnapshotCell::new(snapshot_of(&db, 0));

        let before = cell.load();
        db.insert("R", row![2i64]).unwrap();
        cell.store(snapshot_of(&db, 1));
        let after = cell.load();

        assert_eq!(before.epoch, 0);
        assert_eq!(after.epoch, 1);
        // The pre-swap Arc still reads the old, complete state.
        assert_eq!(before.db.relation("R").unwrap().len(), 1);
        assert_eq!(after.db.relation("R").unwrap().len(), 2);
        assert_ne!(before.fingerprint, after.fingerprint);
    }

    #[test]
    fn retired_epochs_stay_reachable_within_the_ring() {
        let db = Database::new();
        db.create_relation(Schema::build("R").col("x", ValueType::Int).finish())
            .unwrap();
        let cell = SnapshotCell::new(snapshot_of(&db, 0));
        for e in 1..=(RETAINED_EPOCHS as u64 + 3) {
            db.insert("R", row![e as i64]).unwrap();
            cell.store(snapshot_of(&db, e));
        }
        let newest = RETAINED_EPOCHS as u64 + 3;
        assert_eq!(cell.at_epoch(newest).unwrap().epoch, newest, "current");
        // The oldest retained epoch is newest - RETAINED_EPOCHS.
        let oldest_kept = newest - RETAINED_EPOCHS as u64;
        assert!(cell.at_epoch(oldest_kept).is_some(), "inside the ring");
        assert!(cell.at_epoch(oldest_kept - 1).is_none(), "retired for good");
        // A retained epoch serves its own frozen row count.
        assert_eq!(
            cell.at_epoch(oldest_kept)
                .unwrap()
                .db
                .relation("R")
                .unwrap()
                .len(),
            oldest_kept as usize
        );
    }
}
