//! `deepdive-serve`: a long-lived HTTP daemon over materialized pipeline
//! state (§4.2 of the DeepDive paper, applied to serving).
//!
//! A completed run's checkpoint is loaded into resident storage once; the
//! daemon then answers relation and marginal queries from an immutable
//! [`ServeSnapshot`] and accepts new documents through the same DRed/IVM
//! path the batch pipeline uses, re-grounding only the touched region and
//! refreshing marginals with a bounded Gibbs pass before atomically
//! publishing the next epoch.
//!
//! Crash + overload posture:
//!
//! * every acknowledged `POST /documents` is fsync'd to a write-ahead log
//!   ([`wal`]) before it is applied — on restart the daemon restores the
//!   checkpoint and replays the WAL through the same ingest path;
//! * admission is bounded (`503 + Retry-After` beyond `max_inflight`),
//!   ingest is rate-limited (429), and slow or stalled peers are cut by
//!   socket timeouts plus a per-request deadline (408);
//! * SIGTERM/SIGINT ([`signals`]) drains in-flight requests, flushes a
//!   final checkpoint, marks the WAL checkpointed, and exits 0. `/readyz`
//!   (distinct from `/healthz`) answers 503 during WAL replay and drain;
//! * a node started with `--follow <primary-url>` ([`replication`]) tails
//!   the primary's WAL over `GET /wal`, persists its own copy, applies
//!   each record through DRed/IVM, and serves reads at bounded epoch lag
//!   while rejecting writes (405).
//!
//! Endpoints:
//!
//! * `GET /relations/{name}?offset=&limit=&<column>=<value>` — paged tuples
//!   with per-column equality filters;
//! * `GET /marginals/{relation}?min_p=&max_p=` — query-relation marginals
//!   with probability thresholds;
//! * `POST /documents` with `{"rows": {relation: [[cell, ...], ...]}}` —
//!   durable incremental ingest;
//! * `GET /healthz`, `GET /readyz`, `GET /metrics` — liveness, readiness,
//!   per-endpoint latency histograms, admission/WAL/replication gauges,
//!   and storage/execution gauges;
//! * `GET /wal?from=<seq>&stream=<id>` — the chunked WAL frame stream a
//!   follower tails (not for interactive use);
//! * `POST /subscriptions` ([`subscriptions`]) — live queries: register a
//!   relation filter and/or marginal threshold band and receive one delta
//!   frame per published epoch, either streamed on the same connection
//!   (chunked ndjson with heartbeats) or fetched by cursor with
//!   `GET /subscriptions/{id}?from=<epoch>&wait_ms=` long-polls. Slow
//!   consumers are shed with an explicit `lagged` frame and re-based on a
//!   fresh snapshot rather than blocking ingest.
//!
//! Everything is hand-rolled over `std::net` — the offline build takes no
//! HTTP or runtime dependencies.

pub mod http;
pub mod metrics;
pub mod replication;
pub mod server;
pub mod signals;
pub mod snapshot;
pub mod subscriptions;
pub mod wal;

pub use metrics::ServeMetrics;
pub use replication::{http_request_json, promote, ReplicationStats};
pub use server::{
    DrainSummary, Lifecycle, ScrubStats, ServeConfig, ServeState, Server, ServerHandle,
};
pub use snapshot::{ServeSnapshot, SnapshotCell};
pub use subscriptions::{SubscriptionRegistry, SubscriptionSpec};
pub use wal::{Wal, WalOptions, WalRecovery, DEFAULT_SEGMENT_BYTES};
