//! `deepdive-serve`: a long-lived HTTP daemon over materialized pipeline
//! state (§4.2 of the DeepDive paper, applied to serving).
//!
//! A completed run's checkpoint is loaded into resident storage once; the
//! daemon then answers relation and marginal queries from an immutable
//! [`ServeSnapshot`] and accepts new documents through the same DRed/IVM
//! path the batch pipeline uses, re-grounding only the touched region and
//! refreshing marginals with a bounded Gibbs pass before atomically
//! publishing the next epoch.
//!
//! Endpoints:
//!
//! * `GET /relations/{name}?offset=&limit=&<column>=<value>` — paged tuples
//!   with per-column equality filters;
//! * `GET /marginals/{relation}?min_p=&max_p=` — query-relation marginals
//!   with probability thresholds;
//! * `POST /documents` with `{"rows": {relation: [[cell, ...], ...]}}` —
//!   incremental ingest;
//! * `GET /healthz`, `GET /metrics` — liveness, per-endpoint latency
//!   histograms, and storage/execution gauges.
//!
//! Everything is hand-rolled over `std::net` — the offline build takes no
//! HTTP or runtime dependencies.

pub mod http;
pub mod metrics;
pub mod server;
pub mod snapshot;

pub use metrics::ServeMetrics;
pub use server::{ServeConfig, ServeState, Server, ServerHandle};
pub use snapshot::{ServeSnapshot, SnapshotCell};
