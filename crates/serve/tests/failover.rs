//! Failover, fencing, and self-healing storage: promote a caught-up
//! follower to primary under a new term, fence the deposed primary,
//! resync a follower the primary compacted past, scrub-and-repair
//! corrupted WAL/checkpoint artifacts, and surface dead-disk faults as a
//! distinct degraded state.
//!
//! Crashes are simulated in-process with [`ServerHandle::abort`] — no
//! drain, no checkpoint flush, no WAL truncation, exactly the disk state
//! `kill -9` leaves. The CI failover-smoke job replays the promote story
//! against the real binary with real signals.

use deepdive_core::apps::{SpouseApp, SpouseAppConfig};
use deepdive_core::faults::points;
use deepdive_core::{Checkpoint, FaultInjector, RunConfig};
use deepdive_corpus::spouse::SpouseCorpus;
use deepdive_corpus::SpouseConfig;
use deepdive_sampler::{GibbsOptions, LearnOptions};
use deepdive_serve::{ServeConfig, Server, ServerHandle};
use deepdive_storage::{BaseChange, Value};
use serde_json::{json, Value as Json};
use std::collections::{BTreeMap, BTreeSet};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn tiny_config() -> SpouseAppConfig {
    SpouseAppConfig {
        corpus: SpouseConfig {
            num_docs: 8,
            num_people: 8,
            num_married_pairs: 4,
            num_sibling_pairs: 4,
            ..Default::default()
        },
        run: RunConfig {
            learn: LearnOptions {
                epochs: 30,
                ..Default::default()
            },
            inference: GibbsOptions {
                burn_in: 20,
                samples: 200,
                clamp_evidence: true,
                ..Default::default()
            },
            threads: 1,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("dd-fo-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("create tmpdir");
    d
}

fn http(addr: SocketAddr, method: &str, path: &str, body: Option<&Json>) -> (u16, Json) {
    let (status, raw) = http_raw(addr, method, path, body);
    let payload = raw.split("\r\n\r\n").nth(1).unwrap_or("");
    (status, serde_json::from_str(payload).unwrap_or(Json::Null))
}

/// Like [`http`] but returns the whole raw response, for endpoints whose
/// bodies are not JSON (or whose error text matters).
fn http_raw(addr: SocketAddr, method: &str, path: &str, body: Option<&Json>) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to daemon");
    let body_text = body
        .map(|b| serde_json::to_string(b).expect("serializable body"))
        .unwrap_or_default();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{}",
        body_text.len(),
        body_text
    )
    .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    (status, raw)
}

fn get(addr: SocketAddr, path: &str) -> (u16, Json) {
    http(addr, "GET", path, None)
}

fn wait_ready(addr: SocketAddr) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, _) = get(addr, "/readyz");
        if status == 200 {
            return;
        }
        assert!(Instant::now() < deadline, "server never became ready");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn wait_epoch(addr: SocketAddr, epoch: u64) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, v) = get(addr, "/healthz");
        assert_eq!(status, 200, "healthz while waiting for epoch: {v}");
        if v.get("epoch").and_then(Json::as_u64) >= Some(epoch) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "never reached epoch {epoch}: {v}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Poll until `probe` returns true, with a generous deadline.
fn wait_for(what: &str, mut probe: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(120);
    while !probe() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn replication_metrics(addr: SocketAddr) -> Json {
    let (status, v) = get(addr, "/metrics");
    assert_eq!(status, 200, "GET /metrics: {v}");
    v.get("replication").cloned().expect("replication section")
}

fn value_to_cell(v: &Value) -> Json {
    match v {
        Value::Null => Json::Null,
        Value::Bool(b) => json!(*b),
        Value::Int(i) => json!(*i),
        Value::Float(f) => json!(*f),
        Value::Text(t) => json!(t.as_ref()),
        Value::Id(id) => json!(*id),
    }
}

fn ingest_body(changes: &[BaseChange]) -> Json {
    let mut by_relation: BTreeMap<String, Vec<Json>> = BTreeMap::new();
    for ch in changes {
        let cells: Vec<Json> = ch.row.iter().map(value_to_cell).collect();
        by_relation
            .entry(ch.relation.clone())
            .or_default()
            .push(Json::Array(cells));
    }
    let mut rows = serde_json::Map::new();
    for (relation, rel_rows) in by_relation {
        rows.insert(relation, Json::Array(rel_rows));
    }
    json!({ "rows": Json::Object(rows) })
}

/// Canonical form of a relation as served: the set of JSON row renderings.
/// Set-based, because checkpoint-restored state serves the same rows but
/// not necessarily in the same page order as live-grown state.
fn served_relation(addr: SocketAddr, name: &str) -> BTreeSet<String> {
    let (status, v) = get(addr, &format!("/relations/{name}?limit=100000"));
    assert_eq!(status, 200, "GET /relations/{name}: {v}");
    v.get("rows")
        .and_then(Json::as_array)
        .expect("rows array")
        .iter()
        .map(|row| serde_json::to_string(row).unwrap())
        .collect()
}

/// Marginal rows with the probability stripped: the variables a node
/// serves marginals for. Probabilities are refresh-schedule-dependent
/// after a checkpoint restore, so recovery tests compare rows, not bits
/// (the same convention as the replication suite).
fn marginal_rows(addr: SocketAddr, name: &str) -> BTreeSet<String> {
    let (status, v) = get(addr, &format!("/marginals/{name}?limit=100000"));
    assert_eq!(status, 200, "GET /marginals/{name}: {v}");
    v.get("rows")
        .and_then(Json::as_array)
        .expect("rows array")
        .iter()
        .map(|row| {
            let mut obj = row.as_object().expect("row object").clone();
            obj.remove("probability");
            serde_json::to_string(&Json::Object(obj)).unwrap()
        })
        .collect()
}

/// Assert two nodes serve the same derived relations and the same marginal
/// variable sets — the recovery-grade convergence check.
fn assert_state_parity(a: SocketAddr, b: SocketAddr, context: &str) {
    for relation in ["MarriedCandidate", "MarriedMentions_Ev"] {
        assert_eq!(
            served_relation(a, relation),
            served_relation(b, relation),
            "{context}: relation {relation} diverged"
        );
    }
    assert_eq!(
        marginal_rows(a, "MarriedMentions"),
        marginal_rows(b, "MarriedMentions"),
        "{context}: marginal variable sets diverged"
    );
}

/// A primary/follower pair over the same base state (two identical
/// deterministic pipeline runs), with per-node config tweaks for the
/// compaction- and scrub-shaped scenarios.
struct Pair {
    primary: ServerHandle,
    follower: ServerHandle,
    primary_cfg: ServeConfig,
    follower_cfg: ServeConfig,
    p_ckpt: PathBuf,
    f_ckpt: PathBuf,
    held_out: Vec<Json>,
    partial: SpouseCorpus,
}

fn spawn_pair(
    tag: &str,
    config: &SpouseAppConfig,
    corpus: &SpouseCorpus,
    hold_out: usize,
    tweak_primary: impl FnOnce(&mut ServeConfig),
    tweak_follower: impl FnOnce(&mut ServeConfig),
) -> Pair {
    let mut partial = corpus.clone();
    let mut held_docs = Vec::new();
    while held_docs.len() < hold_out {
        let doc = partial.documents.pop().expect("enough documents");
        if doc.text.trim().is_empty() {
            continue;
        }
        held_docs.push(doc);
    }
    held_docs.reverse();

    let mut primary_app =
        SpouseApp::build_with_corpus(config.clone(), partial.clone()).expect("primary app");
    primary_app.run().expect("primary base run");
    let held_out: Vec<Json> = held_docs
        .iter()
        .map(|doc| {
            let changes = primary_app.document_changes(&doc.text);
            assert!(!changes.is_empty(), "held-out document produced no rows");
            ingest_body(&changes)
        })
        .collect();

    let mut follower_app =
        SpouseApp::build_with_corpus(config.clone(), partial.clone()).expect("follower app");
    follower_app.run().expect("follower base run");

    let p_wal = tmpdir(&format!("{tag}-p-wal"));
    let f_wal = tmpdir(&format!("{tag}-f-wal"));
    let p_ckpt = tmpdir(&format!("{tag}-p-ckpt"));
    let f_ckpt = tmpdir(&format!("{tag}-f-ckpt"));
    primary_app
        .dd
        .save_checkpoint(&Checkpoint::new(p_ckpt.clone()).expect("primary checkpoint"))
        .expect("save primary checkpoint");
    follower_app
        .dd
        .save_checkpoint(&Checkpoint::new(f_ckpt.clone()).expect("follower checkpoint"))
        .expect("save follower checkpoint");

    let mut primary_cfg = ServeConfig {
        page_limit: 100_000,
        wal_dir: Some(p_wal),
        checkpoint_dir: Some(p_ckpt.clone()),
        ..Default::default()
    };
    tweak_primary(&mut primary_cfg);
    let primary = Server::new(primary_app.dd, &primary_cfg)
        .expect("bind primary")
        .start()
        .expect("start primary");
    let p_addr = primary.addr();
    wait_ready(p_addr);

    let mut follower_cfg = ServeConfig {
        page_limit: 100_000,
        wal_dir: Some(f_wal),
        checkpoint_dir: Some(f_ckpt.clone()),
        follow: Some(format!("http://{p_addr}")),
        ..Default::default()
    };
    tweak_follower(&mut follower_cfg);
    let follower = Server::new(follower_app.dd, &follower_cfg)
        .expect("bind follower")
        .start()
        .expect("start follower");

    Pair {
        primary,
        follower,
        primary_cfg,
        follower_cfg,
        p_ckpt,
        f_ckpt,
        held_out,
        partial,
    }
}

/// A standalone primary (WAL + checkpoint, no replication) for the scrub
/// and disk-fault scenarios.
fn spawn_single(tag: &str, faults: Arc<FaultInjector>) -> (ServerHandle, PathBuf, PathBuf, Json) {
    let config = tiny_config();
    let corpus = deepdive_corpus::spouse::generate(&config.corpus);
    let mut partial = corpus.clone();
    let doc = loop {
        let doc = partial.documents.pop().expect("enough documents");
        if !doc.text.trim().is_empty() {
            break doc;
        }
    };
    let mut app = SpouseApp::build_with_corpus(config, partial).expect("app");
    app.run().expect("base run");
    let body = ingest_body(&app.document_changes(&doc.text));
    let wal = tmpdir(&format!("{tag}-wal"));
    let ckpt = tmpdir(&format!("{tag}-ckpt"));
    app.dd
        .save_checkpoint(&Checkpoint::new(ckpt.clone()).expect("checkpoint"))
        .expect("save checkpoint");
    let cfg = ServeConfig {
        page_limit: 100_000,
        wal_dir: Some(wal.clone()),
        checkpoint_dir: Some(ckpt.clone()),
        faults,
        ..Default::default()
    };
    let handle = Server::new(app.dd, &cfg)
        .expect("bind")
        .start()
        .expect("start");
    wait_ready(handle.addr());
    (handle, wal, ckpt, body)
}

/// The tentpole chaos story: `kill -9` the primary, promote the caught-up
/// follower under a bumped term, keep writing, then bring the old primary
/// back as a follower of the new one — it adopts the higher term and the
/// two nodes converge to bit-identical state.
#[test]
fn promote_after_primary_crash_and_rejoin_converges_bit_identical() {
    let config = tiny_config();
    let corpus = deepdive_corpus::spouse::generate(&config.corpus);
    let pair = spawn_pair("promote", &config, &corpus, 2, |_| {}, |_| {});
    let (p_addr, f_addr) = (pair.primary.addr(), pair.follower.addr());
    wait_ready(f_addr);

    // Doc A lands on the primary and replicates; then the primary dies
    // hard, mid-service, with no drain and no checkpoint flush.
    let (status, v) = http(p_addr, "POST", "/documents", Some(&pair.held_out[0]));
    assert_eq!(status, 200, "POST doc A: {v}");
    wait_epoch(f_addr, 1);
    pair.primary.abort();

    // Promote the follower. It was caught up, so no force is needed; the
    // term moves 0 -> 1 and the node starts answering as a primary.
    let (status, v) = http(f_addr, "POST", "/promote", None);
    assert_eq!(status, 200, "POST /promote: {v}");
    assert_eq!(v["promoted"], json!(true), "promoted: {v}");
    assert_eq!(v["term"].as_u64(), Some(1), "term bumped: {v}");
    assert_eq!(v["role"], json!("primary"));
    let (_, health) = get(f_addr, "/healthz");
    assert_eq!(health["role"], json!("primary"), "healthz role: {health}");
    assert_eq!(health["term"].as_u64(), Some(1), "healthz term: {health}");
    let (status, ready) = get(f_addr, "/readyz");
    assert_eq!(status, 200, "promoted node is ready: {ready}");
    assert_eq!(ready["role"], json!("primary"));

    // Writes now land on the promoted node.
    let (status, v) = http(f_addr, "POST", "/documents", Some(&pair.held_out[1]));
    assert_eq!(status, 200, "POST doc B on the new primary: {v}");
    assert_eq!(v.get("durable").and_then(Json::as_bool), Some(true));

    // The old primary rejoins as a follower of the new one: it replays
    // doc A from its own WAL, sees term 2 in the stream handshake, adopts
    // it, and fetches doc B.
    let mut app2 = SpouseApp::build_with_corpus(config, pair.partial.clone()).expect("rejoin app");
    app2.dd
        .load_checkpoint(&Checkpoint::new(pair.p_ckpt.clone()).expect("checkpoint"))
        .expect("restore old primary checkpoint");
    let mut rejoin_cfg = pair.primary_cfg.clone();
    rejoin_cfg.addr = "127.0.0.1:0".into();
    rejoin_cfg.follow = Some(format!("http://{f_addr}"));
    let server2 = Server::new(app2.dd, &rejoin_cfg).expect("rebind old primary");
    assert_eq!(server2.pending_replay(), 1, "doc A replays locally");
    let handle2 = server2.start().expect("start rejoined node");
    let r_addr = handle2.addr();
    wait_ready(r_addr);
    wait_epoch(r_addr, 2);

    // Convergence: same epoch, same offset, same derived rows and marginal
    // variables — and the rejoined node adopted the new primary's term.
    let (_, new_health) = get(f_addr, "/healthz");
    let (_, old_health) = get(r_addr, "/healthz");
    assert_eq!(new_health["epoch"], old_health["epoch"], "epoch parity");
    assert_eq!(
        new_health["wal_offset"], old_health["wal_offset"],
        "offset parity"
    );
    assert_eq!(
        old_health["term"].as_u64(),
        Some(1),
        "rejoined node adopted term 1: {old_health}"
    );
    assert_eq!(old_health["role"], json!("follower"));
    assert_state_parity(f_addr, r_addr, "after rejoin");

    let _ = handle2.graceful_shutdown().expect("drain rejoined node");
    let _ = pair
        .follower
        .graceful_shutdown()
        .expect("drain new primary");
}

/// Fencing: after a promotion the deposed primary is still alive and still
/// thinks it leads. The first peer that talks to it with the newer term
/// fences it — it stops taking writes and says so on `/readyz`.
#[test]
fn stale_primary_is_fenced_by_a_newer_term() {
    let config = tiny_config();
    let corpus = deepdive_corpus::spouse::generate(&config.corpus);
    let pair = spawn_pair("fence", &config, &corpus, 2, |_| {}, |_| {});
    let (p_addr, f_addr) = (pair.primary.addr(), pair.follower.addr());
    wait_ready(f_addr);
    let (status, v) = http(p_addr, "POST", "/documents", Some(&pair.held_out[0]));
    assert_eq!(status, 200, "POST doc A: {v}");
    wait_epoch(f_addr, 1);

    // Promote the follower while the old primary is still running.
    let (status, v) = http(f_addr, "POST", "/promote", None);
    assert_eq!(status, 200, "POST /promote: {v}");
    assert_eq!(v["term"].as_u64(), Some(1));

    // The old primary still accepts writes — nobody has told it yet.
    let (status, _) = http(p_addr, "POST", "/documents", Some(&pair.held_out[1]));
    assert_eq!(status, 200, "unfenced stale primary still acks writes");

    // A peer carrying term 1 shows up on its replication endpoint: the
    // stale primary (still at term 0) must refuse the stream AND fence
    // itself.
    let (status, raw) = http_raw(p_addr, "GET", "/wal?from=0&term=1", None);
    assert_eq!(status, 409, "stale-term stream refused: {raw}");
    assert!(
        raw.contains("stale term"),
        "409 names the stale term: {raw}"
    );
    assert!(
        raw.contains("X-DD-Term: 1"),
        "409 carries the newer term: {raw}"
    );

    // Fenced: writes are refused with the fencing story, /readyz routes
    // traffic away, /healthz stays alive for diagnosis.
    let (status, v) = http(p_addr, "POST", "/documents", Some(&pair.held_out[1]));
    assert_eq!(status, 503, "fenced primary refuses writes: {v}");
    assert!(
        v["error"].as_str().unwrap_or("").contains("fenced"),
        "503 explains the fence: {v}"
    );
    let (status, v) = get(p_addr, "/readyz");
    assert_eq!(status, 503);
    assert_eq!(v["status"], json!("fenced"), "readyz verdict: {v}");
    assert!(
        v["detail"].as_str().unwrap_or("").contains("--follow"),
        "readyz tells the operator how to rejoin: {v}"
    );
    let (status, _) = get(p_addr, "/healthz");
    assert_eq!(status, 200, "fenced node is still alive for reads");

    pair.primary.abort();
    let _ = pair
        .follower
        .graceful_shutdown()
        .expect("drain new primary");
}

/// Checkpoint resync: a follower that comes back after the primary
/// compacted its resume point away gets `410 Gone` — and instead of dying
/// it fetches the primary's checkpoint bundle over `GET /checkpoint`,
/// installs it (hash-verified), and resumes tailing from the bundle's
/// recorded offset.
#[test]
fn follower_resyncs_from_checkpoint_bundle_after_410() {
    let config = tiny_config();
    let corpus = deepdive_corpus::spouse::generate(&config.corpus);
    // Aggressive compaction on the primary: every checkpointed record is
    // trimmed (retain 0), segments seal after every record, the flusher
    // runs constantly.
    let pair = spawn_pair(
        "resync",
        &config,
        &corpus,
        3,
        |cfg| {
            cfg.wal_retain = 0;
            cfg.wal_segment_bytes = 1;
            cfg.flush_interval = Duration::from_millis(50);
        },
        |_| {},
    );
    let (p_addr, f_addr) = (pair.primary.addr(), pair.follower.addr());
    wait_ready(f_addr);

    // Doc A replicates; then the follower dies hard at offset 1.
    let (status, v) = http(p_addr, "POST", "/documents", Some(&pair.held_out[0]));
    assert_eq!(status, 200, "POST doc A: {v}");
    wait_epoch(f_addr, 1);
    pair.follower.abort();

    // Docs B and C land on the primary; wait until compaction has trimmed
    // the log past the dead follower's resume point (base_seq > 1).
    for body in &pair.held_out[1..] {
        let (status, v) = http(p_addr, "POST", "/documents", Some(body));
        assert_eq!(status, 200, "POST on primary: {v}");
    }
    wait_for("primary compaction past seq 1", || {
        let (_, m) = get(p_addr, "/metrics");
        m["wal"]["stream"]["base_seq"].as_u64().unwrap_or(0) > 1
    });

    // Restart the follower over its stale WAL. Its tailer asks for seq 1,
    // gets 410, and must resync from the primary's checkpoint bundle
    // rather than report a fatal error.
    let mut app2 =
        SpouseApp::build_with_corpus(config, pair.partial.clone()).expect("follower restart app");
    app2.dd
        .load_checkpoint(&Checkpoint::new(pair.f_ckpt.clone()).expect("checkpoint"))
        .expect("restore follower checkpoint");
    let handle2 = Server::new(app2.dd, &pair.follower_cfg)
        .expect("rebind follower")
        .start()
        .expect("restart follower");
    let f_addr2 = handle2.addr();
    wait_for("checkpoint resync", || {
        replication_metrics(f_addr2)["resyncs"]
            .as_u64()
            .unwrap_or(0)
            >= 1
    });
    wait_ready(f_addr2);

    // The resynced follower holds the primary's exact state: equal offset
    // and identical served rows (epochs differ — the resync re-based its
    // epoch counter — and marginal bits differ after a checkpoint restore,
    // so convergence is asserted set-wise).
    let p_off = replication_metrics(p_addr);
    wait_for("offset parity after resync", || {
        replication_metrics(f_addr2)["wal_offset"] == p_off["wal_offset"]
    });
    assert_state_parity(p_addr, f_addr2, "after resync");
    assert!(
        replication_metrics(f_addr2)["diverged"] == json!(false),
        "a resync is not a divergence"
    );

    // Replication still works on top of the resynced state.
    let (status, v) = http(p_addr, "POST", "/documents", Some(&pair.held_out[0]));
    assert_eq!(status, 200, "POST doc D: {v}");
    wait_for("doc D replicated", || {
        replication_metrics(f_addr2)["wal_offset"].as_u64()
            == replication_metrics(p_addr)["wal_offset"].as_u64()
    });
    assert_state_parity(p_addr, f_addr2, "after doc D");

    let _ = handle2.graceful_shutdown().expect("drain follower");
    let _ = pair.primary.graceful_shutdown().expect("drain primary");
}

/// Anti-entropy scrub on a primary: a corrupted checkpoint artifact is
/// found by re-hashing, quarantined, and repaired by a full rewrite from
/// the live state; a corrupted WAL frame is found by re-reading every
/// segment and repaired by checkpointing the applied state and rewriting
/// the log clean. The scrub books appear in `/metrics` and `report.json`.
#[test]
fn scrub_quarantines_and_repairs_corrupt_artifacts() {
    let (handle, wal_dir, ckpt_dir, body) = spawn_single("scrub", Arc::new(FaultInjector::new()));
    let addr = handle.addr();
    let state = handle.state();

    // A clean pass finds nothing.
    state.scrub_now();
    let (_, m) = get(addr, "/metrics");
    assert_eq!(m["scrub"]["runs"].as_u64(), Some(1), "scrub ran: {m}");
    assert_eq!(m["scrub"]["corrupt_found"].as_u64(), Some(0));

    // Rot a checkpoint artifact on disk. The scrub must catch the hash
    // mismatch, quarantine the artifact, and rewrite the chain.
    let victim = ckpt_dir.join("db.ckpt");
    let mut rotted = std::fs::read(&victim).expect("read db.ckpt");
    let mid = rotted.len() / 2;
    rotted[mid] ^= 0x01;
    std::fs::write(&victim, &rotted).expect("rot db.ckpt");
    state.scrub_now();
    assert!(
        ckpt_dir.join("db.ckpt.quarantine").exists(),
        "rotted artifact was quarantined"
    );
    Checkpoint::new(ckpt_dir.clone())
        .and_then(|c| c.verify().map(|_| ()))
        .expect("checkpoint verifies clean after repair");

    // Rot one byte of a WAL frame. First make sure a record is on the log.
    let (status, v) = http(addr, "POST", "/documents", Some(&body));
    assert_eq!(status, 200, "POST doc: {v}");
    let seg = std::fs::read_dir(&wal_dir)
        .expect("read wal dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "wal"))
        .expect("a WAL segment exists");
    let mut bytes = std::fs::read(&seg).expect("read segment");
    assert!(bytes.len() > 64, "segment holds a frame");
    let last = bytes.len() - 8;
    bytes[last] ^= 0x01;
    std::fs::write(&seg, &bytes).expect("rot segment");
    state.scrub_now();

    let (_, m) = get(addr, "/metrics");
    assert_eq!(m["scrub"]["runs"].as_u64(), Some(3), "three passes: {m}");
    assert_eq!(
        m["scrub"]["corrupt_found"].as_u64(),
        Some(2),
        "both corruptions found: {m}"
    );
    assert_eq!(
        m["scrub"]["repaired"].as_u64(),
        Some(2),
        "both corruptions repaired: {m}"
    );

    // Repaired means *usable*: the node is still ready, still accepts
    // writes, and a fresh scrub pass is clean.
    let (status, v) = get(addr, "/readyz");
    assert_eq!(status, 200, "repaired node is ready: {v}");
    let (status, v) = http(addr, "POST", "/documents", Some(&body));
    assert_eq!(status, 200, "repaired node accepts writes: {v}");
    state.scrub_now();
    let (_, m) = get(addr, "/metrics");
    assert_eq!(
        m["scrub"]["corrupt_found"].as_u64(),
        Some(2),
        "the post-repair pass found nothing new: {m}"
    );

    let _ = handle.graceful_shutdown().expect("drain");
    let report: Json = serde_json::from_str(
        &std::fs::read_to_string(wal_dir.join("report.json")).expect("report.json"),
    )
    .expect("report parses");
    assert_eq!(report["scrub"]["corrupt_found"].as_u64(), Some(2));
    assert_eq!(report["scrub"]["repaired"].as_u64(), Some(2));
}

/// A follower whose checkpoint rots repairs itself from its *peer*: the
/// scrub quarantines the artifact and resyncs from the primary's bundle.
#[test]
fn follower_scrub_repairs_from_the_primary() {
    let config = tiny_config();
    let corpus = deepdive_corpus::spouse::generate(&config.corpus);
    let pair = spawn_pair("fscrub", &config, &corpus, 1, |_| {}, |_| {});
    let (p_addr, f_addr) = (pair.primary.addr(), pair.follower.addr());
    wait_ready(f_addr);
    let (status, v) = http(p_addr, "POST", "/documents", Some(&pair.held_out[0]));
    assert_eq!(status, 200, "POST doc A: {v}");
    wait_epoch(f_addr, 1);

    let victim = pair.f_ckpt.join("weights.ckpt");
    let mut rotted = std::fs::read(&victim).expect("read weights.ckpt");
    let mid = rotted.len() / 2;
    rotted[mid] ^= 0x01;
    std::fs::write(&victim, &rotted).expect("rot weights.ckpt");

    pair.follower.state().scrub_now();
    let (_, m) = get(f_addr, "/metrics");
    assert_eq!(m["scrub"]["corrupt_found"].as_u64(), Some(1), "found: {m}");
    assert_eq!(m["scrub"]["repaired"].as_u64(), Some(1), "repaired: {m}");
    assert!(
        pair.f_ckpt.join("weights.ckpt.quarantine").exists(),
        "rotted artifact was quarantined"
    );
    assert_eq!(
        m["replication"]["resyncs"].as_u64(),
        Some(1),
        "peer repair is a checkpoint resync: {m}"
    );
    Checkpoint::new(pair.f_ckpt.clone())
        .and_then(|c| c.verify().map(|_| ()))
        .expect("follower checkpoint verifies clean after peer repair");
    wait_ready(f_addr);
    assert_state_parity(p_addr, f_addr, "after peer repair");

    let _ = pair.follower.graceful_shutdown().expect("drain follower");
    let _ = pair.primary.graceful_shutdown().expect("drain primary");
}

/// Dead disk: an `ENOSPC` during a WAL append refuses the ingest with the
/// failing path in the message, latches the node into the `storage_failed`
/// degraded state (reads fine, writes 503), and stops the serve loop so
/// the CLI can exit 8.
#[test]
fn enospc_during_wal_append_degrades_to_storage_failed() {
    let faults = Arc::new(FaultInjector::new());
    let (handle, _wal_dir, _ckpt_dir, body) = spawn_single("enospc", Arc::clone(&faults));
    let addr = handle.addr();
    let state = handle.state();

    faults.arm(points::DISK_ENOSPC, 1);
    let (status, v) = http(addr, "POST", "/documents", Some(&body));
    assert_eq!(status, 500, "ENOSPC refuses the ingest: {v}");
    let err = v["error"].as_str().unwrap_or("");
    assert!(err.contains("os error 28"), "names the errno: {v}");
    assert!(err.contains("seg-"), "names the failing segment path: {v}");

    // The failure latches: this node no longer trusts its disk.
    let fatal = state
        .storage_fatal_error()
        .expect("storage failure latched");
    assert!(
        fatal.contains("WAL"),
        "latched error names the write: {fatal}"
    );
    let (status, v) = get(addr, "/readyz");
    assert_eq!(status, 503);
    assert_eq!(v["status"], json!("storage_failed"), "readyz verdict: {v}");
    assert!(
        v["detail"].as_str().unwrap_or("").contains("os error 28"),
        "readyz carries the detail: {v}"
    );
    let (status, v) = http(addr, "POST", "/documents", Some(&body));
    assert_eq!(status, 503, "subsequent writes refused: {v}");
    let (status, _) = get(addr, "/healthz");
    assert_eq!(status, 200, "reads survive a dead disk");

    handle.abort();
}
