//! End-to-end daemon tests over a real spouse pipeline: snapshot
//! consistency under concurrent reads and writes, and batch/incremental
//! parity for derived relations.

use deepdive_core::apps::{SpouseApp, SpouseAppConfig};
use deepdive_core::RunConfig;
use deepdive_corpus::SpouseConfig;
use deepdive_sampler::{GibbsOptions, LearnOptions};
use deepdive_serve::{ServeConfig, Server};
use deepdive_storage::{BaseChange, Value};
use serde_json::{json, Value as Json};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn app_config() -> SpouseAppConfig {
    SpouseAppConfig {
        corpus: SpouseConfig {
            num_docs: 16,
            num_people: 12,
            num_married_pairs: 4,
            num_sibling_pairs: 4,
            ..Default::default()
        },
        run: RunConfig {
            learn: LearnOptions {
                epochs: 30,
                ..Default::default()
            },
            inference: GibbsOptions {
                burn_in: 20,
                samples: 200,
                clamp_evidence: true,
                ..Default::default()
            },
            threads: 1,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Minimal HTTP/1.1 client: one request, `Connection: close`, JSON out.
fn http(addr: SocketAddr, method: &str, path: &str, body: Option<&Json>) -> (u16, Json) {
    let mut stream = TcpStream::connect(addr).expect("connect to daemon");
    let body_text = body
        .map(|b| serde_json::to_string(b).expect("serializable body"))
        .unwrap_or_default();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{}",
        body_text.len(),
        body_text
    )
    .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let payload = raw.split("\r\n\r\n").nth(1).unwrap_or("");
    let value = serde_json::from_str(payload).unwrap_or(Json::Null);
    (status, value)
}

fn get(addr: SocketAddr, path: &str) -> (u16, Json) {
    http(addr, "GET", path, None)
}

/// Render one storage value as the JSON cell the POST body format takes.
fn value_to_cell(v: &Value) -> Json {
    match v {
        Value::Null => Json::Null,
        Value::Bool(b) => json!(*b),
        Value::Int(i) => json!(*i),
        Value::Float(f) => json!(*f),
        Value::Text(t) => json!(t.as_ref()),
        Value::Id(id) => json!(*id),
    }
}

/// Group base changes into the `{"rows": {relation: [[cell, ...], ...]}}`
/// ingest body.
fn ingest_body(changes: &[BaseChange]) -> Json {
    let mut by_relation: BTreeMap<String, Vec<Json>> = BTreeMap::new();
    for ch in changes {
        let cells: Vec<Json> = ch.row.iter().map(value_to_cell).collect();
        by_relation
            .entry(ch.relation.clone())
            .or_default()
            .push(Json::Array(cells));
    }
    let mut rows = serde_json::Map::new();
    for (relation, rel_rows) in by_relation {
        rows.insert(relation, Json::Array(rel_rows));
    }
    json!({ "rows": Json::Object(rows) })
}

/// Canonical form of a relation as served: sorted `row -> count` pairs
/// rendered from the endpoint's JSON rows.
fn served_relation(addr: SocketAddr, name: &str) -> BTreeSet<String> {
    let (status, v) = get(addr, &format!("/relations/{name}?limit=100000"));
    assert_eq!(status, 200, "GET /relations/{name}: {v}");
    v.get("rows")
        .and_then(Json::as_array)
        .expect("rows array")
        .iter()
        .map(|row| serde_json::to_string(row).unwrap())
        .collect()
}

/// Readers hammering `/marginals` during concurrent `/documents` posts must
/// only ever observe complete epochs: a given epoch always serves the same
/// fingerprint (and the same totals), never a mixture of pre- and
/// post-update state.
#[test]
fn concurrent_readers_never_see_torn_snapshots() {
    let mut app = SpouseApp::build(app_config()).expect("build spouse app");
    app.run().expect("batch run");

    // Three extra documents to ingest while readers are active.
    let extra_docs = [
        "Alice Young and her husband Bob Young toured the museum.",
        "Carol King and her husband David King hosted a dinner.",
        "Erin Stone and her husband Frank Stone sailed north.",
    ];
    let batches: Vec<Vec<BaseChange>> = extra_docs
        .iter()
        .map(|text| app.document_changes(text))
        .collect();
    assert!(batches.iter().all(|b| !b.is_empty()));

    let serve_config = ServeConfig {
        page_limit: 100_000,
        ..Default::default()
    };
    let server = Server::new(app.dd, &serve_config).expect("bind server");
    let handle = server.start().expect("start server");
    let addr = handle.addr();

    let (status, before) = get(addr, "/marginals/MarriedMentions");
    assert_eq!(status, 200, "{before}");
    let initial_total = before.get("total").and_then(Json::as_u64).unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let stop = stop.clone();
            std::thread::spawn(move || {
                // epoch -> set of (fingerprint, total) observed under it.
                let mut seen: HashMap<u64, BTreeSet<(String, u64)>> = HashMap::new();
                while !stop.load(Ordering::Relaxed) {
                    let (status, v) = get(addr, "/marginals/MarriedMentions?limit=100000");
                    assert_eq!(status, 200, "{v}");
                    let epoch = v.get("epoch").and_then(Json::as_u64).unwrap();
                    let fp = v
                        .get("fingerprint")
                        .and_then(Json::as_str)
                        .unwrap()
                        .to_string();
                    let total = v.get("total").and_then(Json::as_u64).unwrap();
                    seen.entry(epoch).or_default().insert((fp, total));
                }
                seen
            })
        })
        .collect();

    let num_batches = batches.len() as u64;
    for batch in &batches {
        let (status, v) = http(addr, "POST", "/documents", Some(&ingest_body(batch)));
        assert_eq!(status, 200, "POST /documents: {v}");
    }
    stop.store(true, Ordering::Relaxed);

    let mut observed: HashMap<u64, BTreeSet<(String, u64)>> = HashMap::new();
    for r in readers {
        for (epoch, states) in r.join().expect("reader thread") {
            observed.entry(epoch).or_default().extend(states);
        }
    }
    for (epoch, states) in &observed {
        assert_eq!(
            states.len(),
            1,
            "epoch {epoch} served {} distinct states — torn snapshot: {states:?}",
            states.len()
        );
    }
    assert!(
        observed.keys().all(|&e| e <= num_batches),
        "epochs beyond the posted batches: {:?}",
        observed.keys().collect::<Vec<_>>()
    );

    let (status, after) = get(addr, "/marginals/MarriedMentions");
    assert_eq!(status, 200);
    assert_eq!(
        after.get("epoch").and_then(Json::as_u64),
        Some(num_batches),
        "every ingest bumped the epoch"
    );
    let final_total = after.get("total").and_then(Json::as_u64).unwrap();
    assert!(
        final_total > initial_total,
        "ingested documents grew the marginal count ({initial_total} -> {final_total})"
    );

    handle.shutdown();
}

/// Incrementally ingesting a held-out document through `POST /documents`
/// must leave the derived relations exactly where a full batch run over the
/// complete corpus puts them (§4.1: DRed delta rules compute the same
/// fixpoint as re-running from scratch).
#[test]
fn incremental_ingest_matches_full_batch_derived_relations() {
    let config = app_config();
    let full_corpus = deepdive_corpus::spouse::generate(&config.corpus);

    // Full batch: every document, one run.
    let mut batch_app =
        SpouseApp::build_with_corpus(config.clone(), full_corpus.clone()).expect("batch app");
    batch_app.run().expect("batch run");

    // Incremental: hold out the last document, run, then ingest it live.
    let mut partial_corpus = full_corpus.clone();
    let held_out = partial_corpus.documents.pop().expect("at least one doc");
    let mut inc_app =
        SpouseApp::build_with_corpus(config, partial_corpus).expect("incremental app");
    inc_app.run().expect("incremental base run");
    let changes = inc_app.document_changes(&held_out.text);
    assert!(!changes.is_empty(), "held-out document produced no rows");

    let serve_config = ServeConfig {
        page_limit: 100_000,
        ..Default::default()
    };
    let server = Server::new(inc_app.dd, &serve_config).expect("bind server");
    let handle = server.start().expect("start server");
    let addr = handle.addr();

    let (status, v) = http(addr, "POST", "/documents", Some(&ingest_body(&changes)));
    assert_eq!(status, 200, "POST /documents: {v}");
    assert!(v.get("delta").and_then(|d| d.get("total")).is_some());

    // Derived relations reached through DRed/IVM must match the batch run's.
    for relation in ["MarriedCandidate", "MarriedMentions_Ev"] {
        let served = served_relation(addr, relation);
        let batch: BTreeSet<String> = batch_app
            .dd
            .db
            .rows_counted(relation)
            .expect("batch relation")
            .iter()
            .map(|(row, count)| {
                let mut obj = serde_json::Map::new();
                let schema = batch_app.dd.db.schema(relation).unwrap();
                for (i, v) in row.iter().enumerate() {
                    obj.insert(schema.columns[i].name.clone(), value_to_cell(v));
                }
                obj.insert("count".into(), json!(*count));
                serde_json::to_string(&Json::Object(obj)).unwrap()
            })
            .collect();
        assert_eq!(
            served, batch,
            "derived relation {relation} diverged between incremental and batch"
        );
    }

    handle.shutdown();
}

/// `/relations/{name}?col=value` filters parse the value once into a typed
/// predicate; results must be exactly what the old per-row TSV-rendering
/// comparison produced, including the match-nothing cases.
#[test]
fn typed_relation_filters_match_rendered_scan() {
    let mut app = SpouseApp::build(app_config()).expect("build spouse app");
    app.run().expect("batch run");

    let serve_config = ServeConfig {
        page_limit: 100_000,
        ..Default::default()
    };
    let server = Server::new(app.dd, &serve_config).expect("bind server");
    let handle = server.start().expect("start server");
    let addr = handle.addr();

    // Full Mention relation as the oracle.
    let (status, all) = get(addr, "/relations/Mention?limit=100000");
    assert_eq!(status, 200, "{all}");
    let rows = all.get("rows").and_then(Json::as_array).expect("rows");
    assert!(!rows.is_empty(), "spouse corpus always yields mentions");

    // Pick a sentence id that appears in the data and filter on it — the
    // leading column, so this also exercises the binary-search range path.
    let probe_s = rows[0].get("s").and_then(Json::as_u64).expect("s cell");
    let expect: BTreeSet<String> = rows
        .iter()
        .filter(|r| r.get("s").and_then(Json::as_u64) == Some(probe_s))
        .map(|r| serde_json::to_string(r).unwrap())
        .collect();
    let (status, filtered) = get(
        addr,
        &format!("/relations/Mention?s={probe_s}&limit=100000"),
    );
    assert_eq!(status, 200, "{filtered}");
    let got: BTreeSet<String> = filtered
        .get("rows")
        .and_then(Json::as_array)
        .expect("rows")
        .iter()
        .map(|r| serde_json::to_string(r).unwrap())
        .collect();
    assert_eq!(got, expect, "leading-column id filter diverged from scan");
    assert_eq!(
        filtered.get("total").and_then(Json::as_u64),
        Some(expect.len() as u64)
    );

    // Non-leading column, and a text column combined with it.
    let probe_m = rows[0].get("m").and_then(Json::as_u64).expect("m cell");
    let probe_t = rows[0].get("mtext").and_then(Json::as_str).expect("mtext");
    let encoded_t = probe_t.replace(' ', "+");
    let (status, one) = get(
        addr,
        &format!("/relations/Mention?m={probe_m}&mtext={encoded_t}&limit=100000"),
    );
    assert_eq!(status, 200, "{one}");
    let got = one.get("rows").and_then(Json::as_array).expect("rows");
    let expect_both: Vec<&Json> = rows
        .iter()
        .filter(|r| {
            r.get("m").and_then(Json::as_u64) == Some(probe_m)
                && r.get("mtext").and_then(Json::as_str) == Some(probe_t)
        })
        .collect();
    assert_eq!(got.len(), expect_both.len(), "combined filter diverged");

    // Non-canonical renderings and unparseable input match nothing (the old
    // string comparison never matched them either) — 200 with zero rows.
    for bad in [format!("0{probe_s}"), "abc".into(), format!("+{probe_s}")] {
        let (status, v) = get(addr, &format!("/relations/Mention?s={bad}"));
        assert_eq!(status, 200, "{v}");
        assert_eq!(
            v.get("total").and_then(Json::as_u64),
            Some(0),
            "`?s={bad}` must match nothing"
        );
    }

    // Unknown columns are still a 400.
    let (status, _) = get(addr, "/relations/Mention?nope=1");
    assert_eq!(status, 400);

    handle.shutdown();
}
