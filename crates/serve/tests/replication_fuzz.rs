//! Property tests for the WAL stream framing: the frame decoder must
//! reassemble identical records from *any* chunking of the wire bytes
//! (chunk boundaries carry no meaning), tolerate interleaved heartbeats,
//! and — when a byte anywhere in the stream is corrupted — yield at most
//! a verified prefix of the original records, never a wrong one.

use deepdive_serve::wal::frame::{self, FrameDecoder};
use proptest::prelude::*;

/// Build the wire image: optional heartbeat runs between frames, exactly
/// as an idle primary interleaves them.
fn wire_image(records: &[Vec<u8>], heartbeats: &[usize]) -> Vec<u8> {
    let mut wire = Vec::new();
    for (i, payload) in records.iter().enumerate() {
        let beats = heartbeats.get(i).copied().unwrap_or(0);
        wire.extend(vec![frame::HEARTBEAT; beats]);
        wire.extend_from_slice(&frame::encode(payload));
    }
    wire.extend(vec![
        frame::HEARTBEAT;
        heartbeats.get(records.len()).copied().unwrap_or(0)
    ]);
    wire
}

/// Feed `wire` to a decoder in chunks cut at `cuts` (arbitrary positions,
/// duplicates and out-of-range allowed), returning every decoded record
/// and the terminal error, if any.
fn decode_chunked(wire: &[u8], cuts: &[usize]) -> (Vec<Vec<u8>>, Option<frame::FrameError>) {
    let mut bounds: Vec<usize> = cuts.iter().map(|c| c % (wire.len() + 1)).collect();
    bounds.push(0);
    bounds.push(wire.len());
    bounds.sort_unstable();
    bounds.dedup();

    let mut decoder = FrameDecoder::new();
    let mut out = Vec::new();
    for window in bounds.windows(2) {
        decoder.feed(&wire[window[0]..window[1]]);
        loop {
            match decoder.next() {
                Ok(Some(payload)) => out.push(payload),
                Ok(None) => break,
                Err(e) => return (out, Some(e)),
            }
        }
    }
    (out, None)
}

fn records_strategy() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..200), 1..10)
}

fn heartbeats_strategy() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0usize..4, 0..11)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Splitting the stream at arbitrary byte positions — mid-header,
    /// mid-payload, mid-heartbeat-run — decodes to exactly the records
    /// that were encoded, in order, with nothing left over.
    #[test]
    fn arbitrary_chunking_decodes_identically(
        records in records_strategy(),
        heartbeats in heartbeats_strategy(),
        cuts in proptest::collection::vec(any::<usize>(), 0..16),
    ) {
        let wire = wire_image(&records, &heartbeats);
        let (decoded, err) = decode_chunked(&wire, &cuts);
        prop_assert!(err.is_none(), "clean stream errored: {err:?}");
        prop_assert_eq!(decoded, records);
    }

    /// Flip one byte anywhere in the stream: the decoder may stop short
    /// (error, or wait forever for bytes that will never come), but every
    /// record it does yield is a verbatim prefix of the originals — a
    /// corrupted frame is never applied, and never mutates a neighbor.
    #[test]
    fn corrupt_byte_yields_at_most_a_verified_prefix(
        records in records_strategy(),
        heartbeats in heartbeats_strategy(),
        cuts in proptest::collection::vec(any::<usize>(), 0..16),
        flip_at in any::<usize>(),
        flip_mask in 1u8..=255,
    ) {
        let mut wire = wire_image(&records, &heartbeats);
        let at = flip_at % wire.len();
        wire[at] ^= flip_mask;
        let (decoded, _err) = decode_chunked(&wire, &cuts);
        prop_assert!(
            decoded.len() <= records.len(),
            "decoded more records than were sent"
        );
        prop_assert_eq!(
            &decoded[..],
            &records[..decoded.len()],
            "a decoded record differs from what was encoded"
        );
    }

    /// A mid-record stream cut (truncation at any point) decodes the
    /// complete frames before the cut and then just waits for more bytes —
    /// it neither errors nor invents a record from the partial tail.
    #[test]
    fn truncated_stream_never_yields_a_partial_record(
        records in records_strategy(),
        cut_at in any::<usize>(),
    ) {
        let wire = wire_image(&records, &[]);
        let at = cut_at % (wire.len() + 1);
        let (decoded, err) = decode_chunked(&wire[..at], &[]);
        prop_assert!(err.is_none(), "truncation is not corruption: {err:?}");
        prop_assert_eq!(
            &decoded[..],
            &records[..decoded.len()],
            "a decoded record differs from what was encoded"
        );
        // Feeding the rest of the bytes completes the stream exactly.
        let mut decoder = FrameDecoder::new();
        decoder.feed(&wire);
        let mut full = Vec::new();
        while let Ok(Some(p)) = decoder.next() {
            full.push(p);
        }
        prop_assert_eq!(full, records);
    }
}
