//! Ingest fast-path tests: group commit under concurrent bursts, crash
//! chaos across segment rotation and compaction, incremental-checkpoint
//! restore through a delta chain, follower parity over a rotating +
//! compacting primary WAL, and readiness steadiness while the flusher
//! works.
//!
//! Crashes are simulated in-process via [`ServerHandle::abort`] — no
//! drain, no final checkpoint, no WAL truncation — the disk state
//! `kill -9` leaves.

use deepdive_core::apps::{SpouseApp, SpouseAppConfig};
use deepdive_core::faults::points;
use deepdive_core::{Checkpoint, FaultInjector, RunConfig};
use deepdive_corpus::SpouseConfig;
use deepdive_sampler::{GibbsOptions, LearnOptions};
use deepdive_serve::{ServeConfig, Server};
use deepdive_storage::{BaseChange, Value};
use serde_json::{json, Value as Json};
use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn tiny_config() -> SpouseAppConfig {
    SpouseAppConfig {
        corpus: SpouseConfig {
            num_docs: 6,
            num_people: 8,
            num_married_pairs: 4,
            num_sibling_pairs: 4,
            ..Default::default()
        },
        run: RunConfig {
            learn: LearnOptions {
                epochs: 30,
                ..Default::default()
            },
            inference: GibbsOptions {
                burn_in: 20,
                samples: 200,
                clamp_evidence: true,
                ..Default::default()
            },
            threads: 1,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("dd-fastpath-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("create tmpdir");
    d
}

fn http(addr: SocketAddr, method: &str, path: &str, body: Option<&Json>) -> (u16, Json) {
    let mut stream = TcpStream::connect(addr).expect("connect to daemon");
    let body_text = body
        .map(|b| serde_json::to_string(b).expect("serializable body"))
        .unwrap_or_default();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{}",
        body_text.len(),
        body_text
    )
    .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let payload = raw.split("\r\n\r\n").nth(1).unwrap_or("");
    let value = serde_json::from_str(payload).unwrap_or(Json::Null);
    (status, value)
}

/// Like [`http`] but tolerant of the connection dying mid-exchange (the
/// chaos tests race requests against `abort`). `None` = no usable reply.
fn try_http(addr: SocketAddr, method: &str, path: &str, body: &Json) -> Option<(u16, Json)> {
    let mut stream = TcpStream::connect(addr).ok()?;
    let body_text = serde_json::to_string(body).ok()?;
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{}",
        body_text.len(),
        body_text
    )
    .ok()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw).ok()?;
    let status: u16 = raw.split_whitespace().nth(1)?.parse().ok()?;
    let payload = raw.split("\r\n\r\n").nth(1).unwrap_or("");
    Some((status, serde_json::from_str(payload).unwrap_or(Json::Null)))
}

fn get(addr: SocketAddr, path: &str) -> (u16, Json) {
    http(addr, "GET", path, None)
}

fn wait_ready(addr: SocketAddr) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, _) = get(addr, "/readyz");
        if status == 200 {
            return;
        }
        assert!(Instant::now() < deadline, "server never became ready");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn value_to_cell(v: &Value) -> Json {
    match v {
        Value::Null => Json::Null,
        Value::Bool(b) => json!(*b),
        Value::Int(i) => json!(*i),
        Value::Float(f) => json!(*f),
        Value::Text(t) => json!(t.as_ref()),
        Value::Id(id) => json!(*id),
    }
}

fn ingest_body(changes: &[BaseChange]) -> Json {
    let mut by_relation: BTreeMap<String, Vec<Json>> = BTreeMap::new();
    for ch in changes {
        let cells: Vec<Json> = ch.row.iter().map(value_to_cell).collect();
        by_relation
            .entry(ch.relation.clone())
            .or_default()
            .push(Json::Array(cells));
    }
    let mut rows = serde_json::Map::new();
    for (relation, rel_rows) in by_relation {
        rows.insert(relation, Json::Array(rel_rows));
    }
    json!({ "rows": Json::Object(rows) })
}

fn served_relation(addr: SocketAddr, name: &str) -> BTreeSet<String> {
    let (status, v) = get(addr, &format!("/relations/{name}?limit=100000"));
    assert_eq!(status, 200, "GET /relations/{name}: {v}");
    v.get("rows")
        .and_then(Json::as_array)
        .expect("rows array")
        .iter()
        .map(|row| serde_json::to_string(row).unwrap())
        .collect()
}

/// Deterministic spouse-sentence documents the extraction rules recognize.
const DOC_TEXTS: [&str; 4] = [
    "Alice Young and her husband Bob Young toured the museum.",
    "Carol King and her husband David King hosted a dinner.",
    "Erin Stone and her husband Frank Stone sailed north.",
    "Grace Hill and her husband Henry Hill opened a shop.",
];

/// A burst of concurrent ingests is coalesced by the committer: every
/// request acks durable, all land (epoch == burst size), and the WAL took
/// strictly fewer fsyncs than records — the gauges prove the batching.
#[test]
fn concurrent_burst_is_group_committed_into_fewer_fsyncs() {
    let config = tiny_config();
    let mut app = SpouseApp::build(config).expect("app");
    app.run().expect("base run");
    let bodies: Vec<Json> = (0..12)
        .map(|i| {
            let changes = app.document_changes(DOC_TEXTS[i % DOC_TEXTS.len()]);
            assert!(!changes.is_empty());
            ingest_body(&changes)
        })
        .collect();

    let serve_config = ServeConfig {
        workers: 8,
        page_limit: 100_000,
        wal_dir: Some(tmpdir("burst-wal")),
        linger: Duration::from_millis(100),
        ..Default::default()
    };
    let server = Server::new(app.dd, &serve_config).expect("bind server");
    let handle = server.start().expect("start server");
    let addr = handle.addr();
    wait_ready(addr);

    let workers: Vec<_> = bodies
        .into_iter()
        .map(|body| {
            std::thread::spawn(move || {
                let (status, v) = http(addr, "POST", "/documents", Some(&body));
                assert_eq!(status, 200, "burst ingest: {v}");
                assert_eq!(v.get("durable").and_then(Json::as_bool), Some(true));
            })
        })
        .collect();
    for w in workers {
        w.join().expect("ingest thread");
    }

    let (_, health) = get(addr, "/healthz");
    assert_eq!(health.get("epoch").and_then(Json::as_u64), Some(12));
    let (_, metrics) = get(addr, "/metrics");
    let gc = &metrics["wal"]["group_commit"];
    let batches = gc["batches"].as_u64().expect("batches gauge");
    let records = gc["records"].as_u64().unwrap_or(12);
    assert_eq!(gc["fsyncs_saved"].as_u64(), Some(12 - batches));
    assert!((1..12).contains(&batches), "12 records, {batches} batches");
    assert!(records >= 12 || gc["avg_batch"].as_f64().unwrap_or(0.0) > 1.0);

    handle.shutdown();
}

/// Chaos: `kill -9` lands mid-burst while the WAL is rotating segments
/// every few hundred bytes. Every acked ingest must survive replay;
/// nothing beyond the burst can materialize.
#[test]
fn crash_mid_group_commit_and_rotation_keeps_every_acked_ingest() {
    let config = tiny_config();
    let corpus = deepdive_corpus::spouse::generate(&config.corpus);
    let mut app = SpouseApp::build_with_corpus(config.clone(), corpus.clone()).expect("app");
    app.run().expect("base run");

    let ckpt_dir = tmpdir("chaos-ckpt");
    let wal_dir = tmpdir("chaos-wal");
    app.dd
        .save_checkpoint(&Checkpoint::new(ckpt_dir.clone()).expect("checkpoint"))
        .expect("save checkpoint");
    let bodies: Vec<Json> = (0..8)
        .map(|i| ingest_body(&app.document_changes(DOC_TEXTS[i % DOC_TEXTS.len()])))
        .collect();

    let serve_config = ServeConfig {
        workers: 8,
        page_limit: 100_000,
        wal_dir: Some(wal_dir),
        checkpoint_dir: Some(ckpt_dir.clone()),
        linger: Duration::from_millis(5),
        wal_segment_bytes: 512, // rotate constantly under the burst
        ..Default::default()
    };
    let server = Server::new(app.dd, &serve_config).expect("bind server");
    let handle = server.start().expect("start server");
    let addr = handle.addr();
    wait_ready(addr);

    let acked = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let workers: Vec<_> = bodies
        .into_iter()
        .map(|body| {
            let acked = acked.clone();
            std::thread::spawn(move || {
                if let Some((200, _)) = try_http(addr, "POST", "/documents", &body) {
                    acked.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                }
            })
        })
        .collect();
    // Let part of the burst through, then pull the plug mid-commit.
    std::thread::sleep(Duration::from_millis(12));
    handle.abort();
    for w in workers {
        w.join().expect("ingest thread");
    }
    let acked = acked.load(std::sync::atomic::Ordering::SeqCst);

    let mut app2 = SpouseApp::build_with_corpus(config, corpus).expect("restart app");
    app2.dd
        .load_checkpoint(&Checkpoint::new(ckpt_dir).expect("checkpoint"))
        .expect("restore checkpoint");
    let server2 = Server::new(app2.dd, &serve_config).expect("rebind");
    let replayable = server2.pending_replay() as u64;
    assert!(
        replayable >= acked,
        "every acked ingest must be on disk: {acked} acked, {replayable} replayable"
    );
    assert!(replayable <= 8, "nothing beyond the burst can appear");
    let handle2 = server2.start().expect("restart");
    wait_ready(handle2.addr());
    let (_, health) = get(handle2.addr(), "/healthz");
    assert_eq!(
        health.get("epoch").and_then(Json::as_u64),
        Some(replayable),
        "replay applied exactly the durable records"
    );
    handle2.shutdown();
}

/// Chaos: the injected crash hits compaction while it is unlinking
/// checkpointed segments. The flusher survives the error, the daemon keeps
/// serving, and the restart finishes the compaction and replays cleanly.
#[test]
fn crash_mid_compaction_is_survivable_and_restart_completes_it() {
    let config = tiny_config();
    let corpus = deepdive_corpus::spouse::generate(&config.corpus);
    let mut app = SpouseApp::build_with_corpus(config.clone(), corpus.clone()).expect("app");
    app.run().expect("base run");

    let ckpt_dir = tmpdir("compact-ckpt");
    let wal_dir = tmpdir("compact-wal");
    app.dd
        .save_checkpoint(&Checkpoint::new(ckpt_dir.clone()).expect("checkpoint"))
        .expect("save checkpoint");
    let bodies: Vec<Json> = (0..4)
        .map(|i| ingest_body(&app.document_changes(DOC_TEXTS[i])))
        .collect();

    let faults = Arc::new(FaultInjector::new());
    faults.arm(points::WAL_COMPACT_CRASH, 1);
    let serve_config = ServeConfig {
        page_limit: 100_000,
        wal_dir: Some(wal_dir.clone()),
        checkpoint_dir: Some(ckpt_dir.clone()),
        wal_segment_bytes: 1, // every record seals its own segment
        wal_retain: 0,        // compact everything the checkpoint covers
        flush_interval: Duration::from_millis(50),
        faults,
        ..Default::default()
    };
    let server = Server::new(app.dd, &serve_config).expect("bind server");
    let handle = server.start().expect("start server");
    let addr = handle.addr();
    wait_ready(addr);

    for body in &bodies {
        let (status, v) = http(addr, "POST", "/documents", Some(body));
        assert_eq!(status, 200, "ingest: {v}");
    }
    // Wait for a flush + the (injected-crash) compaction, then a healthy
    // compaction pass on a later tick.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (status, metrics) = get(addr, "/metrics");
        assert_eq!(status, 200, "daemon must keep serving through the crash");
        if metrics["wal"]["compactions"].as_u64().unwrap_or(0) >= 2
            && metrics["wal"]["records"].as_u64() == Some(0)
        {
            assert_eq!(
                metrics["wal"]["segments"].as_u64(),
                Some(1),
                "recovered compaction frees the checkpointed segments"
            );
            break;
        }
        assert!(
            Instant::now() < deadline,
            "compaction never recovered: {metrics}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    let before = served_relation(addr, "MarriedCandidate");
    handle.abort();

    let mut app2 = SpouseApp::build_with_corpus(config, corpus).expect("restart app");
    app2.dd
        .load_checkpoint(&Checkpoint::new(ckpt_dir).expect("checkpoint"))
        .expect("restore checkpoint");
    let server2 = Server::new(app2.dd, &serve_config).expect("rebind");
    assert_eq!(server2.pending_replay(), 0, "flushes covered every ingest");
    let handle2 = server2.start().expect("restart");
    wait_ready(handle2.addr());
    assert_eq!(
        served_relation(handle2.addr(), "MarriedCandidate"),
        before,
        "state diverged across crash-during-compaction"
    );
    handle2.shutdown();
}

/// Incremental checkpointing chains a base plus ≥2 deltas across
/// flush-interval-driven flushes; a crash then restores by composing the
/// chain — bit-for-bit the pre-crash state, with nothing left to replay.
#[test]
fn incremental_checkpoint_chain_restores_base_plus_deltas() {
    let config = tiny_config();
    let corpus = deepdive_corpus::spouse::generate(&config.corpus);
    let mut app = SpouseApp::build_with_corpus(config.clone(), corpus.clone()).expect("app");
    app.run().expect("base run");

    let ckpt_dir = tmpdir("delta-ckpt");
    let wal_dir = tmpdir("delta-wal");
    app.dd
        .save_checkpoint(&Checkpoint::new(ckpt_dir.clone()).expect("checkpoint"))
        .expect("save checkpoint");
    let bodies: Vec<Json> = (0..3)
        .map(|i| ingest_body(&app.document_changes(DOC_TEXTS[i])))
        .collect();

    let serve_config = ServeConfig {
        page_limit: 100_000,
        wal_dir: Some(wal_dir),
        checkpoint_dir: Some(ckpt_dir.clone()),
        flush_interval: Duration::from_millis(50),
        checkpoint_full_every: 100, // keep chaining; no full rewrite mid-test
        ..Default::default()
    };
    let server = Server::new(app.dd, &serve_config).expect("bind server");
    let handle = server.start().expect("start server");
    let addr = handle.addr();
    wait_ready(addr);

    // Each ingest is followed by a wait for the flusher to chain another
    // artifact: the first flush writes the full base, the next two write
    // deltas 1 and 2.
    let mut want_chain = 0u64;
    for (i, body) in bodies.iter().enumerate() {
        let (status, v) = http(addr, "POST", "/documents", Some(body));
        assert_eq!(status, 200, "ingest {i}: {v}");
        if i > 0 {
            want_chain += 1;
        }
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let (_, metrics) = get(addr, "/metrics");
            let ck = &metrics["checkpoint"];
            if ck["flushes"].as_u64().unwrap_or(0) > i as u64
                && ck["incremental"]["chain_len"].as_u64() == Some(want_chain)
            {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "flush {i} never chained: {metrics}"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    }
    let (_, metrics) = get(addr, "/metrics");
    assert_eq!(
        metrics["checkpoint"]["incremental"]["chain_len"].as_u64(),
        Some(2)
    );
    assert_eq!(
        metrics["checkpoint"]["full_rewrites"].as_u64(),
        Some(1),
        "only the first flush rewrites the base: {metrics}"
    );
    let before = served_relation(addr, "MarriedCandidate");
    handle.abort();

    // The chain is intact and verifiable on disk: base + 2 deltas.
    let ckpt = Checkpoint::new(ckpt_dir.clone()).expect("checkpoint");
    assert_eq!(ckpt.db_chain_len(), 2, "two deltas chained onto the base");
    ckpt.verify().expect("chain verifies hash-by-hash");

    let mut app2 = SpouseApp::build_with_corpus(config, corpus).expect("restart app");
    app2.dd
        .load_checkpoint(&ckpt)
        .expect("compose base + deltas");
    let server2 = Server::new(app2.dd, &serve_config).expect("rebind");
    assert_eq!(server2.pending_replay(), 0, "flushes covered every ingest");
    let handle2 = server2.start().expect("restart");
    wait_ready(handle2.addr());
    assert_eq!(
        served_relation(handle2.addr(), "MarriedCandidate"),
        before,
        "composed restore diverged from the pre-crash state"
    );
    handle2.shutdown();
}

/// A follower tailing a primary whose WAL rotates tiny segments and
/// compacts aggressively still converges to bit-identical state: segment
/// boundaries and unlinked history are invisible to the stream.
#[test]
fn follower_converges_bit_identically_across_rotation_and_compaction() {
    let config = tiny_config();
    let corpus = deepdive_corpus::spouse::generate(&config.corpus);
    let mut primary_app =
        SpouseApp::build_with_corpus(config.clone(), corpus.clone()).expect("primary app");
    primary_app.run().expect("primary base run");
    let bodies: Vec<Json> = (0..4)
        .map(|i| ingest_body(&primary_app.document_changes(DOC_TEXTS[i])))
        .collect();
    let mut follower_app =
        SpouseApp::build_with_corpus(config.clone(), corpus.clone()).expect("follower app");
    follower_app.run().expect("follower base run");

    let p_ckpt = tmpdir("rotpar-p-ckpt");
    let f_ckpt = tmpdir("rotpar-f-ckpt");
    primary_app
        .dd
        .save_checkpoint(&Checkpoint::new(p_ckpt.clone()).expect("ckpt"))
        .expect("save primary checkpoint");
    follower_app
        .dd
        .save_checkpoint(&Checkpoint::new(f_ckpt.clone()).expect("ckpt"))
        .expect("save follower checkpoint");

    let primary_cfg = ServeConfig {
        page_limit: 100_000,
        wal_dir: Some(tmpdir("rotpar-p-wal")),
        checkpoint_dir: Some(p_ckpt),
        wal_segment_bytes: 256,
        // Retention keeps a follower-sized window; compaction runs on the
        // flusher cadence underneath the live stream.
        wal_retain: 2,
        flush_interval: Duration::from_millis(50),
        ..Default::default()
    };
    let primary = Server::new(primary_app.dd, &primary_cfg)
        .expect("bind primary")
        .start()
        .expect("start primary");
    let p_addr = primary.addr();
    wait_ready(p_addr);

    let follower_cfg = ServeConfig {
        page_limit: 100_000,
        wal_dir: Some(tmpdir("rotpar-f-wal")),
        checkpoint_dir: Some(f_ckpt),
        follow: Some(format!("http://{p_addr}")),
        ..Default::default()
    };
    let follower = Server::new(follower_app.dd, &follower_cfg)
        .expect("bind follower")
        .start()
        .expect("start follower");
    let f_addr = follower.addr();
    wait_ready(f_addr);

    // Sequential ingests: one WAL record per epoch on both sides keeps
    // the refresh budgets — and therefore the fingerprints — identical.
    for body in &bodies {
        let (status, v) = http(p_addr, "POST", "/documents", Some(body));
        assert_eq!(status, 200, "primary ingest: {v}");
    }
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (_, f_health) = get(f_addr, "/healthz");
        if f_health.get("epoch").and_then(Json::as_u64) == Some(bodies.len() as u64) {
            break;
        }
        assert!(Instant::now() < deadline, "follower never caught up");
        std::thread::sleep(Duration::from_millis(20));
    }

    // The primary really did rotate (and, once flushed, compact) segments
    // beneath the live stream.
    let (_, p_metrics) = get(p_addr, "/metrics");
    assert!(
        p_metrics["wal"]["segments"].as_u64().unwrap_or(0) > 1
            || p_metrics["wal"]["compactions"].as_u64().unwrap_or(0) >= 1,
        "test must exercise rotation/compaction: {p_metrics}"
    );

    let (_, p_health) = get(p_addr, "/healthz");
    let (_, f_health) = get(f_addr, "/healthz");
    assert_eq!(p_health.get("epoch"), f_health.get("epoch"), "epoch parity");
    assert_eq!(
        p_health.get("fingerprint"),
        f_health.get("fingerprint"),
        "fingerprint parity: primary {p_health}, follower {f_health}"
    );
    let (_, p_marginals) = get(p_addr, "/marginals/MarriedMentions?limit=100000");
    let (_, f_marginals) = get(f_addr, "/marginals/MarriedMentions?limit=100000");
    assert_eq!(p_marginals, f_marginals, "marginals are bit-identical");

    follower.shutdown();
    primary.shutdown();
}

/// `/readyz` must hold steady at 200 while the flusher compacts and
/// writes incremental checkpoints: background durability work never
/// flips readiness or blocks reads.
#[test]
fn readyz_stays_steady_during_compaction_and_flush() {
    let config = tiny_config();
    let mut app = SpouseApp::build(config).expect("app");
    app.run().expect("base run");
    let body = ingest_body(&app.document_changes(DOC_TEXTS[0]));

    let ckpt_dir = tmpdir("steady-ckpt");
    app.dd
        .save_checkpoint(&Checkpoint::new(ckpt_dir.clone()).expect("checkpoint"))
        .expect("save checkpoint");
    let faults = Arc::new(FaultInjector::new());
    // Stall every flusher pass: each tick dawdles 200ms before flushing +
    // compacting, so the poll below reliably overlaps the "busy" window.
    faults.arm(points::WAL_COMPACT_STALL, 1_000);
    let serve_config = ServeConfig {
        page_limit: 100_000,
        wal_dir: Some(tmpdir("steady-wal")),
        checkpoint_dir: Some(ckpt_dir),
        wal_segment_bytes: 1,
        wal_retain: 0,
        flush_interval: Duration::from_millis(30),
        faults,
        ..Default::default()
    };
    let server = Server::new(app.dd, &serve_config).expect("bind server");
    let handle = server.start().expect("start server");
    let addr = handle.addr();
    wait_ready(addr);

    let (status, _) = http(addr, "POST", "/documents", Some(&body));
    assert_eq!(status, 200);

    // Poll through several stalled flush cycles: readiness and reads must
    // answer 200 every single time.
    let until = Instant::now() + Duration::from_millis(800);
    let mut polls = 0u32;
    while Instant::now() < until {
        let (status, v) = get(addr, "/readyz");
        assert_eq!(status, 200, "readyz flapped during background flush: {v}");
        let (status, _) = get(addr, "/relations/MarriedCandidate?limit=1");
        assert_eq!(status, 200, "reads blocked during background flush");
        polls += 1;
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(polls > 20, "poll loop must span multiple flush intervals");
    // The flusher did run (and checkpoint) under the stall.
    let (_, metrics) = get(addr, "/metrics");
    assert!(
        metrics["checkpoint"]["flushes"].as_u64().unwrap_or(0) >= 1,
        "flusher never ran: {metrics}"
    );

    handle.shutdown();
}
