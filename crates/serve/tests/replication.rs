//! Failover-grade chaos tests for WAL-shipping replication: a follower
//! tails a primary to bit-identical marginals, survives `kill -9` of
//! either node mid-stream, refuses divergent histories, and fails
//! `/readyz` while its lag exceeds the bound.
//!
//! Crashes are simulated in-process with [`ServerHandle::abort`] — no
//! drain, no checkpoint flush, no WAL truncation, exactly the disk state
//! `kill -9` leaves. The CI replication-smoke job runs a primary/follower
//! pair against the real binary with real signals.

use deepdive_core::apps::{SpouseApp, SpouseAppConfig};
use deepdive_core::faults::points;
use deepdive_core::{Checkpoint, FaultInjector, RunConfig};
use deepdive_corpus::spouse::SpouseCorpus;
use deepdive_corpus::SpouseConfig;
use deepdive_sampler::{GibbsOptions, LearnOptions};
use deepdive_serve::{ServeConfig, Server, ServerHandle, Wal};
use deepdive_storage::{BaseChange, Value};
use serde_json::{json, Value as Json};
use std::collections::{BTreeMap, BTreeSet};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn app_config() -> SpouseAppConfig {
    SpouseAppConfig {
        corpus: SpouseConfig {
            num_docs: 16,
            num_people: 12,
            num_married_pairs: 4,
            num_sibling_pairs: 4,
            ..Default::default()
        },
        run: RunConfig {
            learn: LearnOptions {
                epochs: 30,
                ..Default::default()
            },
            inference: GibbsOptions {
                burn_in: 20,
                samples: 200,
                clamp_evidence: true,
                ..Default::default()
            },
            threads: 1,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// A smaller pipeline for tests that need a served pair, not batch parity.
fn tiny_config() -> SpouseAppConfig {
    let mut config = app_config();
    config.corpus.num_docs = 8;
    config.corpus.num_people = 8;
    config
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("dd-repl-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("create tmpdir");
    d
}

fn http(addr: SocketAddr, method: &str, path: &str, body: Option<&Json>) -> (u16, Json) {
    let mut stream = TcpStream::connect(addr).expect("connect to daemon");
    let body_text = body
        .map(|b| serde_json::to_string(b).expect("serializable body"))
        .unwrap_or_default();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{}",
        body_text.len(),
        body_text
    )
    .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let payload = raw.split("\r\n\r\n").nth(1).unwrap_or("");
    let value = serde_json::from_str(payload).unwrap_or(Json::Null);
    (status, value)
}

fn get(addr: SocketAddr, path: &str) -> (u16, Json) {
    http(addr, "GET", path, None)
}

/// Poll `/readyz` until it answers 200. For a follower this also waits
/// out WAL replay, the primary handshake, and the lag bound.
fn wait_ready(addr: SocketAddr) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, _) = get(addr, "/readyz");
        if status == 200 {
            return;
        }
        assert!(Instant::now() < deadline, "server never became ready");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Poll `/healthz` until the served epoch reaches `epoch`.
fn wait_epoch(addr: SocketAddr, epoch: u64) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, v) = get(addr, "/healthz");
        assert_eq!(status, 200, "healthz while waiting for epoch: {v}");
        if v.get("epoch").and_then(Json::as_u64) >= Some(epoch) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "never reached epoch {epoch}: {v}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// The `"replication"` section of a node's `/metrics`.
fn replication_metrics(addr: SocketAddr) -> Json {
    let (status, v) = get(addr, "/metrics");
    assert_eq!(status, 200, "GET /metrics: {v}");
    v.get("replication").cloned().expect("replication section")
}

fn value_to_cell(v: &Value) -> Json {
    match v {
        Value::Null => Json::Null,
        Value::Bool(b) => json!(*b),
        Value::Int(i) => json!(*i),
        Value::Float(f) => json!(*f),
        Value::Text(t) => json!(t.as_ref()),
        Value::Id(id) => json!(*id),
    }
}

fn ingest_body(changes: &[BaseChange]) -> Json {
    let mut by_relation: BTreeMap<String, Vec<Json>> = BTreeMap::new();
    for ch in changes {
        let cells: Vec<Json> = ch.row.iter().map(value_to_cell).collect();
        by_relation
            .entry(ch.relation.clone())
            .or_default()
            .push(Json::Array(cells));
    }
    let mut rows = serde_json::Map::new();
    for (relation, rel_rows) in by_relation {
        rows.insert(relation, Json::Array(rel_rows));
    }
    json!({ "rows": Json::Object(rows) })
}

/// Canonical form of a relation as served: the set of JSON row renderings.
fn served_relation(addr: SocketAddr, name: &str) -> BTreeSet<String> {
    let (status, v) = get(addr, &format!("/relations/{name}?limit=100000"));
    assert_eq!(status, 200, "GET /relations/{name}: {v}");
    v.get("rows")
        .and_then(Json::as_array)
        .expect("rows array")
        .iter()
        .map(|row| serde_json::to_string(row).unwrap())
        .collect()
}

/// Marginal rows with the probability stripped: the set of variables the
/// node serves marginals for, comparable across refresh schedules.
fn marginal_rows(addr: SocketAddr, name: &str) -> BTreeSet<String> {
    let (status, v) = get(addr, &format!("/marginals/{name}?limit=100000"));
    assert_eq!(status, 200, "GET /marginals/{name}: {v}");
    v.get("rows")
        .and_then(Json::as_array)
        .expect("rows array")
        .iter()
        .map(|row| {
            let mut obj = row.as_object().expect("row object").clone();
            obj.remove("probability");
            serde_json::to_string(&Json::Object(obj)).unwrap()
        })
        .collect()
}

fn read_report(wal_dir: &std::path::Path) -> Json {
    let text = std::fs::read_to_string(wal_dir.join("report.json")).expect("report.json exists");
    serde_json::from_str(&text).expect("report.json parses")
}

/// Reserve a port the OS considers free so a "restarted" primary can come
/// back at the same address its follower holds.
fn free_port() -> u16 {
    TcpListener::bind("127.0.0.1:0")
        .expect("probe port")
        .local_addr()
        .expect("probe addr")
        .port()
}

/// A primary/follower pair over the same base state: two identical
/// deterministic pipeline runs, each with its own WAL and checkpoint
/// directory, the follower tailing the primary.
struct Pair {
    primary: ServerHandle,
    follower: ServerHandle,
    primary_cfg: ServeConfig,
    follower_cfg: ServeConfig,
    p_wal: PathBuf,
    f_wal: PathBuf,
    p_ckpt: PathBuf,
    f_ckpt: PathBuf,
    /// Ingest bodies for the held-out documents, in order.
    held_out: Vec<Json>,
    /// The corpus both nodes ran over — restarts rebuild from this.
    partial: SpouseCorpus,
}

/// Build the pair. `hold_out` documents are removed from the served corpus
/// and returned as ingest bodies; both nodes run the pipeline over the
/// same partial corpus so they start from identical state at WAL seq 0.
fn spawn_pair(
    tag: &str,
    config: &SpouseAppConfig,
    corpus: &SpouseCorpus,
    hold_out: usize,
    max_lag_epochs: u64,
    primary_faults: Arc<FaultInjector>,
    follower_faults: Arc<FaultInjector>,
) -> Pair {
    let mut partial = corpus.clone();
    let mut held_docs = Vec::new();
    while held_docs.len() < hold_out {
        let doc = partial.documents.pop().expect("enough documents");
        // The generator can emit empty documents; they contribute no rows
        // to any run, so dropping them entirely changes nothing.
        if doc.text.trim().is_empty() {
            continue;
        }
        held_docs.push(doc);
    }
    held_docs.reverse(); // restore corpus order

    let mut primary_app =
        SpouseApp::build_with_corpus(config.clone(), partial.clone()).expect("primary app");
    primary_app.run().expect("primary base run");
    let held_out: Vec<Json> = held_docs
        .iter()
        .map(|doc| {
            let changes = primary_app.document_changes(&doc.text);
            assert!(!changes.is_empty(), "held-out document produced no rows");
            ingest_body(&changes)
        })
        .collect();

    let mut follower_app =
        SpouseApp::build_with_corpus(config.clone(), partial.clone()).expect("follower app");
    follower_app.run().expect("follower base run");

    let p_wal = tmpdir(&format!("{tag}-p-wal"));
    let f_wal = tmpdir(&format!("{tag}-f-wal"));
    let p_ckpt = tmpdir(&format!("{tag}-p-ckpt"));
    let f_ckpt = tmpdir(&format!("{tag}-f-ckpt"));
    primary_app
        .dd
        .save_checkpoint(&Checkpoint::new(p_ckpt.clone()).expect("primary checkpoint"))
        .expect("save primary checkpoint");
    follower_app
        .dd
        .save_checkpoint(&Checkpoint::new(f_ckpt.clone()).expect("follower checkpoint"))
        .expect("save follower checkpoint");

    let primary_cfg = ServeConfig {
        addr: format!("127.0.0.1:{}", free_port()),
        page_limit: 100_000,
        wal_dir: Some(p_wal.clone()),
        checkpoint_dir: Some(p_ckpt.clone()),
        faults: primary_faults,
        ..Default::default()
    };
    let primary = Server::new(primary_app.dd, &primary_cfg)
        .expect("bind primary")
        .start()
        .expect("start primary");
    let p_addr = primary.addr();
    wait_ready(p_addr);

    let follower_cfg = ServeConfig {
        page_limit: 100_000,
        wal_dir: Some(f_wal.clone()),
        checkpoint_dir: Some(f_ckpt.clone()),
        follow: Some(format!("http://{p_addr}")),
        max_lag_epochs,
        faults: follower_faults,
        ..Default::default()
    };
    let follower = Server::new(follower_app.dd, &follower_cfg)
        .expect("bind follower")
        .start()
        .expect("start follower");

    Pair {
        primary,
        follower,
        primary_cfg,
        follower_cfg,
        p_wal,
        f_wal,
        p_ckpt,
        f_ckpt,
        held_out,
        partial,
    }
}

/// The happy tentpole path: a follower tails the primary live and, once
/// caught up, serves the *same bits* — equal epoch, equal content
/// fingerprint, byte-identical `/marginals` — because one WAL record is
/// one epoch and both sides refresh with identical budgets.
#[test]
fn follower_tails_primary_to_bit_identical_marginals() {
    let config = tiny_config();
    let corpus = deepdive_corpus::spouse::generate(&config.corpus);
    let pair = spawn_pair(
        "tail",
        &config,
        &corpus,
        2,
        16,
        Arc::new(FaultInjector::new()),
        Arc::new(FaultInjector::new()),
    );
    let (p_addr, f_addr) = (pair.primary.addr(), pair.follower.addr());
    wait_ready(f_addr);

    // Writes land on the primary only; the follower is read-only.
    let (status, v) = http(f_addr, "POST", "/documents", Some(&pair.held_out[0]));
    assert_eq!(status, 405, "follower must reject writes: {v}");
    assert!(
        v["error"].as_str().unwrap_or("").contains("replica"),
        "405 names the replica role: {v}"
    );

    for body in &pair.held_out {
        let (status, v) = http(p_addr, "POST", "/documents", Some(body));
        assert_eq!(status, 200, "POST /documents on primary: {v}");
        assert_eq!(v.get("durable").and_then(Json::as_bool), Some(true));
    }
    let epochs = pair.held_out.len() as u64;
    wait_epoch(f_addr, epochs);

    // Bit-identical once caught up: same epoch, same fingerprint, same
    // marginals response byte for byte.
    let (_, p_health) = get(p_addr, "/healthz");
    let (_, f_health) = get(f_addr, "/healthz");
    assert_eq!(p_health.get("epoch"), f_health.get("epoch"), "epoch parity");
    assert_eq!(
        p_health.get("fingerprint"),
        f_health.get("fingerprint"),
        "content fingerprint parity: primary {p_health}, follower {f_health}"
    );
    let (p_status, p_marginals) = get(p_addr, "/marginals/MarriedMentions?limit=100000");
    let (f_status, f_marginals) = get(f_addr, "/marginals/MarriedMentions?limit=100000");
    assert_eq!(
        (p_status, f_status),
        (200, 200),
        "marginals served: {p_marginals}"
    );
    assert_eq!(p_marginals, f_marginals, "marginals are bit-identical");

    // The replication books are served from /metrics on both sides.
    let f_repl = replication_metrics(f_addr);
    assert_eq!(f_repl["role"], json!("follower"));
    assert_eq!(f_repl["lag_epochs"].as_u64(), Some(0));
    assert_eq!(f_repl["wal_offset"].as_u64(), Some(epochs));
    assert_eq!(f_repl["records_applied"].as_u64(), Some(epochs));
    assert_eq!(f_repl["handshook"], json!(true));
    assert_eq!(f_repl["diverged"], json!(false));
    let p_repl = replication_metrics(p_addr);
    assert_eq!(p_repl["role"], json!("primary"));
    assert!(p_repl["streams_served"].as_u64().unwrap_or(0) >= 1);
    assert!(p_repl["frames_shipped"].as_u64().unwrap_or(0) >= epochs);

    // /readyz carries the replication verdict for load balancers.
    let (status, v) = get(f_addr, "/readyz");
    assert_eq!(status, 200);
    assert_eq!(v["replication"]["lag_epochs"].as_u64(), Some(0));

    let _ = pair.follower.graceful_shutdown().expect("drain follower");
    let _ = pair.primary.graceful_shutdown().expect("drain primary");
    let report = read_report(&pair.f_wal);
    assert_eq!(report["replication"]["role"], json!("follower"));
    assert_eq!(
        report["replication"]["records_applied"].as_u64(),
        Some(epochs)
    );
    let p_report = read_report(&pair.p_wal);
    assert_eq!(p_report["replication"]["role"], json!("primary"));
    assert!(
        p_report["replication"]["streams_served"]
            .as_u64()
            .unwrap_or(0)
            >= 1
    );
}

/// `kill -9` the primary mid-stream — with a fault that tears the stream
/// mid-frame first — restart it from its own checkpoint + WAL, and the
/// follower must reconnect on its own and converge to parity with a clean
/// single-node batch run over the full corpus.
#[test]
fn primary_crash_mid_stream_follower_reconnects_to_batch_parity() {
    let config = app_config();
    let corpus = deepdive_corpus::spouse::generate(&config.corpus);

    // Parity reference: every document, one clean batch run.
    let mut batch_app =
        SpouseApp::build_with_corpus(config.clone(), corpus.clone()).expect("batch app");
    batch_app.run().expect("batch run");

    let primary_faults = Arc::new(FaultInjector::new());
    // First shipped batch: send half the bytes, then hang up mid-frame.
    primary_faults.arm(points::REPL_STREAM_CUT, 1);
    let pair = spawn_pair(
        "pcrash",
        &config,
        &corpus,
        2,
        16,
        Arc::clone(&primary_faults),
        Arc::new(FaultInjector::new()),
    );
    let (p_addr, f_addr) = (pair.primary.addr(), pair.follower.addr());
    wait_ready(f_addr);

    // Doc A's frame is torn on the wire; the follower's decoder must
    // refuse the partial frame, reconnect, and fetch it whole.
    let (status, v) = http(p_addr, "POST", "/documents", Some(&pair.held_out[0]));
    assert_eq!(status, 200, "POST doc A: {v}");
    wait_epoch(f_addr, 1);
    assert_eq!(primary_faults.tripped(), 1, "the stream-cut fault fired");
    let f_repl = replication_metrics(f_addr);
    assert!(
        f_repl["reconnects"].as_u64().unwrap_or(0) >= 1,
        "follower reconnected after the cut: {f_repl}"
    );

    // kill -9 the primary: no drain, no checkpoint flush, no truncation.
    pair.primary.abort();

    // Restart it from its checkpoint + WAL replay, same address.
    let mut app2 = SpouseApp::build_with_corpus(config, pair.partial.clone()).expect("restart app");
    app2.dd
        .load_checkpoint(&Checkpoint::new(pair.p_ckpt.clone()).expect("checkpoint"))
        .expect("restore primary checkpoint");
    let server2 = Server::new(app2.dd, &pair.primary_cfg).expect("rebind primary");
    assert_eq!(server2.pending_replay(), 1, "doc A's record is pending");
    let handle2 = server2.start().expect("restart primary");
    assert_eq!(handle2.addr(), p_addr, "primary came back at its address");
    wait_ready(p_addr);

    // The follower finds the restarted primary by itself (backoff +
    // jitter), resumes from its durable offset, and applies doc B.
    let (status, v) = http(p_addr, "POST", "/documents", Some(&pair.held_out[1]));
    assert_eq!(status, 200, "POST doc B after restart: {v}");
    wait_epoch(f_addr, 2);

    // Derived relations on the follower equal the clean batch run.
    for relation in ["MarriedCandidate", "MarriedMentions_Ev"] {
        let served = served_relation(f_addr, relation);
        let batch: BTreeSet<String> = batch_app
            .dd
            .db
            .rows_counted(relation)
            .expect("batch relation")
            .iter()
            .map(|(row, count)| {
                let mut obj = serde_json::Map::new();
                let schema = batch_app.dd.db.schema(relation).unwrap();
                for (i, v) in row.iter().enumerate() {
                    obj.insert(schema.columns[i].name.clone(), value_to_cell(v));
                }
                obj.insert("count".into(), json!(*count));
                serde_json::to_string(&Json::Object(obj)).unwrap()
            })
            .collect();
        assert_eq!(
            served, batch,
            "follower relation {relation} diverged from the clean batch run"
        );
    }
    // Marginal parity: the follower serves marginals for exactly the
    // variables the restarted primary does (probabilities come from
    // different refresh schedules post-crash, so rows, not bits).
    assert_eq!(
        marginal_rows(f_addr, "MarriedMentions"),
        marginal_rows(p_addr, "MarriedMentions"),
        "marginal variable sets diverged"
    );

    let _ = pair.follower.graceful_shutdown().expect("drain follower");
    let _ = handle2.graceful_shutdown().expect("drain primary");
}

/// `kill -9` the follower mid-apply (an armed stall widens the window),
/// restart it over its own WAL copy, and it must replay to its durable
/// offset locally — no re-fetch, no duplicate application — then resume
/// tailing where it left off.
#[test]
fn follower_crash_mid_apply_resumes_from_durable_offset() {
    let config = tiny_config();
    let corpus = deepdive_corpus::spouse::generate(&config.corpus);
    let follower_faults = Arc::new(FaultInjector::new());
    follower_faults.arm(points::REPL_APPLY_STALL, 1000);
    let pair = spawn_pair(
        "fcrash",
        &config,
        &corpus,
        3,
        16,
        Arc::new(FaultInjector::new()),
        follower_faults,
    );
    let (p_addr, f_addr) = (pair.primary.addr(), pair.follower.addr());
    let follower_state = pair.follower.state();
    wait_ready(f_addr);

    // Docs A and B land on the primary; wait until both are *durable* on
    // the follower (appended before applied), then kill it — the armed
    // stall makes the abort land mid-apply.
    for body in &pair.held_out[..2] {
        let (status, v) = http(p_addr, "POST", "/documents", Some(body));
        assert_eq!(status, 200, "POST on primary: {v}");
    }
    let deadline = Instant::now() + Duration::from_secs(120);
    while follower_state.wal_gauges().0 < 2 {
        assert!(Instant::now() < deadline, "records never reached follower");
        std::thread::sleep(Duration::from_millis(5));
    }
    pair.follower.abort();

    // Restart the follower from its checkpoint + its own WAL copy. Both
    // records are pending locally: the restart needs no primary history.
    let mut app2 = SpouseApp::build_with_corpus(config.clone(), pair.partial.clone())
        .expect("follower restart app");
    app2.dd
        .load_checkpoint(&Checkpoint::new(pair.f_ckpt.clone()).expect("checkpoint"))
        .expect("restore follower checkpoint");
    let server2 = Server::new(app2.dd, &pair.follower_cfg).expect("rebind follower");
    assert_eq!(
        server2.pending_replay(),
        2,
        "both durable records replay locally, not over the wire"
    );
    let handle2 = server2.start().expect("restart follower");
    let f_addr2 = handle2.addr();
    wait_ready(f_addr2);

    // The replay set the durable offset; nothing was re-fetched.
    let f_repl = replication_metrics(f_addr2);
    assert_eq!(
        f_repl["wal_offset"].as_u64(),
        Some(2),
        "resumed at seq 2: {f_repl}"
    );
    assert_eq!(
        f_repl["records_applied"].as_u64(),
        Some(0),
        "local replay is not wire application: {f_repl}"
    );

    // Doc C streams in on top; no record is applied twice (duplicates
    // would double the served row counts).
    let (status, v) = http(p_addr, "POST", "/documents", Some(&pair.held_out[2]));
    assert_eq!(status, 200, "POST doc C: {v}");
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let repl = replication_metrics(f_addr2);
        if repl["wal_offset"].as_u64() == Some(3) {
            assert_eq!(
                repl["records_applied"].as_u64(),
                Some(1),
                "only doc C: {repl}"
            );
            break;
        }
        assert!(Instant::now() < deadline, "doc C never applied: {repl}");
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(
        served_relation(f_addr2, "MarriedCandidate"),
        served_relation(p_addr, "MarriedCandidate"),
        "post-resume row parity (duplicate application would double counts)"
    );

    let _ = handle2.graceful_shutdown().expect("drain follower");
    let _ = pair.primary.graceful_shutdown().expect("drain primary");
}

/// A follower whose WAL belongs to a different history is refused at the
/// handshake (409), marks itself permanently diverged, keeps serving
/// reads, and fails `/readyz` with status "diverged".
#[test]
fn divergent_follower_is_refused_and_reports_fatal() {
    let config = tiny_config();
    let corpus = deepdive_corpus::spouse::generate(&config.corpus);
    let f_wal = tmpdir("diverge-foreign-wal");
    {
        // Mint a foreign stream id in the follower's WAL before it starts:
        // a replica seeded from some *other* primary's history.
        let (_wal, _) = Wal::open(&f_wal, Arc::new(FaultInjector::new())).expect("pre-mint wal");
    }

    let pair = spawn_pair(
        "diverge",
        &config,
        &corpus,
        1,
        16,
        Arc::new(FaultInjector::new()),
        Arc::new(FaultInjector::new()),
    );
    let (p_addr, _f_addr) = (pair.primary.addr(), pair.follower.addr());
    // The pair's own follower is healthy; the divergent one is a third
    // node pointing at the same primary but carrying the foreign WAL.
    let mut foreign_app =
        SpouseApp::build_with_corpus(config, pair.partial.clone()).expect("divergent follower app");
    foreign_app.run().expect("divergent follower run");
    let foreign_cfg = ServeConfig {
        page_limit: 100_000,
        wal_dir: Some(f_wal),
        checkpoint_dir: None,
        follow: Some(format!("http://{p_addr}")),
        ..Default::default()
    };
    let foreign = Server::new(foreign_app.dd, &foreign_cfg)
        .expect("bind divergent follower")
        .start()
        .expect("start divergent follower");
    let state = foreign.state();

    let deadline = Instant::now() + Duration::from_secs(60);
    let fatal = loop {
        if let Some(fatal) = state.replication().fatal_error() {
            break fatal;
        }
        assert!(Instant::now() < deadline, "divergence never became fatal");
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(
        fatal.contains("divergent"),
        "fatal error names divergence: {fatal}"
    );

    // Still alive for reads, but never ready, and says why.
    let (status, v) = get(foreign.addr(), "/healthz");
    assert_eq!(status, 200, "divergent follower keeps serving reads: {v}");
    let (status, v) = get(foreign.addr(), "/readyz");
    assert_eq!(status, 503);
    assert_eq!(v["status"], json!("diverged"), "readyz verdict: {v}");
    assert_eq!(v["replication"]["diverged"], json!(true));

    foreign.abort();
    let _ = pair.follower.graceful_shutdown().expect("drain follower");
    let _ = pair.primary.graceful_shutdown().expect("drain primary");
}

/// With `--max-lag-epochs 0` and a stalled apply path, a follower that is
/// behind fails `/readyz` with status "lagging" — and clears it once
/// caught up. Lag, unlike divergence, is a transient verdict.
#[test]
fn lagging_follower_fails_readyz_until_caught_up() {
    let config = tiny_config();
    let corpus = deepdive_corpus::spouse::generate(&config.corpus);
    let follower_faults = Arc::new(FaultInjector::new());
    follower_faults.arm(points::REPL_APPLY_STALL, 1000);
    let pair = spawn_pair(
        "lag",
        &config,
        &corpus,
        1,
        0, // any lag at all fails readiness
        Arc::new(FaultInjector::new()),
        follower_faults,
    );
    let (p_addr, f_addr) = (pair.primary.addr(), pair.follower.addr());
    wait_ready(f_addr);

    // Re-posting the same body is a legitimate new record each time (row
    // counts increment), so one held-out doc yields as many epochs as we
    // need to hold the apply path busy.
    let writes = 4u64;
    for _ in 0..writes {
        let (status, v) = http(p_addr, "POST", "/documents", Some(&pair.held_out[0]));
        assert_eq!(status, 200, "POST on primary: {v}");
    }

    // While the stalled follower works through the backlog, /readyz must
    // report "lagging"; once caught up it must report ready again.
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut saw_lagging = false;
    loop {
        let (status, v) = get(f_addr, "/readyz");
        if status == 503 && v["status"] == json!("lagging") {
            assert!(
                v["replication"]["lag_epochs"].as_u64().unwrap_or(0) >= 1,
                "lagging verdict carries the lag: {v}"
            );
            saw_lagging = true;
        }
        let (_, health) = get(f_addr, "/healthz");
        if health.get("epoch").and_then(Json::as_u64) >= Some(writes) {
            break;
        }
        assert!(Instant::now() < deadline, "follower never caught up");
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(saw_lagging, "readyz never reported the lag");
    wait_ready(f_addr); // caught up: lag verdict clears
    let f_repl = replication_metrics(f_addr);
    assert_eq!(
        f_repl["lag_epochs"].as_u64(),
        Some(0),
        "caught up: {f_repl}"
    );

    let _ = pair.follower.graceful_shutdown().expect("drain follower");
    let _ = pair.primary.graceful_shutdown().expect("drain primary");
}
