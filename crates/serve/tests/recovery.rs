//! Crash and overload tests for the daemon: kill-mid-ingest WAL replay
//! parity, torn-tail recovery, fsync-failure ack semantics, admission
//! shedding, ingest rate limiting, slowloris defense, readiness gating
//! during replay, and graceful drain.
//!
//! The crash itself is simulated in-process: [`ServerHandle::abort`] tears
//! the server down with no drain, no final checkpoint, and no WAL
//! truncation — exactly the disk state `kill -9` leaves — and the restart
//! rebuilds a fresh `DeepDive` from the checkpoint plus WAL replay. The CI
//! serve-smoke job runs the same scenario against the real binary with a
//! real `kill -9`.

use deepdive_core::apps::{SpouseApp, SpouseAppConfig};
use deepdive_core::faults::points;
use deepdive_core::{stalled_client, Checkpoint, FaultInjector, RunConfig};
use deepdive_corpus::SpouseConfig;
use deepdive_sampler::{GibbsOptions, LearnOptions};
use deepdive_serve::{ServeConfig, Server, Wal};
use deepdive_storage::{BaseChange, Value};
use serde_json::{json, Value as Json};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn app_config() -> SpouseAppConfig {
    SpouseAppConfig {
        corpus: SpouseConfig {
            num_docs: 16,
            num_people: 12,
            num_married_pairs: 4,
            num_sibling_pairs: 4,
            ..Default::default()
        },
        run: RunConfig {
            learn: LearnOptions {
                epochs: 30,
                ..Default::default()
            },
            inference: GibbsOptions {
                burn_in: 20,
                samples: 200,
                clamp_evidence: true,
                ..Default::default()
            },
            threads: 1,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// A smaller pipeline for the tests that only need a served app, not
/// derived-relation parity.
fn tiny_config() -> SpouseAppConfig {
    let mut config = app_config();
    config.corpus.num_docs = 6;
    config.corpus.num_people = 8;
    config
}

/// Fresh per-test scratch directory.
fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("dd-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("create tmpdir");
    d
}

/// Minimal HTTP/1.1 client: one request, `Connection: close`, JSON out.
fn http(addr: SocketAddr, method: &str, path: &str, body: Option<&Json>) -> (u16, Json) {
    let mut stream = TcpStream::connect(addr).expect("connect to daemon");
    let body_text = body
        .map(|b| serde_json::to_string(b).expect("serializable body"))
        .unwrap_or_default();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{}",
        body_text.len(),
        body_text
    )
    .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let payload = raw.split("\r\n\r\n").nth(1).unwrap_or("");
    let value = serde_json::from_str(payload).unwrap_or(Json::Null);
    (status, value)
}

fn get(addr: SocketAddr, path: &str) -> (u16, Json) {
    http(addr, "GET", path, None)
}

/// Raw request in, raw response text out (status line and headers intact),
/// for asserting on headers like `Retry-After`.
fn http_raw(addr: SocketAddr, payload: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to daemon");
    stream.write_all(payload.as_bytes()).expect("send request");
    let mut out = String::new();
    let _ = stream.read_to_string(&mut out);
    out
}

/// Poll `/readyz` until it answers 200.
fn wait_ready(addr: SocketAddr) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, _) = get(addr, "/readyz");
        if status == 200 {
            return;
        }
        assert!(Instant::now() < deadline, "server never became ready");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn value_to_cell(v: &Value) -> Json {
    match v {
        Value::Null => Json::Null,
        Value::Bool(b) => json!(*b),
        Value::Int(i) => json!(*i),
        Value::Float(f) => json!(*f),
        Value::Text(t) => json!(t.as_ref()),
        Value::Id(id) => json!(*id),
    }
}

/// Group base changes into the `{"rows": {relation: [[cell, ...], ...]}}`
/// ingest body.
fn ingest_body(changes: &[BaseChange]) -> Json {
    let mut by_relation: BTreeMap<String, Vec<Json>> = BTreeMap::new();
    for ch in changes {
        let cells: Vec<Json> = ch.row.iter().map(value_to_cell).collect();
        by_relation
            .entry(ch.relation.clone())
            .or_default()
            .push(Json::Array(cells));
    }
    let mut rows = serde_json::Map::new();
    for (relation, rel_rows) in by_relation {
        rows.insert(relation, Json::Array(rel_rows));
    }
    json!({ "rows": Json::Object(rows) })
}

/// Canonical form of a relation as served: the set of JSON row renderings.
fn served_relation(addr: SocketAddr, name: &str) -> BTreeSet<String> {
    let (status, v) = get(addr, &format!("/relations/{name}?limit=100000"));
    assert_eq!(status, 200, "GET /relations/{name}: {v}");
    v.get("rows")
        .and_then(Json::as_array)
        .expect("rows array")
        .iter()
        .map(|row| serde_json::to_string(row).unwrap())
        .collect()
}

fn read_report(wal_dir: &std::path::Path) -> Json {
    let text = std::fs::read_to_string(wal_dir.join("report.json")).expect("report.json exists");
    serde_json::from_str(&text).expect("report.json parses")
}

/// The tentpole chaos test: acked ingests survive `kill -9`.
///
/// A serve session over a partial corpus acknowledges the held-out
/// document (fsync'd to the WAL), then dies with no checkpoint flush and
/// no WAL truncation. The restart restores the pre-ingest checkpoint,
/// replays the WAL through the same DRed/IVM path, and must land the
/// derived relations exactly where a clean batch run over the *complete*
/// corpus puts them.
#[test]
fn kill_mid_ingest_replay_converges_to_batch_parity() {
    let config = app_config();
    let full_corpus = deepdive_corpus::spouse::generate(&config.corpus);

    // Parity reference: every document, one batch run.
    let mut batch_app =
        SpouseApp::build_with_corpus(config.clone(), full_corpus.clone()).expect("batch app");
    batch_app.run().expect("batch run");

    // Serve session: hold out the last document, run, checkpoint.
    let mut partial_corpus = full_corpus.clone();
    let held_out = partial_corpus.documents.pop().expect("at least one doc");
    let mut app =
        SpouseApp::build_with_corpus(config.clone(), partial_corpus.clone()).expect("serve app");
    app.run().expect("serve base run");

    let ckpt_dir = tmpdir("kill-ckpt");
    let wal_dir = tmpdir("kill-wal");
    let ckpt = Checkpoint::new(ckpt_dir.clone()).expect("checkpoint");
    app.dd.save_checkpoint(&ckpt).expect("save checkpoint");
    let changes = app.document_changes(&held_out.text);
    assert!(!changes.is_empty(), "held-out document produced no rows");

    let serve_config = ServeConfig {
        page_limit: 100_000,
        wal_dir: Some(wal_dir.clone()),
        checkpoint_dir: Some(ckpt_dir.clone()),
        ..Default::default()
    };
    let server = Server::new(app.dd, &serve_config).expect("bind server");
    let handle = server.start().expect("start server");
    let addr = handle.addr();

    let (status, v) = http(addr, "POST", "/documents", Some(&ingest_body(&changes)));
    assert_eq!(status, 200, "POST /documents: {v}");
    assert_eq!(v.get("durable").and_then(Json::as_bool), Some(true));
    assert_eq!(v.get("wal_records").and_then(Json::as_u64), Some(1));

    // kill -9: no drain, no checkpoint flush, no WAL truncation.
    handle.abort();

    // Restart: fresh process state, checkpoint restore, WAL replay.
    let mut app2 = SpouseApp::build_with_corpus(config, partial_corpus).expect("restart app");
    app2.dd
        .load_checkpoint(&Checkpoint::new(ckpt_dir).expect("checkpoint"))
        .expect("restore checkpoint");
    let server2 = Server::new(app2.dd, &serve_config).expect("rebind server");
    assert_eq!(server2.pending_replay(), 1, "the acked record is pending");
    let state2 = server2.state();
    let handle2 = server2.start().expect("restart server");
    let addr2 = handle2.addr();
    wait_ready(addr2);

    // The replayed state must equal the clean batch run over all documents.
    for relation in ["MarriedCandidate", "MarriedMentions_Ev"] {
        let served = served_relation(addr2, relation);
        let batch: BTreeSet<String> = batch_app
            .dd
            .db
            .rows_counted(relation)
            .expect("batch relation")
            .iter()
            .map(|(row, count)| {
                let mut obj = serde_json::Map::new();
                let schema = batch_app.dd.db.schema(relation).unwrap();
                for (i, v) in row.iter().enumerate() {
                    obj.insert(schema.columns[i].name.clone(), value_to_cell(v));
                }
                obj.insert("count".into(), json!(*count));
                serde_json::to_string(&Json::Object(obj)).unwrap()
            })
            .collect();
        assert_eq!(
            served, batch,
            "derived relation {relation} diverged after crash + replay"
        );
    }

    // Replay flushed a checkpoint and truncated the WAL.
    assert_eq!(state2.wal_gauges().0, 0, "WAL truncated after replay");
    let report = read_report(&wal_dir);
    let wal = report.get("wal").expect("wal section");
    assert_eq!(wal.get("records_replayed").and_then(Json::as_u64), Some(1));
    assert_eq!(
        wal.get("wal_torn_tail").and_then(Json::as_bool),
        Some(false)
    );

    handle2.shutdown();
}

/// A crash mid-append leaves a torn final record. The restart must detect
/// it by checksum, drop it with a warning (it was never acknowledged),
/// replay the intact prefix, and flag `wal_torn_tail` in the report.
#[test]
fn torn_wal_tail_is_dropped_and_flagged_on_restart() {
    let config = tiny_config();
    let corpus = deepdive_corpus::spouse::generate(&config.corpus);
    let mut app = SpouseApp::build_with_corpus(config.clone(), corpus.clone()).expect("app");
    app.run().expect("base run");

    let ckpt_dir = tmpdir("torn-ckpt");
    let wal_dir = tmpdir("torn-wal");
    let ckpt = Checkpoint::new(ckpt_dir.clone()).expect("checkpoint");
    app.dd.save_checkpoint(&ckpt).expect("save checkpoint");
    let doc_a = app.document_changes("Alice Young and her husband Bob Young toured the museum.");
    let doc_b = app.document_changes("Carol King and her husband David King hosted a dinner.");

    let faults = Arc::new(FaultInjector::new());
    let serve_config = ServeConfig {
        page_limit: 100_000,
        wal_dir: Some(wal_dir.clone()),
        checkpoint_dir: Some(ckpt_dir.clone()),
        faults: faults.clone(),
        ..Default::default()
    };
    let server = Server::new(app.dd, &serve_config).expect("bind server");
    let handle = server.start().expect("start server");
    let addr = handle.addr();

    // Doc A acks cleanly; doc B's append tears mid-record.
    let (status, _) = http(addr, "POST", "/documents", Some(&ingest_body(&doc_a)));
    assert_eq!(status, 200);
    faults.arm(points::WAL_TORN_WRITE, 1);
    let (status, v) = http(addr, "POST", "/documents", Some(&ingest_body(&doc_b)));
    assert_eq!(status, 500, "torn append must not ack: {v}");
    // The WAL's on-disk state is unknown; further acks are refused.
    let (status, _) = http(addr, "POST", "/documents", Some(&ingest_body(&doc_b)));
    assert_eq!(status, 500, "poisoned WAL must keep refusing acks");
    handle.abort();

    // The torn tail is visible to a raw recovery scan — run it on a copy,
    // because opening the WAL truncates the tear away.
    let scan_dir = tmpdir("torn-scan");
    for entry in std::fs::read_dir(&wal_dir).expect("list wal dir") {
        let entry = entry.expect("wal dir entry");
        if entry.file_type().expect("file type").is_file() {
            std::fs::copy(entry.path(), scan_dir.join(entry.file_name())).expect("copy wal file");
        }
    }
    let (wal, recovery) =
        Wal::open(&scan_dir, Arc::new(FaultInjector::new())).expect("recovery scan");
    assert!(recovery.torn_tail, "torn tail detected");
    assert_eq!(recovery.records.len(), 1, "only the acked record survives");
    assert!(recovery.torn_bytes > 0);
    drop(wal);

    // …and a full restart replays the intact prefix and reports the tear.
    let mut app2 = SpouseApp::build_with_corpus(config, corpus).expect("restart app");
    app2.dd
        .load_checkpoint(&Checkpoint::new(ckpt_dir).expect("checkpoint"))
        .expect("restore checkpoint");
    let server2 = Server::new(app2.dd, &serve_config).expect("rebind");
    assert_eq!(server2.pending_replay(), 1);
    let handle2 = server2.start().expect("restart");
    wait_ready(handle2.addr());

    let (status, health) = get(handle2.addr(), "/healthz");
    assert_eq!(status, 200);
    assert_eq!(
        health.get("epoch").and_then(Json::as_u64),
        Some(1),
        "exactly the acked record was replayed"
    );
    let report = read_report(&wal_dir);
    let wal = report.get("wal").expect("wal section");
    assert_eq!(wal.get("wal_torn_tail").and_then(Json::as_bool), Some(true));
    assert_eq!(wal.get("records_replayed").and_then(Json::as_u64), Some(1));

    handle2.shutdown();
}

/// A failed fsync means no durability promise can be made: the ingest is
/// answered 500, nothing is applied, and the next (healthy) ingest
/// succeeds because the append was rolled back.
#[test]
fn fsync_failure_refuses_the_ack_and_applies_nothing() {
    let config = tiny_config();
    let mut app = SpouseApp::build(config).expect("app");
    app.run().expect("base run");
    let changes = app.document_changes("Erin Stone and her husband Frank Stone sailed north.");

    let faults = Arc::new(FaultInjector::new());
    let serve_config = ServeConfig {
        wal_dir: Some(tmpdir("fsync-wal")),
        faults: faults.clone(),
        ..Default::default()
    };
    let server = Server::new(app.dd, &serve_config).expect("bind server");
    let state = server.state();
    let handle = server.start().expect("start server");
    let addr = handle.addr();

    faults.arm(points::WAL_FSYNC, 1);
    let (status, v) = http(addr, "POST", "/documents", Some(&ingest_body(&changes)));
    assert_eq!(status, 500, "failed fsync must not ack: {v}");
    let (_, health) = get(addr, "/healthz");
    assert_eq!(
        health.get("epoch").and_then(Json::as_u64),
        Some(0),
        "nothing was applied"
    );
    assert_eq!(state.wal_gauges().0, 0, "failed append was rolled back");

    // Fault consumed; the same ingest now goes through.
    let (status, v) = http(addr, "POST", "/documents", Some(&ingest_body(&changes)));
    assert_eq!(status, 200, "retry after rollback: {v}");
    assert_eq!(state.wal_gauges().0, 1);

    handle.shutdown();
}

/// Beyond `max_inflight` admitted connections, new ones are shed with
/// `503 + Retry-After` instead of queueing unboundedly — and the daemon
/// recovers as soon as the stalled connection is cut by its deadline.
#[test]
fn overload_sheds_with_503_and_retry_after_then_recovers() {
    let config = tiny_config();
    let mut app = SpouseApp::build(config).expect("app");
    app.run().expect("base run");

    let serve_config = ServeConfig {
        workers: 2,
        max_inflight: 1,
        read_timeout: Duration::from_millis(200),
        request_deadline: Duration::from_millis(800),
        ..Default::default()
    };
    let server = Server::new(app.dd, &serve_config).expect("bind server");
    let state = server.state();
    let handle = server.start().expect("start server");
    let addr = handle.addr();

    // Occupy the only admission slot with a peer that never finishes its
    // request.
    let _stalled = stalled_client(addr, b"GET /healthz HTTP/1.1\r\nHost: t\r\n").expect("stall");
    let wait = Instant::now() + Duration::from_secs(5);
    while state.queue_depth() < 1 {
        assert!(Instant::now() < wait, "stalled peer was never admitted");
        std::thread::sleep(Duration::from_millis(5));
    }

    let raw = http_raw(addr, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
    assert!(
        raw.starts_with("HTTP/1.1 503"),
        "over-admission connection must be shed: {raw:?}"
    );
    assert!(
        raw.contains("Retry-After:"),
        "shed response carries Retry-After: {raw:?}"
    );
    assert!(state.metrics.shed_total() >= 1);

    // The stalled peer is cut by the request deadline (408), freeing the
    // slot; service resumes.
    let wait = Instant::now() + Duration::from_secs(10);
    loop {
        let raw = http_raw(addr, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
        if raw.starts_with("HTTP/1.1 200") {
            break;
        }
        assert!(
            Instant::now() < wait,
            "daemon never recovered from overload"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(
        state.metrics.timeout_total() >= 1,
        "the stalled peer got 408"
    );

    handle.shutdown();
}

/// The token bucket refuses ingest bursts over the configured rate with
/// 429 + Retry-After; reads are unaffected.
#[test]
fn ingest_rate_limit_answers_429_with_retry_after() {
    let config = tiny_config();
    let mut app = SpouseApp::build(config).expect("app");
    app.run().expect("base run");

    let serve_config = ServeConfig {
        ingest_rate: Some(0.001), // burst of 1, essentially no refill
        ..Default::default()
    };
    let server = Server::new(app.dd, &serve_config).expect("bind server");
    let state = server.state();
    let handle = server.start().expect("start server");
    let addr = handle.addr();

    // First POST spends the only token (the body being rejected as empty
    // doesn't matter — admission happens before parsing).
    let body = json!({"rows": Json::Object(serde_json::Map::new())});
    let (status, _) = http(addr, "POST", "/documents", Some(&body));
    assert_eq!(status, 400, "empty ingest is a 400 (token spent)");
    let raw = http_raw(
        addr,
        "POST /documents HTTP/1.1\r\nHost: t\r\nContent-Length: 12\r\n\r\n{\"rows\": {}}",
    );
    assert!(
        raw.starts_with("HTTP/1.1 429"),
        "second burst ingest must be rate limited: {raw:?}"
    );
    assert!(
        raw.contains("Retry-After:"),
        "429 carries Retry-After: {raw:?}"
    );
    assert!(state.metrics.rate_limited_total() >= 1);

    // Reads are not rate limited.
    let (status, _) = get(addr, "/healthz");
    assert_eq!(status, 200);

    handle.shutdown();
}

/// A peer that stalls mid-body is answered 408 when the request deadline
/// expires — not left holding a worker on a hung socket.
#[test]
fn stalled_mid_body_client_is_cut_with_408() {
    let config = tiny_config();
    let mut app = SpouseApp::build(config).expect("app");
    app.run().expect("base run");

    let serve_config = ServeConfig {
        read_timeout: Duration::from_millis(100),
        request_deadline: Duration::from_millis(400),
        ..Default::default()
    };
    let server = Server::new(app.dd, &serve_config).expect("bind server");
    let state = server.state();
    let handle = server.start().expect("start server");
    let addr = handle.addr();

    // Declare 64 body bytes, send 7, then stall.
    let mut stream = stalled_client(
        addr,
        b"POST /documents HTTP/1.1\r\nHost: t\r\nContent-Length: 64\r\n\r\npartial",
    )
    .expect("stalled client");
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .expect("server answers before hanging up");
    assert!(
        raw.starts_with("HTTP/1.1 408"),
        "mid-body stall must be answered 408: {raw:?}"
    );
    assert!(state.metrics.timeout_total() >= 1);

    handle.shutdown();
}

/// During WAL replay, concurrent readers see only the pre-replay epoch —
/// then exactly the post-replay epoch after the single swap. `/readyz`
/// answers 503 (with Retry-After) for the whole window and ingests are
/// refused; `/healthz` stays 200 throughout.
#[test]
fn readers_see_only_whole_epochs_during_replay_and_readyz_gates() {
    let config = tiny_config();
    let corpus = deepdive_corpus::spouse::generate(&config.corpus);
    let mut app = SpouseApp::build_with_corpus(config.clone(), corpus.clone()).expect("app");
    app.run().expect("base run");

    let ckpt_dir = tmpdir("soak-ckpt");
    let wal_dir = tmpdir("soak-wal");
    let ckpt = Checkpoint::new(ckpt_dir.clone()).expect("checkpoint");
    app.dd.save_checkpoint(&ckpt).expect("save checkpoint");

    // Build the WAL a crashed session would have left: three acked docs.
    let bodies: Vec<Vec<u8>> = [
        "Alice Young and her husband Bob Young toured the museum.",
        "Carol King and her husband David King hosted a dinner.",
        "Erin Stone and her husband Frank Stone sailed north.",
    ]
    .iter()
    .map(|text| {
        let changes = app.document_changes(text);
        assert!(!changes.is_empty());
        serde_json::to_string(&ingest_body(&changes))
            .unwrap()
            .into_bytes()
    })
    .collect();
    let num_records = bodies.len() as u64;
    {
        let (mut wal, _) = Wal::open(&wal_dir, Arc::new(FaultInjector::new())).expect("open wal");
        for body in &bodies {
            wal.append(body).expect("append");
        }
    }

    // Restart over the checkpoint; stall the replay so the not-ready
    // window is wide enough to observe deterministically.
    let faults = Arc::new(FaultInjector::new());
    faults.arm(points::WAL_REPLAY_STALL, 1);
    let mut app2 = SpouseApp::build_with_corpus(config, corpus).expect("restart app");
    app2.dd
        .load_checkpoint(&Checkpoint::new(ckpt_dir).expect("checkpoint"))
        .expect("restore checkpoint");
    let serve_config = ServeConfig {
        page_limit: 100_000,
        wal_dir: Some(wal_dir),
        checkpoint_dir: None, // keep the WAL after replay: not under test here
        faults,
        ..Default::default()
    };
    let server = Server::new(app2.dd, &serve_config).expect("bind server");
    assert_eq!(server.pending_replay(), 3);
    let handle = server.start().expect("start server");
    let addr = handle.addr();

    // Immediately after start: not ready, ingest refused, but alive.
    let (status, v) = get(addr, "/readyz");
    assert_eq!(status, 503, "replaying => not ready: {v}");
    assert_eq!(v.get("status").and_then(Json::as_str), Some("replaying"));
    let empty = json!({"rows": Json::Object(serde_json::Map::new())});
    let (status, _) = http(addr, "POST", "/documents", Some(&empty));
    assert_eq!(status, 503, "ingest refused during replay");
    let (status, _) = get(addr, "/healthz");
    assert_eq!(status, 200, "liveness is unaffected by replay");

    // Soak readers across the swap.
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut seen: HashMap<u64, BTreeSet<String>> = HashMap::new();
                while !stop.load(Ordering::Relaxed) {
                    let (status, v) = get(addr, "/marginals/MarriedMentions?limit=100000");
                    assert_eq!(status, 200, "{v}");
                    let epoch = v.get("epoch").and_then(Json::as_u64).unwrap();
                    let fp = v
                        .get("fingerprint")
                        .and_then(Json::as_str)
                        .unwrap()
                        .to_string();
                    seen.entry(epoch).or_default().insert(fp);
                }
                seen
            })
        })
        .collect();

    wait_ready(addr);
    // A few more reads after the swap so every reader sees the new epoch.
    std::thread::sleep(Duration::from_millis(50));
    stop.store(true, Ordering::Relaxed);

    let mut observed: HashMap<u64, BTreeSet<String>> = HashMap::new();
    for r in readers {
        for (epoch, fps) in r.join().expect("reader thread") {
            observed.entry(epoch).or_default().extend(fps);
        }
    }
    for (&epoch, fps) in &observed {
        assert!(
            epoch == 0 || epoch == num_records,
            "reader observed a mid-replay epoch {epoch}: replay must publish one swap"
        );
        assert_eq!(fps.len(), 1, "epoch {epoch} served torn snapshots: {fps:?}");
    }
    assert!(
        observed.contains_key(&0),
        "the pre-replay epoch was served during replay"
    );

    let (status, v) = get(addr, "/readyz");
    assert_eq!(status, 200);
    assert_eq!(v.get("epoch").and_then(Json::as_u64), Some(num_records));

    handle.shutdown();
}

/// A graceful shutdown issued while the WAL is still replaying must leave
/// the daemon Draining: replay's final Replaying → Ready transition is a
/// compare-and-swap, so it cannot reopen `/readyz` (and the ingest gate)
/// after shutdown already closed them.
#[test]
fn shutdown_during_replay_never_reopens_readiness() {
    let config = tiny_config();
    let corpus = deepdive_corpus::spouse::generate(&config.corpus);
    let mut app = SpouseApp::build_with_corpus(config.clone(), corpus.clone()).expect("app");
    app.run().expect("base run");

    let ckpt_dir = tmpdir("drainrace-ckpt");
    let wal_dir = tmpdir("drainrace-wal");
    let ckpt = Checkpoint::new(ckpt_dir.clone()).expect("checkpoint");
    app.dd.save_checkpoint(&ckpt).expect("save checkpoint");
    let changes = app.document_changes("Iris Lake and her husband Jack Lake planted a garden.");
    {
        let (mut wal, _) = Wal::open(&wal_dir, Arc::new(FaultInjector::new())).expect("open wal");
        wal.append(
            serde_json::to_string(&ingest_body(&changes))
                .unwrap()
                .as_bytes(),
        )
        .expect("append");
    }

    // Stall the replay so the shutdown reliably lands while it is running.
    let faults = Arc::new(FaultInjector::new());
    faults.arm(points::WAL_REPLAY_STALL, 1);
    let mut app2 = SpouseApp::build_with_corpus(config, corpus).expect("restart app");
    app2.dd
        .load_checkpoint(&Checkpoint::new(ckpt_dir.clone()).expect("checkpoint"))
        .expect("restore checkpoint");
    let serve_config = ServeConfig {
        wal_dir: Some(wal_dir),
        checkpoint_dir: Some(ckpt_dir),
        faults,
        ..Default::default()
    };
    let server = Server::new(app2.dd, &serve_config).expect("bind server");
    assert_eq!(server.pending_replay(), 1);
    let state = server.state();
    let handle = server.start().expect("start server");
    assert_eq!(state.lifecycle(), deepdive_serve::Lifecycle::Replaying);

    // Shutdown races the replay thread; it sets Draining, then joins replay.
    let summary = handle.graceful_shutdown().expect("graceful shutdown");
    assert!(summary.checkpoint_flushed, "final flush covers the replay");
    assert_eq!(
        state.lifecycle(),
        deepdive_serve::Lifecycle::Draining,
        "replay's Ready transition must not clobber Draining"
    );
    assert_eq!(state.wal_gauges().0, 0, "flush still truncated the WAL");
}

/// Graceful shutdown drains, flushes a checkpoint covering every acked
/// ingest, and truncates the WAL — so the next start has nothing to
/// replay but serves the ingested state.
#[test]
fn graceful_drain_flushes_checkpoint_and_truncates_wal() {
    let config = tiny_config();
    let corpus = deepdive_corpus::spouse::generate(&config.corpus);
    let mut app = SpouseApp::build_with_corpus(config.clone(), corpus.clone()).expect("app");
    app.run().expect("base run");

    let ckpt_dir = tmpdir("drain-ckpt");
    let wal_dir = tmpdir("drain-wal");
    let ckpt = Checkpoint::new(ckpt_dir.clone()).expect("checkpoint");
    app.dd.save_checkpoint(&ckpt).expect("save checkpoint");
    let changes = app.document_changes("Grace Hill and her husband Henry Hill opened a shop.");

    let serve_config = ServeConfig {
        page_limit: 100_000,
        wal_dir: Some(wal_dir.clone()),
        checkpoint_dir: Some(ckpt_dir.clone()),
        ..Default::default()
    };
    let server = Server::new(app.dd, &serve_config).expect("bind server");
    let handle = server.start().expect("start server");
    let addr = handle.addr();

    let (status, _) = http(addr, "POST", "/documents", Some(&ingest_body(&changes)));
    assert_eq!(status, 200);
    let ingested = served_relation(addr, "MarriedCandidate");

    let summary = handle.graceful_shutdown().expect("graceful shutdown");
    assert_eq!(summary.stragglers, 0, "nothing was in flight");
    assert!(summary.checkpoint_flushed, "final checkpoint flushed");

    let (wal, recovery) = Wal::open(&wal_dir, Arc::new(FaultInjector::new())).expect("reopen wal");
    assert_eq!(wal.records(), 0, "drain truncated the WAL");
    assert!(recovery.records.is_empty() && !recovery.torn_tail);
    drop(wal);

    // Restart: nothing to replay, and the ingested rows are in the
    // checkpoint.
    let mut app2 = SpouseApp::build_with_corpus(config, corpus).expect("restart app");
    app2.dd
        .load_checkpoint(&Checkpoint::new(ckpt_dir).expect("checkpoint"))
        .expect("restore checkpoint");
    let server2 = Server::new(app2.dd, &serve_config).expect("rebind");
    assert_eq!(server2.pending_replay(), 0);
    let handle2 = server2.start().expect("restart");
    wait_ready(handle2.addr());
    assert_eq!(
        served_relation(handle2.addr(), "MarriedCandidate"),
        ingested,
        "checkpoint captured the acked ingest"
    );
    handle2.shutdown();
}
