//! Live-subscription parity tests: a client that applies every delta frame
//! reconstructs exactly the state `/relations` and `/marginals` serve at
//! each epoch — through DRed retractions, shed/re-base cycles, handler
//! panics, and on a follower applying the primary's WAL.
//!
//! The delta router diffs consecutive snapshots, so parity here is the
//! whole contract: every row the server believes in is announced, every
//! retraction is explicit, and counts match bit-for-bit.

use deepdive_core::apps::{SpouseApp, SpouseAppConfig};
use deepdive_core::faults::points;
use deepdive_core::{Checkpoint, DeepDive, FaultInjector, RunConfig};
use deepdive_corpus::SpouseConfig;
use deepdive_sampler::{GibbsOptions, LearnOptions};
use deepdive_serve::{ServeConfig, Server};
use deepdive_storage::{BaseChange, Value};
use serde_json::{json, Map, Value as Json};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A datalog program whose derived relation *retracts* under ingest: every
/// `Excl(x)` insert DReds away previously-derived `Out(x, y)` rows. POST
/// /documents only ever inserts base tuples, so this is how subscription
/// streams get exercised with genuine deletes.
const NEGATION_PROGRAM: &str = "
    R(x int, y int).
    Excl(x int).
    Out(x int, y int).
    Out(x, y) :- R(x, y), !Excl(x).
";

fn negation_app() -> DeepDive {
    DeepDive::builder(NEGATION_PROGRAM)
        .config(RunConfig {
            threads: deepdive_storage::threads_from_env().unwrap_or(2),
            ..Default::default()
        })
        .build()
        .expect("compile negation program")
}

fn spouse_config() -> SpouseAppConfig {
    SpouseAppConfig {
        corpus: SpouseConfig {
            num_docs: 12,
            num_people: 10,
            num_married_pairs: 4,
            num_sibling_pairs: 3,
            ..Default::default()
        },
        run: RunConfig {
            learn: LearnOptions {
                epochs: 30,
                ..Default::default()
            },
            inference: GibbsOptions {
                burn_in: 20,
                samples: 200,
                clamp_evidence: true,
                ..Default::default()
            },
            threads: 1,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("dd-subs-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("create tmpdir");
    d
}

fn free_port() -> u16 {
    TcpListener::bind("127.0.0.1:0")
        .expect("probe port")
        .local_addr()
        .expect("probe addr")
        .port()
}

/// Minimal HTTP/1.1 client: one request, `Connection: close`, JSON out.
fn http(addr: SocketAddr, method: &str, path: &str, body: Option<&Json>) -> (u16, Json) {
    let mut stream = TcpStream::connect(addr).expect("connect to daemon");
    let body_text = body
        .map(|b| serde_json::to_string(b).expect("serializable body"))
        .unwrap_or_default();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{}",
        body_text.len(),
        body_text
    )
    .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let payload = raw.split("\r\n\r\n").nth(1).unwrap_or("");
    let value = serde_json::from_str(payload).unwrap_or(Json::Null);
    (status, value)
}

fn get(addr: SocketAddr, path: &str) -> (u16, Json) {
    http(addr, "GET", path, None)
}

fn wait_epoch(addr: SocketAddr, epoch: u64) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, v) = get(addr, "/healthz");
        assert_eq!(status, 200, "healthz while waiting for epoch: {v}");
        if v.get("epoch").and_then(Json::as_u64) >= Some(epoch) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "never reached epoch {epoch}: {v}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn ingest(addr: SocketAddr, rows: &[(&str, Vec<Json>)]) {
    let mut by_relation: BTreeMap<String, Vec<Json>> = BTreeMap::new();
    for (rel, row) in rows {
        by_relation
            .entry((*rel).to_string())
            .or_default()
            .push(Json::Array(row.clone()));
    }
    let mut obj = Map::new();
    for (rel, r) in by_relation {
        obj.insert(rel, Json::Array(r));
    }
    let body = json!({ "rows": Json::Object(obj) });
    let (status, v) = http(addr, "POST", "/documents", Some(&body));
    assert_eq!(status, 200, "POST /documents: {v}");
}

fn value_to_cell(v: &Value) -> Json {
    match v {
        Value::Null => Json::Null,
        Value::Bool(b) => json!(*b),
        Value::Int(i) => json!(*i),
        Value::Float(f) => json!(*f),
        Value::Text(t) => json!(t.as_ref()),
        Value::Id(id) => json!(*id),
    }
}

fn ingest_body(changes: &[BaseChange]) -> Json {
    let mut by_relation: BTreeMap<String, Vec<Json>> = BTreeMap::new();
    for ch in changes {
        let cells: Vec<Json> = ch.row.iter().map(value_to_cell).collect();
        by_relation
            .entry(ch.relation.clone())
            .or_default()
            .push(Json::Array(cells));
    }
    let mut rows = Map::new();
    for (relation, rel_rows) in by_relation {
        rows.insert(relation, Json::Array(rel_rows));
    }
    json!({ "rows": Json::Object(rows) })
}

/// A subscriber's reconstructed view: row (as rendered JSON array) -> count
/// for the relation half, row -> probability bits for the marginal half.
#[derive(Default, Debug, PartialEq)]
struct Replica {
    rows: BTreeMap<String, i64>,
    marginals: BTreeMap<String, u64>,
    epoch: u64,
}

impl Replica {
    /// Apply one frame (snapshot / delta / lagged / heartbeat) exactly as
    /// the protocol specifies.
    fn apply(&mut self, frame: &Json) {
        match frame.get("type").and_then(Json::as_str) {
            Some("snapshot") => {
                self.rows.clear();
                self.marginals.clear();
                if let Some(rows) = frame
                    .get("relation")
                    .and_then(|r| r.get("rows"))
                    .and_then(Json::as_array)
                {
                    for entry in rows {
                        self.rows.insert(
                            entry.get("row").unwrap().to_string(),
                            entry.get("count").and_then(Json::as_i64).unwrap(),
                        );
                    }
                }
                if let Some(rows) = frame
                    .get("marginals")
                    .and_then(|m| m.get("rows"))
                    .and_then(Json::as_array)
                {
                    for entry in rows {
                        self.marginals.insert(
                            entry.get("row").unwrap().to_string(),
                            entry.get("p").and_then(Json::as_f64).unwrap().to_bits(),
                        );
                    }
                }
                self.epoch = frame.get("epoch").and_then(Json::as_u64).unwrap();
            }
            Some("delta") => {
                if let Some(rel) = frame.get("relation") {
                    for up in rel.get("upserts").and_then(Json::as_array).unwrap() {
                        self.rows.insert(
                            up.get("row").unwrap().to_string(),
                            up.get("count").and_then(Json::as_i64).unwrap(),
                        );
                    }
                    for del in rel.get("deletes").and_then(Json::as_array).unwrap() {
                        self.rows.remove(&del.to_string());
                    }
                }
                if let Some(m) = frame.get("marginals") {
                    for up in m.get("upserts").and_then(Json::as_array).unwrap() {
                        self.marginals.insert(
                            up.get("row").unwrap().to_string(),
                            up.get("p").and_then(Json::as_f64).unwrap().to_bits(),
                        );
                    }
                    for del in m.get("deletes").and_then(Json::as_array).unwrap() {
                        self.marginals.remove(&del.to_string());
                    }
                }
                self.epoch = frame.get("epoch").and_then(Json::as_u64).unwrap();
            }
            Some("heartbeat") | Some("lagged") => {}
            other => panic!("unknown frame type {other:?} in {frame}"),
        }
    }
}

/// What the server itself says a relation holds at the current epoch, in
/// the same canonical form [`Replica`] keeps (rows as JSON arrays in column
/// order).
fn served_relation(addr: SocketAddr, name: &str, columns: &[&str]) -> BTreeMap<String, i64> {
    let (status, v) = get(addr, &format!("/relations/{name}?limit=100000"));
    assert_eq!(status, 200, "GET /relations/{name}: {v}");
    v.get("rows")
        .and_then(Json::as_array)
        .expect("rows array")
        .iter()
        .map(|row| {
            let arr: Vec<Json> = columns
                .iter()
                .map(|c| row.get(c).expect("column present").clone())
                .collect();
            (
                Json::Array(arr).to_string(),
                row.get("count").and_then(Json::as_i64).expect("count"),
            )
        })
        .collect()
}

/// The served marginal band in [`Replica`] form (probability bits).
fn served_marginals(
    addr: SocketAddr,
    name: &str,
    columns: &[&str],
    min_p: f64,
) -> BTreeMap<String, u64> {
    let (status, v) = get(
        addr,
        &format!("/marginals/{name}?limit=100000&min_p={min_p}"),
    );
    assert_eq!(status, 200, "GET /marginals/{name}: {v}");
    v.get("rows")
        .and_then(Json::as_array)
        .expect("rows array")
        .iter()
        .map(|row| {
            let arr: Vec<Json> = columns
                .iter()
                .map(|c| row.get(c).expect("column present").clone())
                .collect();
            (
                Json::Array(arr).to_string(),
                row.get("probability")
                    .and_then(Json::as_f64)
                    .expect("probability")
                    .to_bits(),
            )
        })
        .collect()
}

/// A streaming subscription connection: sends `POST /subscriptions` with
/// `mode: "stream"` and decodes the chunked ndjson frames as they arrive.
struct StreamSub {
    reader: BufReader<TcpStream>,
    pending: String,
}

impl StreamSub {
    fn open(addr: SocketAddr, body: &Json) -> StreamSub {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");
        let text = serde_json::to_string(body).expect("body");
        write!(
            stream,
            "POST /subscriptions HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{}",
            text.len(),
            text
        )
        .expect("send subscribe");
        let mut reader = BufReader::new(stream);
        // Consume the response head; the status must be 200 (streaming).
        let mut line = String::new();
        reader.read_line(&mut line).expect("status line");
        assert!(
            line.contains("200"),
            "subscription stream refused: {}",
            line.trim()
        );
        loop {
            let mut l = String::new();
            reader.read_line(&mut l).expect("header line");
            if l == "\r\n" || l == "\n" || l.is_empty() {
                break;
            }
        }
        StreamSub {
            reader,
            pending: String::new(),
        }
    }

    /// Block for the next ndjson frame.
    fn next_frame(&mut self) -> Json {
        loop {
            if let Some(idx) = self.pending.find('\n') {
                let line: String = self.pending.drain(..=idx).collect();
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                return serde_json::from_str(line).expect("frame is JSON");
            }
            // Next chunk: hex size line, payload, trailing CRLF.
            let mut size_line = String::new();
            self.reader.read_line(&mut size_line).expect("chunk size");
            let size = usize::from_str_radix(size_line.trim(), 16).expect("hex chunk size");
            assert!(size > 0, "stream ended before the expected frame");
            let mut payload = vec![0u8; size + 2];
            self.reader.read_exact(&mut payload).expect("chunk payload");
            payload.truncate(size);
            self.pending
                .push_str(std::str::from_utf8(&payload).expect("utf8 chunk"));
        }
    }

    /// Apply frames into `replica` until it has reached `epoch`.
    fn drive_to(&mut self, replica: &mut Replica, epoch: u64) {
        while replica.epoch < epoch {
            let frame = self.next_frame();
            replica.apply(&frame);
        }
    }
}

/// Deterministic xorshift so the "random" ingest schedule is reproducible.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Tentpole + satellite 4 (stream half): a randomized insert/exclude
/// sequence drives DRed retractions through `Out`; a streaming subscriber
/// applying every frame must land bit-identically on what `/relations`
/// serves at the final epoch.
#[test]
fn stream_subscriber_reconstructs_relations_through_retractions() {
    let server = Server::new(negation_app(), &ServeConfig::default()).expect("bind");
    let handle = server.start().expect("start");
    let addr = handle.addr();

    let mut sub = StreamSub::open(
        addr,
        &json!({ "relation": json!({ "name": "Out" }), "mode": "stream" }),
    );
    let mut replica = Replica::default();
    // The stream opens with a snapshot of the (empty) initial state.
    let first = sub.next_frame();
    assert_eq!(first.get("type").and_then(Json::as_str), Some("snapshot"));
    replica.apply(&first);

    let mut rng = Rng(0x00c0ffee);
    let mut epochs = 0u64;
    for _ in 0..30 {
        let mut rows: Vec<(&str, Vec<Json>)> = Vec::new();
        for _ in 0..1 + rng.below(3) {
            if rng.below(3) == 0 {
                // Only a slice of the domain is excludable, so retractions
                // happen without eventually emptying `Out`.
                rows.push(("Excl", vec![json!(rng.below(3))]));
            } else {
                rows.push(("R", vec![json!(rng.below(12)), json!(rng.below(12))]));
            }
        }
        ingest(addr, &rows);
        epochs += 1;
    }

    sub.drive_to(&mut replica, epochs);
    assert_eq!(replica.epoch, epochs, "frames arrive one per epoch");
    let served = served_relation(addr, "Out", &["x", "y"]);
    assert_eq!(replica.rows, served, "replayed stream == served relation");
    assert!(!served.is_empty(), "the schedule derived at least one row");

    // The schedule must actually have exercised retractions, or this test
    // proves nothing about DRed deltas.
    let (_, excl) = get(addr, "/relations/Excl?limit=100000");
    assert!(
        excl.get("total").and_then(Json::as_u64).unwrap() > 0,
        "schedule never excluded anything"
    );

    drop(sub); // hang up; the server reaps the stream subscription
    handle.shutdown();
}

/// Tentpole + satellite 4 (long-poll half): the cursor protocol replays to
/// the same exact state, with acks carried by the next poll's `from`.
#[test]
fn long_poll_cursor_reconstructs_relations() {
    let server = Server::new(negation_app(), &ServeConfig::default()).expect("bind");
    let handle = server.start().expect("start");
    let addr = handle.addr();

    let (status, created) = http(
        addr,
        "POST",
        "/subscriptions",
        Some(&json!({ "relation": json!({ "name": "Out" }), "mode": "poll" })),
    );
    assert_eq!(status, 201, "{created}");
    let id = created
        .get("id")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();
    let mut replica = Replica::default();
    replica.apply(created.get("snapshot").expect("initial snapshot"));

    let mut rng = Rng(0xdead2bad);
    let mut epochs = 0u64;
    for round in 0..24 {
        let mut rows: Vec<(&str, Vec<Json>)> = Vec::new();
        for _ in 0..1 + rng.below(3) {
            if rng.below(3) == 0 {
                rows.push(("Excl", vec![json!(rng.below(6))]));
            } else {
                rows.push(("R", vec![json!(rng.below(6)), json!(rng.below(6))]));
            }
        }
        ingest(addr, &rows);
        epochs += 1;

        // Poll mid-schedule too, so acks interleave with routing.
        if round % 5 == 4 {
            let (status, v) = get(
                addr,
                &format!("/subscriptions/{id}?from={}&wait_ms=2000", replica.epoch),
            );
            assert_eq!(status, 200, "{v}");
            for frame in v.get("frames").and_then(Json::as_array).unwrap() {
                replica.apply(frame);
            }
        }
    }

    // Drain the rest. Re-request the same cursor once to prove delivery is
    // at-least-once and re-polling a cursor is harmless.
    let mut polls = 0;
    while replica.epoch < epochs {
        let from = replica.epoch;
        let (status, v) = get(
            addr,
            &format!("/subscriptions/{id}?from={from}&wait_ms=2000"),
        );
        assert_eq!(status, 200, "{v}");
        let (status2, v2) = get(addr, &format!("/subscriptions/{id}?from={from}&wait_ms=0"));
        assert_eq!(status2, 200);
        assert_eq!(
            v.get("frames").unwrap().to_string(),
            v2.get("frames").unwrap().to_string(),
            "un-acked frames are re-served, not consumed"
        );
        for frame in v.get("frames").and_then(Json::as_array).unwrap() {
            replica.apply(frame);
        }
        polls += 1;
        assert!(polls < 200, "cursor never reached epoch {epochs}");
    }
    assert_eq!(replica.rows, served_relation(addr, "Out", &["x", "y"]));

    let (status, v) = http(addr, "DELETE", &format!("/subscriptions/{id}"), None);
    assert_eq!(status, 200, "{v}");
    handle.shutdown();
}

/// Marginal-threshold subscriptions: band entry/exit/retraction deltas
/// across Gibbs refreshes land exactly on `/marginals?min_p=`.
#[test]
fn marginal_threshold_subscription_matches_served_band() {
    let mut app = SpouseApp::build(spouse_config()).expect("build spouse app");
    app.run().expect("batch run");
    let extra_docs = [
        "Alice Young and her husband Bob Young toured the museum.",
        "Carol King and her husband David King hosted a dinner.",
    ];
    let batches: Vec<Vec<BaseChange>> = extra_docs
        .iter()
        .map(|text| app.document_changes(text))
        .collect();
    assert!(batches.iter().all(|b| !b.is_empty()));

    let config = ServeConfig {
        page_limit: 100_000,
        ..Default::default()
    };
    let server = Server::new(app.dd, &config).expect("bind");
    let handle = server.start().expect("start");
    let addr = handle.addr();

    const MIN_P: f64 = 0.5;
    let (status, created) = http(
        addr,
        "POST",
        "/subscriptions",
        Some(&json!({
            "marginals": json!({ "name": "MarriedMentions", "min_p": MIN_P }),
            "mode": "poll",
        })),
    );
    assert_eq!(status, 201, "{created}");
    let id = created
        .get("id")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();
    let mut replica = Replica::default();
    replica.apply(created.get("snapshot").expect("initial snapshot"));

    for batch in &batches {
        let (status, v) = http(addr, "POST", "/documents", Some(&ingest_body(batch)));
        assert_eq!(status, 200, "POST /documents: {v}");
    }
    let epochs = batches.len() as u64;
    while replica.epoch < epochs {
        let (status, v) = get(
            addr,
            &format!("/subscriptions/{id}?from={}&wait_ms=2000", replica.epoch),
        );
        assert_eq!(status, 200, "{v}");
        for frame in v.get("frames").and_then(Json::as_array).unwrap() {
            replica.apply(frame);
        }
    }

    let served = served_marginals(addr, "MarriedMentions", &["m1", "m2"], MIN_P);
    assert_eq!(
        replica.marginals, served,
        "band replay == served thresholded marginals, bit-for-bit"
    );
    assert!(!served.is_empty(), "the pipeline believes in something");
    handle.shutdown();
}

/// Shed/resume: a consumer that ignores its queue past the byte budget is
/// shed (never blocking ingest), then re-based by an explicit reset — and
/// still converges to exact parity.
#[test]
fn shed_subscriber_rebases_and_recovers_parity() {
    let config = ServeConfig {
        sub_queue_bytes: 1024, // the floor: overflow after a few frames
        ..Default::default()
    };
    let server = Server::new(negation_app(), &config).expect("bind");
    let handle = server.start().expect("start");
    let addr = handle.addr();

    let (status, created) = http(
        addr,
        "POST",
        "/subscriptions",
        Some(&json!({ "relation": json!({ "name": "Out" }), "mode": "poll" })),
    );
    assert_eq!(status, 201, "{created}");
    let id = created
        .get("id")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();
    let mut replica = Replica::default();
    replica.apply(created.get("snapshot").expect("initial snapshot"));

    // Never poll while flooding: wide rows overflow the 1 KiB queue.
    let mut rng = Rng(0x5eed);
    let mut epochs = 0u64;
    for _ in 0..12 {
        let rows: Vec<(&str, Vec<Json>)> = (0..8)
            .map(|_| {
                (
                    "R",
                    vec![json!(rng.below(100) as i64), json!(rng.below(100) as i64)],
                )
            })
            .collect();
        ingest(addr, &rows);
        epochs += 1;
    }

    let (status, v) = get(addr, "/metrics");
    assert_eq!(status, 200);
    let sheds = v
        .get("subscriptions")
        .and_then(|s| s.get("sheds"))
        .and_then(Json::as_u64)
        .expect("sheds gauge");
    assert!(sheds >= 1, "the queue never overflowed: {v}");

    // The stale cursor gets an explicit reset carrying a snapshot — not a
    // silent gap, not a block.
    let (status, v) = get(addr, &format!("/subscriptions/{id}?from={}", replica.epoch));
    assert_eq!(status, 200, "{v}");
    assert_eq!(v.get("reset").and_then(Json::as_bool), Some(true), "{v}");
    for frame in v.get("frames").and_then(Json::as_array).unwrap() {
        replica.apply(frame);
    }
    while replica.epoch < epochs {
        let (status, v) = get(
            addr,
            &format!("/subscriptions/{id}?from={}&wait_ms=2000", replica.epoch),
        );
        assert_eq!(status, 200, "{v}");
        for frame in v.get("frames").and_then(Json::as_array).unwrap() {
            replica.apply(frame);
        }
    }
    assert_eq!(replica.rows, served_relation(addr, "Out", &["x", "y"]));
    handle.shutdown();
}

/// Followers serve subscriptions from replicated epochs: a subscriber on
/// the follower reconstructs exactly the follower's own served state, and
/// `POST /documents` there is refused with the primary's address attached
/// (satellite 2).
#[test]
fn follower_serves_subscriptions_and_redirects_writes() {
    let p_wal = tmpdir("fol-p-wal");
    let f_wal = tmpdir("fol-f-wal");
    let p_ckpt = tmpdir("fol-p-ckpt");
    let f_ckpt = tmpdir("fol-f-ckpt");

    // Identical (empty) base state on both nodes, checkpointed so a
    // follower restart could restore it.
    let primary_dd = negation_app();
    primary_dd
        .save_checkpoint(&Checkpoint::new(p_ckpt.clone()).expect("primary ckpt"))
        .expect("save primary");
    let follower_dd = negation_app();
    follower_dd
        .save_checkpoint(&Checkpoint::new(f_ckpt.clone()).expect("follower ckpt"))
        .expect("save follower");

    let primary_cfg = ServeConfig {
        addr: format!("127.0.0.1:{}", free_port()),
        page_limit: 100_000,
        wal_dir: Some(p_wal.clone()),
        checkpoint_dir: Some(p_ckpt.clone()),
        ..Default::default()
    };
    let primary = Server::new(primary_dd, &primary_cfg)
        .expect("bind primary")
        .start()
        .expect("start primary");
    let p_addr = primary.addr();

    let follower_cfg = ServeConfig {
        addr: format!("127.0.0.1:{}", free_port()),
        page_limit: 100_000,
        wal_dir: Some(f_wal.clone()),
        checkpoint_dir: Some(f_ckpt.clone()),
        follow: Some(format!("http://{p_addr}")),
        ..Default::default()
    };
    let follower = Server::new(follower_dd, &follower_cfg)
        .expect("bind follower")
        .start()
        .expect("start follower");
    let f_addr = follower.addr();

    let (status, created) = http(
        f_addr,
        "POST",
        "/subscriptions",
        Some(&json!({ "relation": json!({ "name": "Out" }), "mode": "poll" })),
    );
    assert_eq!(status, 201, "follower refused subscription: {created}");
    let id = created
        .get("id")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();
    let mut replica = Replica::default();
    replica.apply(created.get("snapshot").expect("initial snapshot"));

    let mut rng = Rng(0xf0110e);
    let mut epochs = 0u64;
    for _ in 0..10 {
        let mut rows: Vec<(&str, Vec<Json>)> = Vec::new();
        for _ in 0..1 + rng.below(2) {
            if rng.below(3) == 0 {
                rows.push(("Excl", vec![json!(rng.below(5))]));
            } else {
                rows.push(("R", vec![json!(rng.below(5)), json!(rng.below(5))]));
            }
        }
        ingest(p_addr, &rows);
        epochs += 1;
    }
    wait_epoch(f_addr, epochs);

    while replica.epoch < epochs {
        let (status, v) = get(
            f_addr,
            &format!("/subscriptions/{id}?from={}&wait_ms=2000", replica.epoch),
        );
        assert_eq!(status, 200, "{v}");
        for frame in v.get("frames").and_then(Json::as_array).unwrap() {
            replica.apply(frame);
        }
    }
    assert_eq!(
        replica.rows,
        served_relation(f_addr, "Out", &["x", "y"]),
        "follower subscription == follower state"
    );
    assert_eq!(
        replica.rows,
        served_relation(p_addr, "Out", &["x", "y"]),
        "follower state == primary state at the same epoch"
    );

    // Satellite 2: a write to the follower is a 405 that tells the client
    // what it may do here and where writes go.
    let mut stream = TcpStream::connect(f_addr).expect("connect follower");
    let body = json!({ "rows": json!({ "R": json!([json!([1, 1])]) }) }).to_string();
    write!(
        stream,
        "POST /documents HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    )
    .expect("send write");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read 405");
    let head = raw.split("\r\n\r\n").next().unwrap_or("");
    assert!(raw.starts_with("HTTP/1.1 405"), "{head}");
    assert!(
        head.lines()
            .any(|l| l.eq_ignore_ascii_case("allow: GET, HEAD")),
        "missing Allow header: {head}"
    );
    assert!(
        head.lines()
            .any(|l| l.to_ascii_lowercase() == format!("x-dd-primary: http://{p_addr}")),
        "missing X-DD-Primary header: {head}"
    );

    follower.shutdown();
    primary.shutdown();
    for d in [p_wal, f_wal, p_ckpt, f_ckpt] {
        let _ = std::fs::remove_dir_all(d);
    }
}

/// Satellite 3 regression: a handler panic answers 500, bumps
/// `panic_total`, and the worker keeps serving; malformed-but-parseable
/// requests get clean 4xxs, never a dead worker.
#[test]
fn handler_panic_and_malformed_requests_cannot_kill_workers() {
    let faults = Arc::new(FaultInjector::new());
    let config = ServeConfig {
        workers: 1, // one worker: if a panic killed it, nothing would answer
        faults: Arc::clone(&faults),
        ..Default::default()
    };
    let server = Server::new(negation_app(), &config).expect("bind");
    let handle = server.start().expect("start");
    let addr = handle.addr();

    // A genuine panic inside the routed handler: caught, answered 500.
    faults.arm(points::SERVE_HANDLER_PANIC, 1);
    let (status, v) = get(addr, "/relations/Out");
    assert_eq!(status, 500, "{v}");

    // The same (sole) worker keeps serving.
    let (status, _) = get(addr, "/relations/Out");
    assert_eq!(status, 200);
    let (status, v) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert_eq!(
        v.get("admission")
            .and_then(|a| a.get("panic_total"))
            .and_then(Json::as_u64),
        Some(1),
        "{v}"
    );

    // Malformed-but-parseable requests: valid HTTP, hostile payloads.
    let cases: Vec<(&str, &str, Option<Json>, u16)> = vec![
        ("POST", "/subscriptions", Some(json!([1, 2, 3])), 400),
        ("POST", "/subscriptions", Some(json!({ "bogus": 1 })), 400),
        (
            "POST",
            "/subscriptions",
            Some(json!({ "relation": json!({ "name": "Nope" }) })),
            404,
        ),
        (
            "POST",
            "/subscriptions",
            Some(json!({ "relation": json!({ "name": "Out", "where": json!({ "zz": 1 }) }) })),
            400,
        ),
        (
            "POST",
            "/subscriptions",
            Some(json!({ "relation": json!({ "name": "Out" }), "mode": "telepathy" })),
            400,
        ),
        ("GET", "/subscriptions/no-such-sub", None, 404),
        ("GET", "/relations/Out?epoch=banana", None, 400),
        ("GET", "/relations/Out?x=notanint", None, 200), // unsatisfiable, empty page
        ("PUT", "/subscriptions", None, 405),
        ("PATCH", "/subscriptions/some-id", None, 405),
    ];
    for (method, path, body, want) in cases {
        let (status, v) = http(addr, method, path, body.as_ref());
        assert_eq!(status, want, "{method} {path}: {v}");
        // And after each hostile request, the worker still answers.
        let (alive, _) = get(addr, "/healthz");
        assert_eq!(alive, 200, "worker died after {method} {path}");
    }

    handle.shutdown();
}

/// Satellite 1: `/relations` page cursors pin to the epoch captured on page
/// one; a retired epoch answers `410 Gone` with the current epoch.
#[test]
fn relation_pages_pin_to_their_epoch_and_retire_to_410() {
    let server = Server::new(negation_app(), &ServeConfig::default()).expect("bind");
    let handle = server.start().expect("start");
    let addr = handle.addr();

    // Epoch 1: twelve rows to page over.
    let rows: Vec<(&str, Vec<Json>)> = (0..12i64)
        .map(|i| ("R", vec![json!(i), json!(i)]))
        .collect();
    ingest(addr, &rows);

    let (status, page1) = get(addr, "/relations/Out?limit=5&offset=0");
    assert_eq!(status, 200, "{page1}");
    let epoch = page1.get("epoch").and_then(Json::as_u64).unwrap();
    assert_eq!(epoch, 1);

    // Concurrent ingest advances the server past the scan's epoch…
    ingest(addr, &[("Excl", vec![json!(0)]), ("Excl", vec![json!(1)])]);

    // …but pinned pages keep reading the same frozen snapshot.
    let (status, page2) = get(
        addr,
        &format!("/relations/Out?limit=5&offset=5&epoch={epoch}"),
    );
    assert_eq!(status, 200, "{page2}");
    assert_eq!(page2.get("epoch").and_then(Json::as_u64), Some(epoch));
    assert_eq!(
        page2.get("total").and_then(Json::as_u64),
        page1.get("total").and_then(Json::as_u64),
        "pinned pages agree on the total even after a swap"
    );
    let (status, page3) = get(
        addr,
        &format!("/relations/Out?limit=5&offset=10&epoch={epoch}"),
    );
    assert_eq!(status, 200);
    let mut seen: Vec<String> = [&page1, &page2, &page3]
        .iter()
        .flat_map(|p| p.get("rows").and_then(Json::as_array).unwrap().clone())
        .map(|r| r.to_string())
        .collect();
    let total = page1.get("total").and_then(Json::as_u64).unwrap() as usize;
    assert_eq!(seen.len(), total, "pages cover the snapshot exactly once");
    seen.sort();
    seen.dedup();
    assert_eq!(seen.len(), total, "no row served twice across pages");

    // Push the pinned epoch out of the retention ring.
    for i in 0..9i64 {
        ingest(addr, &[("R", vec![json!(100 + i), json!(0)])]);
    }
    let (status, gone) = get(addr, &format!("/relations/Out?limit=5&epoch={epoch}"));
    assert_eq!(status, 410, "{gone}");
    assert_eq!(
        gone.get("current_epoch").and_then(Json::as_u64),
        Some(1 + 1 + 9),
        "410 carries the epoch to restart from"
    );

    handle.shutdown();
}
