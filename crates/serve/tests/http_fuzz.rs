//! Fuzz and malformation tests for the hand-rolled HTTP codec: arbitrary
//! bytes must never panic the parser, and specific malformations must map
//! to their specific status codes (400 syntax, 413 oversized body, 431
//! oversized headers) rather than a hang or a crash.

use deepdive_serve::http::{ParseError, ParseLimits, Request};
use proptest::prelude::*;
use std::time::{Duration, Instant};

fn parse(bytes: &[u8]) -> Result<Request, ParseError> {
    let mut r: &[u8] = bytes;
    Request::parse(&mut r)
}

/// Every parse failure must be a mapped status the daemon can answer, or a
/// network-level error it hangs up on — never anything else.
fn assert_well_classified(result: &Result<Request, ParseError>) {
    if let Err(ParseError::Bad { status, .. }) = result {
        assert!(
            matches!(status, 400 | 408 | 413 | 431),
            "unmapped parse status {status}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The parser is total on arbitrary bytes.
    #[test]
    fn parser_never_panics_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        assert_well_classified(&parse(&bytes));
    }

    /// Garbage request lines (any printable junk) never panic, and always
    /// classify to a mapped status.
    #[test]
    fn garbage_request_lines_are_classified(line in "\\PC{0,128}") {
        let raw = format!("{line}\r\n\r\n");
        assert_well_classified(&parse(raw.as_bytes()));
    }

    /// Pipelined junk after a complete request is ignored: the daemon is
    /// one-request-per-connection, so trailing bytes (a smuggled second
    /// request, random noise) must not corrupt the first parse.
    #[test]
    fn pipelined_junk_after_a_request_is_ignored(junk in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut raw = b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n".to_vec();
        raw.extend_from_slice(&junk);
        let req = parse(&raw).expect("valid prefix parses");
        prop_assert_eq!(req.method.as_str(), "GET");
        prop_assert_eq!(req.path.as_str(), "/healthz");
        prop_assert!(req.body.is_empty());
    }

    /// Declared bodies round-trip whatever bytes they carry.
    #[test]
    fn declared_bodies_roundtrip(body in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut raw = format!(
            "POST /documents HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            body.len()
        )
        .into_bytes();
        raw.extend_from_slice(&body);
        let req = parse(&raw).expect("well-formed request parses");
        prop_assert_eq!(req.body, body);
    }
}

#[test]
fn missing_content_length_means_empty_body() {
    let req = parse(b"POST /documents HTTP/1.1\r\nHost: t\r\n\r\nleftover").expect("parses");
    assert!(req.body.is_empty(), "no Content-Length, no body read");
}

#[test]
fn duplicate_content_length_is_400() {
    let raw = b"POST /d HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 3\r\n\r\nabc";
    match parse(raw) {
        Err(ParseError::Bad { status, .. }) => assert_eq!(status, 400),
        other => panic!("duplicate Content-Length must be 400, got {other:?}"),
    }
}

#[test]
fn non_numeric_content_length_is_400() {
    match parse(b"POST /d HTTP/1.1\r\nContent-Length: banana\r\n\r\n") {
        Err(ParseError::Bad { status, .. }) => assert_eq!(status, 400),
        other => panic!("bad Content-Length must be 400, got {other:?}"),
    }
}

#[test]
fn oversized_declared_body_is_413() {
    let raw = format!(
        "POST /d HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
        8 * 1024 * 1024 + 1
    );
    match parse(raw.as_bytes()) {
        Err(ParseError::Bad { status, .. }) => assert_eq!(status, 413),
        other => panic!("oversized body must be 413, got {other:?}"),
    }
}

#[test]
fn oversized_header_line_is_431() {
    let raw = format!("GET / HTTP/1.1\r\nX-Big: {}\r\n\r\n", "a".repeat(20_000));
    match parse(raw.as_bytes()) {
        Err(ParseError::Bad { status, .. }) => assert_eq!(status, 431),
        other => panic!("oversized header line must be 431, got {other:?}"),
    }
}

#[test]
fn too_many_header_lines_is_431() {
    let mut raw = String::from("GET / HTTP/1.1\r\n");
    for i in 0..100 {
        raw.push_str(&format!("X-H{i}: v\r\n"));
    }
    raw.push_str("\r\n");
    match parse(raw.as_bytes()) {
        Err(ParseError::Bad { status, .. }) => assert_eq!(status, 431),
        other => panic!("header flood must be 431, got {other:?}"),
    }
}

#[test]
fn empty_request_line_is_400() {
    match parse(b"\r\n\r\n") {
        Err(ParseError::Bad { status, .. }) => assert_eq!(status, 400),
        other => panic!("empty request line must be 400, got {other:?}"),
    }
}

#[test]
fn expired_deadline_is_408_not_a_hang() {
    let limits = ParseLimits {
        max_body: 1024,
        deadline: Some(Instant::now() - Duration::from_millis(1)),
    };
    let mut r: &[u8] = b"GET / HTTP/1.1\r\n\r\n";
    match Request::parse_with(&mut r, &limits) {
        Err(ParseError::Bad { status, .. }) => assert_eq!(status, 408),
        other => panic!("expired deadline must be 408, got {other:?}"),
    }
}
