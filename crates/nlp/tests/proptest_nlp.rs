//! Property-based tests on the NLP substrate: offsets, idempotence, safety
//! on arbitrary (including non-ASCII) input.

use deepdive_nlp::{split_sentences, strip_html, tokenize, Gazetteer};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every token's span slices the source to exactly the token text, and
    /// spans are strictly increasing and non-overlapping.
    #[test]
    fn token_spans_are_faithful_and_ordered(s in "\\PC{0,200}") {
        let toks = tokenize(&s);
        let mut last_end = 0;
        for t in &toks {
            prop_assert_eq!(&s[t.start..t.end], t.text.as_str());
            prop_assert!(t.start >= last_end, "overlap at {}", t.start);
            prop_assert!(t.end > t.start);
            last_end = t.end;
        }
    }

    /// Tokenization never invents non-whitespace characters: the
    /// concatenation of tokens is a subsequence of the input.
    #[test]
    fn tokens_preserve_content(s in "[a-zA-Z0-9 .,$'!?-]{0,120}") {
        let toks = tokenize(&s);
        let rebuilt: String = toks.iter().map(|t| t.text.as_str()).collect();
        let squashed: String = s.chars().filter(|c| !c.is_whitespace()).collect();
        let rebuilt: String = rebuilt.chars().filter(|c| !c.is_whitespace()).collect();
        prop_assert_eq!(rebuilt, squashed);
    }

    /// Sentence spans point into the source and cover the sentence text.
    #[test]
    fn sentence_spans_index_source(s in "\\PC{0,200}") {
        for sp in split_sentences(&s) {
            prop_assert!(sp.start <= sp.end && sp.end <= s.len());
            prop_assert!(s[sp.start..sp.end].contains(sp.text.trim()));
            prop_assert!(!sp.text.trim().is_empty());
        }
    }

    /// HTML stripping never leaves a tag opener and never panics, on any
    /// input (malformed markup included).
    #[test]
    fn strip_html_removes_all_tags(s in "\\PC{0,200}") {
        let out = strip_html(&s);
        // Any '<' left must have come from an entity-decoded `&lt;`.
        let lt_entities = s.matches("&lt;").count();
        let raw_lt = out.matches('<').count();
        prop_assert!(raw_lt <= lt_entities, "{} tags left in {:?}", raw_lt, out);
    }

    /// Gazetteer: inserted phrases are always found; longest_match length
    /// never exceeds the token window.
    #[test]
    fn gazetteer_finds_inserted_phrases(
        words in proptest::collection::vec("[a-z]{1,8}", 1..4)
    ) {
        let phrase = words.join(" ");
        let mut g = Gazetteer::new();
        g.insert(&phrase);
        prop_assert!(g.contains(&phrase));
        let toks: Vec<String> = words.clone();
        prop_assert_eq!(g.longest_match(&toks), Some(words.len()));
    }
}
