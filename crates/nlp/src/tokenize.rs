//! Tokenization with character offsets.
//!
//! Offsets are byte positions into the original sentence text, so mentions
//! extracted downstream can always be traced back to the exact source span —
//! a prerequisite for the "debuggable decisions" design goal (§2.5).

use serde::{Deserialize, Serialize};

/// Short abbreviations whose trailing period belongs to the token
/// (`Dr.`, `Oct.`, `B.`); single letters are handled separately.
const ABBREV: &[&str] = &[
    "dr", "mr", "mrs", "ms", "prof", "jr", "sr", "st", "vs", "etc", "inc", "ltd", "co", "jan",
    "feb", "mar", "apr", "jun", "jul", "aug", "sep", "sept", "oct", "nov", "dec", "no", "vol",
];

/// One token with its source span (byte offsets into the sentence).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Token {
    pub text: String,
    pub start: usize,
    pub end: usize,
}

impl Token {
    pub fn new(text: impl Into<String>, start: usize, end: usize) -> Self {
        Token {
            text: text.into(),
            start,
            end,
        }
    }
}

/// Tokenize a sentence: alphanumeric runs (with internal `'`/`-`/`.` between
/// alphanumerics, so `O'Brien`, `anti-viral` and `U.S.` stay whole), numbers
/// (with `,`/`.` separators and optional unit suffix split), and single
/// punctuation marks.
pub fn tokenize(text: &str) -> Vec<Token> {
    let bytes: Vec<(usize, char)> = text.char_indices().collect();
    let mut tokens = Vec::new();
    let mut i = 0;
    let n = bytes.len();

    let end_of = |idx: usize| -> usize {
        if idx < n {
            bytes[idx].0
        } else {
            text.len()
        }
    };

    while i < n {
        let (start, c) = bytes[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c.is_alphanumeric() || c == '$' && i + 1 < n && bytes[i + 1].1.is_ascii_digit() {
            // Currency glued to number: split `$` as its own token first.
            if c == '$' {
                tokens.push(Token::new("$", start, end_of(i + 1)));
                i += 1;
                continue;
            }
            let mut j = i + 1;
            while j < n {
                let cj = bytes[j].1;
                let continues = cj.is_alphanumeric()
                    || (cj == '\'' || cj == '-' || cj == '.' || cj == ',')
                        && j + 1 < n
                        && bytes[j + 1].1.is_alphanumeric();
                if !continues {
                    break;
                }
                j += 1;
            }
            let mut end = end_of(j);
            // Attach a trailing period to single initials and known
            // abbreviations ("B.", "Dr.", "Oct.").
            if j < n && bytes[j].1 == '.' {
                let word = &text[start..end];
                let is_initial = word.chars().count() == 1
                    && word.chars().next().is_some_and(char::is_uppercase);
                if is_initial || ABBREV.contains(&word.to_ascii_lowercase().as_str()) {
                    j += 1;
                    end = end_of(j);
                }
            }
            tokens.push(Token::new(&text[start..end], start, end));
            i = j;
        } else {
            let end = end_of(i + 1);
            tokens.push(Token::new(&text[start..end], start, end));
            i += 1;
        }
    }
    tokens
}

/// Lowercased token texts (bag-of-words helpers).
pub fn token_texts(tokens: &[Token]) -> Vec<&str> {
    tokens.iter().map(|t| t.text.as_str()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(s: &str) -> Vec<String> {
        tokenize(s).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn splits_words_and_punctuation() {
        assert_eq!(
            texts("B. Obama and Michelle were married Oct. 3, 1992."),
            vec![
                "B.", "Obama", "and", "Michelle", "were", "married", "Oct.", "3", ",", "1992", "."
            ]
        );
    }

    #[test]
    fn keeps_internal_apostrophes_and_hyphens() {
        assert_eq!(texts("O'Brien anti-viral"), vec!["O'Brien", "anti-viral"]);
    }

    #[test]
    fn splits_currency_from_amount() {
        assert_eq!(texts("$150 per hour"), vec!["$", "150", "per", "hour"]);
    }

    #[test]
    fn numbers_keep_thousands_separators() {
        assert_eq!(texts("1,234.56 units"), vec!["1,234.56", "units"]);
    }

    #[test]
    fn offsets_cover_source_spans() {
        let s = "Dr. Smith, MD";
        for t in tokenize(s) {
            assert_eq!(&s[t.start..t.end], t.text, "span mismatch");
        }
    }

    #[test]
    fn unicode_text_does_not_panic_and_spans_align() {
        let s = "Zoë visited Café 42 — twice";
        for t in tokenize(s) {
            assert_eq!(&s[t.start..t.end], t.text);
        }
        assert!(texts(s).contains(&"Zoë".to_string()));
    }

    #[test]
    fn empty_and_whitespace_inputs() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \t\n").is_empty());
    }
}
