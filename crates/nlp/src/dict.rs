//! Gazetteers: multi-token dictionary matching.
//!
//! §3.1: features range "to highly domain-specific dictionaries and
//! ontologies"; the integrated-processing argument of §2.4 hinges on being
//! able to "simply filter out extracted tuples that contain movie titles (for
//! which there are free and high-quality downloadable databases)" — i.e.
//! dictionaries are first-class.

use std::collections::{HashMap, HashSet};

/// A case-insensitive phrase dictionary supporting longest-prefix matching
/// over token sequences.
#[derive(Debug, Clone, Default)]
pub struct Gazetteer {
    /// Full phrases (lowercased, single-space separated).
    phrases: HashSet<String>,
    /// All proper prefixes of multi-token phrases (for longest-match).
    prefixes: HashSet<String>,
    /// Max phrase length in tokens.
    max_len: usize,
    /// Optional canonical-form mapping (e.g. alias → entity id).
    canonical: HashMap<String, String>,
}

impl Gazetteer {
    pub fn new() -> Self {
        Gazetteer::default()
    }

    /// Build from an iterator of phrases.
    pub fn from_phrases<I, S>(phrases: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut g = Gazetteer::new();
        for p in phrases {
            g.insert(p.as_ref());
        }
        g
    }

    /// Insert a phrase.
    pub fn insert(&mut self, phrase: &str) {
        let norm = normalize(phrase);
        if norm.is_empty() {
            return;
        }
        let toks: Vec<&str> = norm.split(' ').collect();
        self.max_len = self.max_len.max(toks.len());
        for k in 1..toks.len() {
            self.prefixes.insert(toks[..k].join(" "));
        }
        self.phrases.insert(norm);
    }

    /// Insert a phrase with a canonical form (entity linking support, §3.2's
    /// `EL` relation).
    pub fn insert_alias(&mut self, alias: &str, canonical: &str) {
        self.insert(alias);
        self.canonical
            .insert(normalize(alias), canonical.to_string());
    }

    pub fn len(&self) -> usize {
        self.phrases.len()
    }

    pub fn is_empty(&self) -> bool {
        self.phrases.is_empty()
    }

    /// Exact phrase membership.
    pub fn contains(&self, phrase: &str) -> bool {
        self.phrases.contains(&normalize(phrase))
    }

    /// Canonical form of an alias, if registered.
    pub fn canonical_of(&self, alias: &str) -> Option<&str> {
        self.canonical.get(&normalize(alias)).map(String::as_str)
    }

    /// Longest match starting at `tokens[0]` (tokens must be lowercased).
    /// Returns the match length in tokens.
    pub fn longest_match(&self, tokens: &[String]) -> Option<usize> {
        let mut best = None;
        let mut current = String::new();
        for (k, t) in tokens.iter().enumerate().take(self.max_len) {
            if k > 0 {
                current.push(' ');
            }
            current.push_str(t);
            if self.phrases.contains(&current) {
                best = Some(k + 1);
            } else if !self.prefixes.contains(&current) {
                break;
            }
        }
        best
    }
}

fn normalize(s: &str) -> String {
    s.split_whitespace()
        .collect::<Vec<_>>()
        .join(" ")
        .to_lowercase()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_is_case_and_space_insensitive() {
        let g = Gazetteer::from_phrases(["New  York", "Chicago"]);
        assert!(g.contains("new york"));
        assert!(g.contains("NEW YORK"));
        assert!(!g.contains("york"));
    }

    #[test]
    fn longest_match_prefers_longer_phrases() {
        let g = Gazetteer::from_phrases(["new york", "new york city"]);
        let toks: Vec<String> = ["new", "york", "city", "hall"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(g.longest_match(&toks), Some(3));
        assert_eq!(g.longest_match(&toks[1..]), None);
    }

    #[test]
    fn prefix_pruning_stops_early() {
        let g = Gazetteer::from_phrases(["alpha beta gamma"]);
        let toks: Vec<String> = ["alpha", "delta"].iter().map(|s| s.to_string()).collect();
        assert_eq!(g.longest_match(&toks), None);
    }

    #[test]
    fn aliases_resolve_to_canonical() {
        let mut g = Gazetteer::new();
        g.insert_alias("B. Obama", "Barack Obama");
        g.insert_alias("Barack Obama", "Barack Obama");
        assert_eq!(g.canonical_of("b. obama"), Some("Barack Obama"));
        assert_eq!(g.canonical_of("nobody"), None);
    }

    #[test]
    fn empty_phrases_are_ignored() {
        let mut g = Gazetteer::new();
        g.insert("   ");
        assert!(g.is_empty());
    }
}
