//! Abbreviation-aware sentence splitting and HTML stripping.
//!
//! §3.1: "DeepDive stores all documents in the database in one sentence per
//! row with markup produced by standard NLP pre-processing tools, including
//! HTML stripping".

/// A sentence with its byte span in the source document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SentenceSpan {
    pub text: String,
    pub start: usize,
    pub end: usize,
}

/// Abbreviations that do not terminate a sentence.
const ABBREVIATIONS: &[&str] = &[
    "dr", "mr", "mrs", "ms", "prof", "jr", "sr", "st", "vs", "etc", "inc", "ltd", "co", "corp",
    "jan", "feb", "mar", "apr", "jun", "jul", "aug", "sep", "sept", "oct", "nov", "dec", "fig",
    "eq", "e.g", "i.e", "al", "no", "vol", "pp", "approx",
];

fn is_abbreviation(word: &str) -> bool {
    let w = word.trim_end_matches('.').to_ascii_lowercase();
    // Single capital letters ("B. Obama") are initials.
    if w.len() == 1 {
        return true;
    }
    ABBREVIATIONS.contains(&w.as_str())
}

/// Split text into sentences. Terminators: `.` `!` `?` followed by
/// whitespace+capital/digit or end of text; periods after known
/// abbreviations or initials do not split.
pub fn split_sentences(text: &str) -> Vec<SentenceSpan> {
    let chars: Vec<(usize, char)> = text.char_indices().collect();
    let n = chars.len();
    let mut sentences = Vec::new();
    let mut sent_start = 0usize; // char index

    let mut i = 0usize;
    while i < n {
        let c = chars[i].1;
        let is_term =
            c == '.' || c == '!' || c == '?' || c == '\n' && i + 1 < n && chars[i + 1].1 == '\n';
        if is_term {
            // Word immediately before the terminator.
            let mut k = i;
            while k > 0 && !chars[k - 1].1.is_whitespace() {
                k -= 1;
            }
            let word: String = chars[k..i].iter().map(|(_, ch)| ch).collect();
            let abbrev = c == '.' && is_abbreviation(&word);

            // Lookahead: next non-space char.
            let mut j = i + 1;
            while j < n && chars[j].1.is_whitespace() {
                j += 1;
            }
            let boundary = !abbrev
                && (j >= n
                    || chars[j].1.is_uppercase()
                    || chars[j].1.is_ascii_digit()
                    || chars[j].1 == '"');
            if boundary {
                let start_b = chars[sent_start].0;
                let end_b = if i + 1 < n {
                    chars[i + 1].0
                } else {
                    text.len()
                };
                let s = text[start_b..end_b].trim();
                if !s.is_empty() {
                    sentences.push(SentenceSpan {
                        text: s.to_string(),
                        start: start_b,
                        end: end_b,
                    });
                }
                sent_start = j.min(n.saturating_sub(0));
                i = j;
                continue;
            }
        }
        i += 1;
    }
    if sent_start < n {
        let start_b = chars[sent_start].0;
        let s = text[start_b..].trim();
        if !s.is_empty() {
            sentences.push(SentenceSpan {
                text: s.to_string(),
                start: start_b,
                end: text.len(),
            });
        }
    }
    sentences
}

/// Strip HTML tags, decode a handful of common entities, and collapse
/// whitespace. Script/style elements are dropped wholesale.
pub fn strip_html(html: &str) -> String {
    let mut out = String::with_capacity(html.len());
    let mut chars = html.char_indices().peekable();
    let lower = html.to_ascii_lowercase();
    let mut skip_until: Option<&str> = None;

    while let Some((i, c)) = chars.next() {
        if let Some(end_tag) = skip_until {
            if c == '<' && lower[i..].starts_with(end_tag) {
                // Consume through the closing '>'.
                for (_, c2) in chars.by_ref() {
                    if c2 == '>' {
                        break;
                    }
                }
                skip_until = None;
            }
            continue;
        }
        match c {
            '<' => {
                if lower[i..].starts_with("<script") {
                    skip_until = Some("</script");
                } else if lower[i..].starts_with("<style") {
                    skip_until = Some("</style");
                }
                let mut tag = String::new();
                for (_, c2) in chars.by_ref() {
                    if c2 == '>' {
                        break;
                    }
                    tag.push(c2);
                }
                // Block-level tags become sentence-ish breaks.
                let t = tag.trim_start_matches('/').to_ascii_lowercase();
                if t.starts_with("p")
                    || t.starts_with("br")
                    || t.starts_with("div")
                    || t.starts_with("li")
                    || t.starts_with("tr")
                    || t.starts_with("h")
                {
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
            '&' => {
                let rest = &html[i..];
                let known = [
                    ("&amp;", "&"),
                    ("&lt;", "<"),
                    ("&gt;", ">"),
                    ("&quot;", "\""),
                    ("&#39;", "'"),
                    ("&apos;", "'"),
                    ("&nbsp;", " "),
                ];
                let mut matched = false;
                for (ent, rep) in known {
                    if rest.starts_with(ent) {
                        out.push_str(rep);
                        for _ in 0..ent.len() - 1 {
                            chars.next();
                        }
                        matched = true;
                        break;
                    }
                }
                if !matched {
                    out.push('&');
                }
            }
            _ => out.push(c),
        }
    }
    // Collapse runs of spaces (but keep newlines as break hints).
    let mut collapsed = String::with_capacity(out.len());
    let mut last_space = false;
    for c in out.chars() {
        if c == ' ' || c == '\t' {
            if !last_space {
                collapsed.push(' ');
            }
            last_space = true;
        } else {
            collapsed.push(c);
            last_space = false;
        }
    }
    collapsed.trim().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(s: &str) -> Vec<String> {
        split_sentences(s).into_iter().map(|x| x.text).collect()
    }

    #[test]
    fn splits_simple_sentences() {
        assert_eq!(
            texts("The cat sat. The dog ran! Did it?"),
            vec!["The cat sat.", "The dog ran!", "Did it?"]
        );
    }

    #[test]
    fn abbreviations_do_not_split() {
        let s = "Dr. Smith treated the claim. Mrs. Jones paid.";
        assert_eq!(texts(s).len(), 2);
        assert!(texts(s)[0].contains("Dr. Smith"));
    }

    #[test]
    fn initials_do_not_split() {
        let s = "B. Obama and Michelle were married Oct. 3, 1992. They live in D.C. now.";
        let got = texts(s);
        assert_eq!(got.len(), 2, "{got:?}");
    }

    #[test]
    fn spans_reference_source() {
        let s = "One. Two.";
        for sp in split_sentences(s) {
            assert!(s[sp.start..sp.end].contains(sp.text.trim()));
        }
    }

    #[test]
    fn html_stripping_removes_tags_and_scripts() {
        let html = "<html><script>var x = 1;</script><p>Hello &amp; welcome</p><div>Bye</div>";
        let s = strip_html(html);
        assert!(s.contains("Hello & welcome"));
        assert!(s.contains("Bye"));
        assert!(!s.contains("var x"));
        assert!(!s.contains('<'));
    }

    #[test]
    fn entities_decode() {
        assert_eq!(
            strip_html("a &lt;b&gt; &quot;c&quot; &#39;d&#39;"),
            "a <b> \"c\" 'd'"
        );
    }

    #[test]
    fn empty_input_yields_no_sentences() {
        assert!(split_sentences("").is_empty());
        assert!(split_sentences("   ").is_empty());
    }
}
