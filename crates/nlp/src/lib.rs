//! `deepdive-nlp`: the text-preprocessing substrate of the DeepDive
//! reproduction (§3.1 of the paper).
//!
//! The original system shells out to "standard NLP pre-processing tools"
//! (Stanford CoreNLP). This crate rebuilds the pieces the pipeline
//! experiments actually exercise, from scratch and with zero dependencies:
//! HTML stripping, abbreviation-aware sentence splitting, offset-preserving
//! tokenization, a lexicon+suffix part-of-speech tagger, gazetteer matching,
//! and high-recall entity-candidate spotters (persons, prices, phones, gene
//! symbols, chemical formulas, locations).
//!
//! Everything is deterministic and inspectable — candidate generation is
//! supposed to be high-recall/low-precision (§3), and every downstream error
//! must be traceable to its source span (§2.5 "debuggable decisions").

pub mod dict;
pub mod ner;
pub mod pipeline;
pub mod pos;
pub mod sentence;
pub mod tokenize;

pub use dict::Gazetteer;
pub use ner::{
    spot_formulas, spot_genes, spot_genes_in, spot_locations, spot_persons, spot_phones,
    spot_prices, spot_prices_in, Span, SpanKind,
};
pub use pipeline::{Pipeline, PipelineOptions, ProcessedDocument, ProcessedSentence};
pub use pos::{tag, PosTag};
pub use sentence::{split_sentences, strip_html, SentenceSpan};
pub use tokenize::{tokenize, Token};
