//! Heuristic named-entity candidate spotting.
//!
//! Candidate generation must be "high-recall, low-precision" (§3): these
//! spotters over-generate spans (person names, prices, phone numbers, gene
//! symbols, locations) and leave precision to probabilistic inference.

use crate::dict::Gazetteer;
use crate::pos::PosTag;
use crate::tokenize::Token;
use serde::{Deserialize, Serialize};

/// Entity-candidate categories the spotters produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpanKind {
    Person,
    Price,
    Phone,
    Gene,
    Location,
    ChemicalFormula,
}

/// A candidate span over a token range `[first, last]` (inclusive).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Span {
    pub kind: SpanKind,
    pub first: usize,
    pub last: usize,
    pub text: String,
}

impl Span {
    fn from_tokens(kind: SpanKind, tokens: &[Token], first: usize, last: usize) -> Self {
        let text = tokens[first..=last]
            .iter()
            .map(|t| t.text.as_str())
            .collect::<Vec<_>>()
            .join(" ");
        Span {
            kind,
            first,
            last,
            text,
        }
    }
}

const HONORIFICS: &[&str] = &[
    "dr.", "dr", "mr.", "mr", "mrs.", "mrs", "ms.", "ms", "prof.", "prof",
];

/// Spot person-name candidates: runs of proper nouns (NNP), optionally led by
/// an honorific; single capitalized tokens count too (high recall — the
/// "city names after Dr." failure mode of §5.2 is intentional here).
pub fn spot_persons(tokens: &[Token], tags: &[PosTag]) -> Vec<Span> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let is_honorific = HONORIFICS.contains(&tokens[i].text.to_ascii_lowercase().as_str());
        let starts_name = tags[i] == PosTag::Nnp && !is_honorific;
        if starts_name {
            let mut j = i;
            while j + 1 < tokens.len()
                && (tags[j + 1] == PosTag::Nnp
                    || (tokens[j + 1].text.ends_with('.') && tokens[j + 1].text.len() == 2))
            {
                j += 1;
            }
            spans.push(Span::from_tokens(SpanKind::Person, tokens, i, j));
            i = j + 1;
        } else {
            i += 1;
        }
    }
    spans
}

/// Spot price candidates: `$`/`€` followed by a number, `N dollars`,
/// `N/hr`-style rates, or bare numbers adjacent to rate words.
pub fn spot_prices(tokens: &[Token], tags: &[PosTag]) -> Vec<Span> {
    let mut spans = Vec::new();
    for i in 0..tokens.len() {
        let t = &tokens[i].text;
        if (t == "$" || t == "€") && i + 1 < tokens.len() && tags[i + 1] == PosTag::Cd {
            spans.push(Span::from_tokens(SpanKind::Price, tokens, i, i + 1));
        } else if tags[i] == PosTag::Cd && i + 1 < tokens.len() {
            let next = tokens[i + 1].text.to_ascii_lowercase();
            if ["dollars", "usd", "euro", "euros", "roses", "bucks"].contains(&next.as_str()) {
                spans.push(Span::from_tokens(SpanKind::Price, tokens, i, i + 1));
            }
        }
    }
    spans
}

/// Spot phone-number candidates: runs of digit groups totaling 7–15 digits
/// (optionally with `-`, `(`, `)` separators collapsed by the tokenizer), or
/// single 10-digit tokens.
pub fn spot_phones(tokens: &[Token]) -> Vec<Span> {
    let digits = |s: &str| s.chars().filter(char::is_ascii_digit).count();
    let digits_only = |s: &str| {
        s.chars()
            .all(|c| c.is_ascii_digit() || c == '-' || c == '.')
    };
    let mut spans = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if digits(&tokens[i].text) >= 3 && digits_only(&tokens[i].text) {
            let mut j = i;
            let mut total = digits(&tokens[i].text);
            while j + 1 < tokens.len()
                && digits_only(&tokens[j + 1].text)
                && digits(&tokens[j + 1].text) >= 3
                && total + digits(&tokens[j + 1].text) <= 15
            {
                j += 1;
                total += digits(&tokens[j].text);
            }
            if (7..=15).contains(&total) {
                spans.push(Span::from_tokens(SpanKind::Phone, tokens, i, j));
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    spans
}

/// Spot gene-symbol candidates: short tokens of uppercase letters + digits
/// (e.g. `BRCA1`, `TP53`), with at least two characters and one letter.
pub fn spot_genes(tokens: &[Token]) -> Vec<Span> {
    let mut spans = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        let s = &t.text;
        let ok = s.len() >= 2
            && s.len() <= 8
            && s.chars()
                .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit())
            && s.chars().any(|c| c.is_ascii_uppercase());
        if ok {
            spans.push(Span::from_tokens(SpanKind::Gene, tokens, i, i));
        }
    }
    spans
}

/// Spot chemical-formula candidates: element-symbol sequences with
/// subscripts, e.g. `GaAs`, `InP`, `Al2O3`, `SiC`.
pub fn spot_formulas(tokens: &[Token]) -> Vec<Span> {
    let looks_like_formula = |s: &str| {
        if s.len() < 2 || s.len() > 12 {
            return false;
        }
        let mut caps = 0;
        let mut prev_was_upper = false;
        let mut has_inner_upper_or_digit = false;
        for (i, c) in s.chars().enumerate() {
            if c.is_ascii_uppercase() {
                caps += 1;
                if i > 0 {
                    has_inner_upper_or_digit = true;
                }
                prev_was_upper = true;
            } else if c.is_ascii_lowercase() {
                if !prev_was_upper {
                    return false;
                }
                prev_was_upper = false;
            } else if c.is_ascii_digit() {
                if i == 0 {
                    return false;
                }
                has_inner_upper_or_digit = true;
                prev_was_upper = false;
            } else {
                return false;
            }
        }
        caps >= 2 && has_inner_upper_or_digit || caps >= 1 && s.chars().any(|c| c.is_ascii_digit())
    };
    tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| looks_like_formula(&t.text))
        .map(|(i, _)| Span::from_tokens(SpanKind::ChemicalFormula, tokens, i, i))
        .collect()
}

/// Convenience: gene-symbol texts in a raw string (tokenize + spot).
pub fn spot_genes_in(text: &str) -> Vec<String> {
    let tokens = crate::tokenize::tokenize(text);
    spot_genes(&tokens).into_iter().map(|s| s.text).collect()
}

/// Convenience: price span texts + parsed values in a raw string.
pub fn spot_prices_in(text: &str) -> Vec<(String, i64)> {
    let tokens = crate::tokenize::tokenize(text);
    let tags = crate::pos::tag(&tokens);
    spot_prices(&tokens, &tags)
        .into_iter()
        .filter_map(|s| {
            let digits: String = s.text.chars().filter(char::is_ascii_digit).collect();
            digits.parse::<i64>().ok().map(|v| (s.text, v))
        })
        .collect()
}

/// Spot location candidates via gazetteer (multi-token, longest match wins).
pub fn spot_locations(tokens: &[Token], gazetteer: &Gazetteer) -> Vec<Span> {
    let texts: Vec<String> = tokens.iter().map(|t| t.text.to_ascii_lowercase()).collect();
    let mut spans = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if let Some(len) = gazetteer.longest_match(&texts[i..]) {
            spans.push(Span::from_tokens(
                SpanKind::Location,
                tokens,
                i,
                i + len - 1,
            ));
            i += len;
        } else {
            i += 1;
        }
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pos::tag;
    use crate::tokenize::tokenize;

    fn prep(s: &str) -> (Vec<Token>, Vec<PosTag>) {
        let toks = tokenize(s);
        let tags = tag(&toks);
        (toks, tags)
    }

    #[test]
    fn persons_span_multi_token_names() {
        let (t, g) = prep("B. Obama and Michelle were married");
        let ps = spot_persons(&t, &g);
        let texts: Vec<&str> = ps.iter().map(|s| s.text.as_str()).collect();
        assert!(
            texts.contains(&"B. Obama") || texts.contains(&"Obama"),
            "{texts:?}"
        );
        assert!(texts.contains(&"Michelle"));
    }

    #[test]
    fn honorific_bleeds_are_possible_by_design() {
        // High recall: "Dr. Chicago" yields a (wrong) person candidate —
        // inference is what filters it (the §5.2 example).
        let (t, g) = prep("Dr. Chicago saw the patient");
        let ps = spot_persons(&t, &g);
        assert!(ps.iter().any(|s| s.text.contains("Chicago")));
    }

    #[test]
    fn prices_with_currency_and_units() {
        let (t, g) = prep("rates from $150 or 200 roses");
        let ps = spot_prices(&t, &g);
        assert_eq!(ps.len(), 2);
        assert_eq!(ps[0].text, "$ 150");
        assert_eq!(ps[1].text, "200 roses");
    }

    #[test]
    fn phones_with_separators() {
        let (t, _) = prep("call 555-123-4567 now");
        let ps = spot_phones(&t);
        assert_eq!(ps.len(), 1);
        assert!(ps[0].text.contains("555"));
    }

    #[test]
    fn short_numbers_are_not_phones() {
        let (t, _) = prep("room 42 on floor 3");
        assert!(spot_phones(&t).is_empty());
    }

    #[test]
    fn gene_symbols() {
        let (t, _) = prep("mutations in BRCA1 and TP53 but not cat");
        let gs = spot_genes(&t);
        let texts: Vec<&str> = gs.iter().map(|s| s.text.as_str()).collect();
        assert_eq!(texts, vec!["BRCA1", "TP53"]);
    }

    #[test]
    fn chemical_formulas() {
        let (t, _) = prep("GaAs and Al2O3 substrates versus silicon");
        let fs = spot_formulas(&t);
        let texts: Vec<&str> = fs.iter().map(|s| s.text.as_str()).collect();
        assert!(texts.contains(&"GaAs"));
        assert!(texts.contains(&"Al2O3"));
        assert!(!texts.contains(&"silicon"));
    }

    #[test]
    fn locations_from_gazetteer() {
        let gaz = Gazetteer::from_phrases(["new york", "chicago", "san francisco"]);
        let (t, _) = prep("flew from New York to San Francisco via Chicago");
        let ls = spot_locations(&t, &gaz);
        let texts: Vec<&str> = ls.iter().map(|s| s.text.as_str()).collect();
        assert_eq!(texts, vec!["New York", "San Francisco", "Chicago"]);
    }
}
