//! The document preprocessing pipeline (§3.1).
//!
//! "By default, DeepDive stores all documents in the database in one sentence
//! per row with markup produced by standard NLP pre-processing tools,
//! including HTML stripping, part-of-speech tagging, and linguistic parsing."
//!
//! [`Pipeline::process`] runs HTML stripping → sentence splitting →
//! tokenization → POS tagging → entity-candidate spotting, producing the
//! structured rows candidate-generation rules consume.

use crate::dict::Gazetteer;
use crate::ner::{
    spot_formulas, spot_genes, spot_locations, spot_persons, spot_phones, spot_prices, Span,
    SpanKind,
};
use crate::pos::{tag, PosTag};
use crate::sentence::{split_sentences, strip_html};
use crate::tokenize::{tokenize, Token};
use serde::{Deserialize, Serialize};

/// One preprocessed sentence.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProcessedSentence {
    /// Index of the sentence within the document.
    pub index: usize,
    pub text: String,
    pub tokens: Vec<Token>,
    pub tags: Vec<PosTag>,
    pub spans: Vec<Span>,
}

impl ProcessedSentence {
    /// Spans of one kind.
    pub fn spans_of(&self, kind: SpanKind) -> impl Iterator<Item = &Span> {
        self.spans.iter().filter(move |s| s.kind == kind)
    }

    /// The token texts between two spans (exclusive) — the `phrase` UDF of
    /// Ex. 3.2 ("the phrase between two mentions may indicate whether two
    /// people are married", e.g. "and his wife").
    pub fn phrase_between(&self, a: &Span, b: &Span) -> String {
        let (lo, hi) = if a.last < b.first {
            (a.last, b.first)
        } else {
            (b.last, a.first)
        };
        if lo + 1 >= hi {
            return String::new();
        }
        self.tokens[lo + 1..hi]
            .iter()
            .map(|t| t.text.to_ascii_lowercase())
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// A fully preprocessed document.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProcessedDocument {
    pub doc_id: u64,
    pub sentences: Vec<ProcessedSentence>,
}

/// Which spotters to run.
#[derive(Debug, Clone)]
pub struct PipelineOptions {
    pub strip_html: bool,
    pub persons: bool,
    pub prices: bool,
    pub phones: bool,
    pub genes: bool,
    pub formulas: bool,
    /// Location gazetteer (locations are spotted only when set).
    pub location_gazetteer: Option<Gazetteer>,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            strip_html: true,
            persons: true,
            prices: false,
            phones: false,
            genes: false,
            formulas: false,
            location_gazetteer: None,
        }
    }
}

/// The preprocessing pipeline.
#[derive(Debug, Clone, Default)]
pub struct Pipeline {
    pub options: PipelineOptions,
}

impl Pipeline {
    pub fn new(options: PipelineOptions) -> Self {
        Pipeline { options }
    }

    /// Process one raw document.
    pub fn process(&self, doc_id: u64, raw: &str) -> ProcessedDocument {
        let text = if self.options.strip_html {
            strip_html(raw)
        } else {
            raw.to_string()
        };
        let sentences = split_sentences(&text)
            .into_iter()
            .enumerate()
            .map(|(index, s)| {
                let tokens = tokenize(&s.text);
                let tags = tag(&tokens);
                let mut spans = Vec::new();
                if self.options.persons {
                    spans.extend(spot_persons(&tokens, &tags));
                }
                if self.options.prices {
                    spans.extend(spot_prices(&tokens, &tags));
                }
                if self.options.phones {
                    spans.extend(spot_phones(&tokens));
                }
                if self.options.genes {
                    spans.extend(spot_genes(&tokens));
                }
                if self.options.formulas {
                    spans.extend(spot_formulas(&tokens));
                }
                if let Some(gaz) = &self.options.location_gazetteer {
                    spans.extend(spot_locations(&tokens, gaz));
                }
                ProcessedSentence {
                    index,
                    text: s.text,
                    tokens,
                    tags,
                    spans,
                }
            })
            .collect();
        ProcessedDocument { doc_id, sentences }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_on_the_paper_sentence() {
        let p = Pipeline::default();
        let doc = p.process(1, "B. Obama and Michelle were married Oct. 3, 1992.");
        assert_eq!(doc.sentences.len(), 1);
        let s = &doc.sentences[0];
        let persons: Vec<&str> = s
            .spans_of(SpanKind::Person)
            .map(|sp| sp.text.as_str())
            .collect();
        assert!(persons.len() >= 2, "{persons:?}");
    }

    #[test]
    fn phrase_between_extracts_connecting_words() {
        let p = Pipeline::default();
        let doc = p.process(1, "Barack married his wife Michelle in Chicago.");
        let s = &doc.sentences[0];
        let persons: Vec<Span> = s.spans_of(SpanKind::Person).cloned().collect();
        assert!(persons.len() >= 2);
        let phrase = s.phrase_between(&persons[0], &persons[1]);
        assert_eq!(phrase, "married his wife");
    }

    #[test]
    fn html_documents_are_stripped_first() {
        let p = Pipeline::default();
        let doc = p.process(1, "<html><p>Alice met Bob.</p><script>x()</script></html>");
        assert_eq!(doc.sentences.len(), 1);
        assert!(!doc.sentences[0].text.contains('<'));
    }

    #[test]
    fn optional_spotters_are_gated() {
        let opts = PipelineOptions {
            prices: true,
            phones: true,
            ..Default::default()
        };
        let p = Pipeline::new(opts);
        let doc = p.process(1, "Rates from $200. Call 555-123-4567 anytime.");
        let all: Vec<SpanKind> = doc
            .sentences
            .iter()
            .flat_map(|s| s.spans.iter().map(|x| x.kind))
            .collect();
        assert!(all.contains(&SpanKind::Price));
        assert!(all.contains(&SpanKind::Phone));
    }

    #[test]
    fn multiple_sentences_get_indexed() {
        let p = Pipeline::default();
        let doc = p.process(7, "First one. Second one. Third one.");
        assert_eq!(doc.sentences.len(), 3);
        assert_eq!(doc.sentences[2].index, 2);
        assert_eq!(doc.doc_id, 7);
    }
}
