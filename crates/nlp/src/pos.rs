//! A lexicon + suffix-rule part-of-speech tagger.
//!
//! DeepDive's preprocessing includes "part-of-speech tagging" (§3.1). The
//! pipeline experiments need POS tags only as *features* (e.g. "is the next
//! token a verb?"), so a deterministic closed-class lexicon with suffix
//! heuristics — the classic baseline tagger — is the right fidelity:
//! transparent, fast, and fully debuggable (§2.5).

use crate::tokenize::Token;
use serde::{Deserialize, Serialize};

/// Simplified Penn-style tagset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PosTag {
    /// Proper noun (capitalized, unknown word).
    Nnp,
    /// Common noun.
    Nn,
    /// Verb.
    Vb,
    /// Adjective.
    Jj,
    /// Adverb.
    Rb,
    /// Determiner.
    Dt,
    /// Preposition / subordinating conjunction.
    In,
    /// Coordinating conjunction.
    Cc,
    /// Pronoun.
    Prp,
    /// Cardinal number.
    Cd,
    /// Modal.
    Md,
    /// Punctuation.
    Punct,
    /// Symbol ($, %, ...).
    Sym,
}

impl PosTag {
    pub fn as_str(self) -> &'static str {
        match self {
            PosTag::Nnp => "NNP",
            PosTag::Nn => "NN",
            PosTag::Vb => "VB",
            PosTag::Jj => "JJ",
            PosTag::Rb => "RB",
            PosTag::Dt => "DT",
            PosTag::In => "IN",
            PosTag::Cc => "CC",
            PosTag::Prp => "PRP",
            PosTag::Cd => "CD",
            PosTag::Md => "MD",
            PosTag::Punct => ".",
            PosTag::Sym => "SYM",
        }
    }

    pub fn is_noun(self) -> bool {
        matches!(self, PosTag::Nn | PosTag::Nnp)
    }

    pub fn is_verb(self) -> bool {
        matches!(self, PosTag::Vb | PosTag::Md)
    }
}

const DETERMINERS: &[&str] = &[
    "the", "a", "an", "this", "that", "these", "those", "every", "each",
];
const PREPOSITIONS: &[&str] = &[
    "of", "in", "on", "at", "by", "for", "with", "from", "to", "into", "over", "under", "after",
    "before", "between", "during", "through", "about", "against", "per",
];
const CONJUNCTIONS: &[&str] = &["and", "or", "but", "nor", "yet", "so"];
const PRONOUNS: &[&str] = &[
    "i", "you", "he", "she", "it", "we", "they", "him", "her", "his", "hers", "its", "their",
    "them", "who", "whom", "which", "me", "us", "my", "your", "our",
];
const MODALS: &[&str] = &[
    "can", "could", "may", "might", "must", "shall", "should", "will", "would",
];
const COMMON_VERBS: &[&str] = &[
    "is",
    "are",
    "was",
    "were",
    "be",
    "been",
    "being",
    "has",
    "have",
    "had",
    "do",
    "does",
    "did",
    "married",
    "divorced",
    "met",
    "said",
    "reported",
    "found",
    "shows",
    "showed",
    "causes",
    "caused",
    "treats",
    "treated",
    "regulates",
    "regulated",
    "exhibits",
    "exhibited",
    "measured",
    "observed",
    "filed",
    "visited",
    "posted",
    "works",
    "worked",
    "lives",
    "lived",
    "offers",
    "charges",
    "includes",
    "interacts",
    "inhibits",
    "activates",
    "binds",
    "encodes",
];
const COMMON_ADVERBS: &[&str] = &[
    "very", "not", "also", "recently", "often", "never", "always", "now", "then", "here",
];

/// Tag a token sequence.
pub fn tag(tokens: &[Token]) -> Vec<PosTag> {
    tokens
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let text = t.text.as_str();
            let lower = text.to_ascii_lowercase();
            let first = text.chars().next().unwrap_or(' ');

            if !first.is_alphanumeric() {
                return if first == '$' || first == '%' || first == '€' || first == '#' {
                    PosTag::Sym
                } else {
                    PosTag::Punct
                };
            }
            if first.is_ascii_digit()
                || lower
                    .chars()
                    .all(|c| c.is_ascii_digit() || c == ',' || c == '.')
            {
                return PosTag::Cd;
            }
            if DETERMINERS.contains(&lower.as_str()) {
                return PosTag::Dt;
            }
            if PREPOSITIONS.contains(&lower.as_str()) {
                return PosTag::In;
            }
            if CONJUNCTIONS.contains(&lower.as_str()) {
                return PosTag::Cc;
            }
            if PRONOUNS.contains(&lower.as_str()) {
                return PosTag::Prp;
            }
            if MODALS.contains(&lower.as_str()) {
                return PosTag::Md;
            }
            if COMMON_VERBS.contains(&lower.as_str()) {
                return PosTag::Vb;
            }
            if COMMON_ADVERBS.contains(&lower.as_str()) {
                return PosTag::Rb;
            }
            // Suffix heuristics.
            if lower.ends_with("ly") {
                return PosTag::Rb;
            }
            if lower.ends_with("ing") || lower.ends_with("ize") || lower.ends_with("ise") {
                return PosTag::Vb;
            }
            if lower.ends_with("ed") && i > 0 {
                return PosTag::Vb;
            }
            if lower.ends_with("ous")
                || lower.ends_with("ful")
                || lower.ends_with("ive")
                || lower.ends_with("able")
                || lower.ends_with("ic")
                || lower.ends_with("al")
            {
                return PosTag::Jj;
            }
            // Capitalized mid-sentence (or sentence-initial known-cap) →
            // proper noun; sentence-initial otherwise defaults to noun.
            if first.is_uppercase()
                && (i > 0
                    || text
                        .chars()
                        .nth(1)
                        .map(char::is_alphabetic)
                        .unwrap_or(false))
            {
                return PosTag::Nnp;
            }
            PosTag::Nn
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::tokenize;

    fn tags(s: &str) -> Vec<PosTag> {
        tag(&tokenize(s))
    }

    #[test]
    fn tags_the_paper_sentence() {
        let t = tags("B. Obama and Michelle were married Oct. 3, 1992.");
        // "Obama" NNP, "and" CC, "Michelle" NNP, "were" VB, "married" VB.
        assert_eq!(t[1], PosTag::Nnp);
        assert_eq!(t[2], PosTag::Cc);
        assert_eq!(t[3], PosTag::Nnp);
        assert_eq!(t[4], PosTag::Vb);
        assert_eq!(t[5], PosTag::Vb);
    }

    #[test]
    fn closed_classes_hit_lexicon() {
        let t = tags("the gene in a cell");
        assert_eq!(t[0], PosTag::Dt);
        assert_eq!(t[2], PosTag::In);
        assert_eq!(t[3], PosTag::Dt);
    }

    #[test]
    fn numbers_and_symbols() {
        let t = tags("$ 150 per hour");
        assert_eq!(t[0], PosTag::Sym);
        assert_eq!(t[1], PosTag::Cd);
        assert_eq!(t[2], PosTag::In);
    }

    #[test]
    fn suffix_rules_fire() {
        let t = tags("quickly running biological");
        assert_eq!(t[0], PosTag::Rb);
        assert_eq!(t[1], PosTag::Vb);
        assert_eq!(t[2], PosTag::Jj);
    }

    #[test]
    fn capitalized_mid_sentence_is_proper() {
        let t = tags("visited Chicago yesterday");
        assert_eq!(t[1], PosTag::Nnp);
    }

    #[test]
    fn tag_helpers() {
        assert!(PosTag::Nnp.is_noun());
        assert!(PosTag::Md.is_verb());
        assert!(!PosTag::Jj.is_noun());
        assert_eq!(PosTag::Cd.as_str(), "CD");
    }
}
