//! Grounding: rules + relations → explicit factor graph (§3.3, Figure 4),
//! with incremental maintenance (§4.1).
//!
//! "DeepDive explicitly constructs a factor graph for inference and learning
//! using a set of SQL queries. [...] each variable corresponds to one tuple
//! in the database, and each hyperedge f corresponds to the set of groundings
//! for a rule γ."
//!
//! Full grounding evaluates every factor rule's body as a relational query;
//! incremental grounding reuses the storage layer's delta machinery: after
//! the [`IncrementalEngine`] maintains derived relations, each factor rule's
//! grounding set is maintained with the same per-atom counting formula,
//! yielding exactly the "modified variables ΔV and factors ΔF" of §4.1.

use crate::state::{GroundingDelta, GroundingState};
use deepdive_ddlog::{DdlogProgram, FactorRule, WeightSpec};
use deepdive_factorgraph::{FactorArg, VariableId};
use deepdive_storage::{
    Atom, AtomDeltas, BaseChange, CompiledRule, Database, DeltaRelation, ExecutionContext,
    IncrementalEngine, MaintenanceResult, Program, Row, Rule, Schema, Source, StorageError,
    StratifiedProgram, Term, Value, ValueType,
};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Suffix convention tying a query relation `R` to its evidence relation
/// `R_Ev` (paper §3.2: "each user relation is associated with an evidence
/// relation with the same schema [...] and an additional field").
pub const EVIDENCE_SUFFIX: &str = "_Ev";

/// A factor rule compiled against the database: its body is evaluated via a
/// synthetic head relation holding one column per head term (+ the tied
/// weight value).
struct CompiledFactorRule {
    rule: FactorRule,
    compiled: CompiledRule,
    /// Delta-rule variants: positive body position → (rule recompiled with
    /// that atom first, new→old order map). See §4.1's `qδ(x) :- Rδ(x,y)`.
    variants: std::collections::HashMap<usize, (CompiledRule, Vec<usize>)>,
    /// Column span of each head atom within the grounding row.
    head_spans: Vec<(String, usize, usize)>,
    /// Column holding the tied-weight value, if any.
    weight_col: Option<usize>,
}

/// Per-phase wall-clock of one initial load, matching the Figure-2
/// breakdown: candidate generation + feature extraction, supervision
/// (strata deriving `*_Ev` relations), and learning-side grounding.
#[derive(Debug, Default, Clone, Copy)]
pub struct LoadTimings {
    pub candidate_extraction: std::time::Duration,
    pub supervision: std::time::Duration,
    pub grounding: std::time::Duration,
}

/// The grounder: owns the DDlog program, the derivation-rule maintenance
/// engine, the factor-rule compilations, and the grounding state.
pub struct Grounder {
    pub ddlog: DdlogProgram,
    engine: IncrementalEngine,
    factor_rules: Vec<CompiledFactorRule>,
    /// Partitioned-execution context shared with the maintenance engine.
    /// Factor-rule bodies are sharded over its worker pool; the merged rows
    /// are sorted before interning, so factor/weight ids stay bit-identical
    /// to sequential execution.
    ctx: Arc<ExecutionContext>,
    pub state: GroundingState,
    /// Query relation names (owning Boolean variables).
    query_relations: HashSet<String>,
    /// evidence relation name → query relation name.
    evidence_of: HashMap<String, String>,
}

impl Grounder {
    /// Prepare a grounder: create missing relations, compile rules. Does not
    /// evaluate anything yet — call [`Grounder::initial_load`].
    pub fn new(db: &mut Database, ddlog: DdlogProgram) -> Result<Self, StorageError> {
        // Create declared relations that do not exist yet.
        for (schema, _) in &ddlog.schemas {
            if !db.has_relation(&schema.name) {
                db.create_relation(schema.clone())?;
            }
        }

        let query_relations: HashSet<String> =
            ddlog.query_relations().map(|s| s.name.clone()).collect();
        let mut evidence_of = HashMap::new();
        for q in &query_relations {
            let ev = format!("{q}{EVIDENCE_SUFFIX}");
            if db.has_relation(&ev) {
                evidence_of.insert(ev, q.clone());
            }
        }

        // Compile factor rules against synthetic head relations.
        let mut factor_rules = Vec::new();
        for fr in &ddlog.factor_rules {
            let synth_name = format!("__ground__{}", fr.name);
            let mut head_terms: Vec<Term> = Vec::new();
            let mut head_spans = Vec::new();
            for h in &fr.heads {
                let start = head_terms.len();
                head_terms.extend(h.terms.iter().cloned());
                head_spans.push((h.relation.clone(), start, head_terms.len()));
            }
            let weight_col = match &fr.weight {
                WeightSpec::Tied(v) => {
                    head_terms.push(Term::var(v.clone()));
                    Some(head_terms.len() - 1)
                }
                _ => None,
            };
            let mut schema = Schema::build(&synth_name);
            for i in 0..head_terms.len() {
                schema = schema.col(format!("c{i}"), ValueType::Any);
            }
            db.create_or_replace_relation(schema.finish());
            let storage_rule = Rule {
                name: fr.name.clone(),
                head: Atom::new(&synth_name, head_terms),
                body: fr.body.clone(),
                builtins: fr.builtins.clone(),
                udfs: fr.udfs.clone(),
            };
            // UDF failures under `FailurePolicy::Quarantine` should land in
            // the quarantine relation of the user-visible head, not of the
            // synthetic `__ground__*` scratch relation.
            let quarantine_base = fr
                .heads
                .first()
                .map(|h| h.relation.clone())
                .unwrap_or_else(|| synth_name.clone());
            let mut compiled = CompiledRule::compile(&storage_rule, db)?;
            compiled.set_quarantine_base(&quarantine_base);
            let mut variants = std::collections::HashMap::new();
            for (i, lit) in storage_rule.body.iter().enumerate() {
                if lit.negated {
                    continue;
                }
                let (reordered, order) =
                    deepdive_storage::datalog::reorder_body_front(&storage_rule, i);
                let mut variant = CompiledRule::compile(&reordered, db)?;
                variant.set_quarantine_base(&quarantine_base);
                variants.insert(i, (variant, order));
            }
            factor_rules.push(CompiledFactorRule {
                rule: fr.clone(),
                compiled,
                variants,
                head_spans,
                weight_col,
            });
        }

        let program = Program::new(ddlog.derivation_rules.clone());
        // `@cardinality(N)` declaration hints seed the planner's statistics
        // so join orders are sensible even before any data is loaded.
        let engine = IncrementalEngine::new(StratifiedProgram::with_hints(
            program,
            db,
            ddlog.cardinality_hints.clone(),
        )?);

        Ok(Grounder {
            ddlog,
            engine,
            factor_rules,
            ctx: Arc::new(ExecutionContext::sequential()),
            state: GroundingState::new(),
            query_relations,
            evidence_of,
        })
    }

    /// Install a shared execution context; forwarded to the derivation-rule
    /// maintenance engine so the whole grounding path runs on one pool.
    pub fn set_execution_context(&mut self, ctx: Arc<ExecutionContext>) {
        self.engine.set_execution_context(Arc::clone(&ctx));
        self.ctx = ctx;
    }

    /// The execution context grounding currently runs under.
    pub fn execution_context(&self) -> &Arc<ExecutionContext> {
        &self.ctx
    }

    /// Initial load: evaluate derivation rules to fixpoint, then ground every
    /// factor rule from scratch.
    pub fn initial_load(&mut self, db: &Database) -> Result<GroundingDelta, StorageError> {
        self.initial_load_timed(db).map(|(d, _)| d)
    }

    /// [`Grounder::initial_load`] with the per-phase timing breakdown.
    pub fn initial_load_timed(
        &mut self,
        db: &Database,
    ) -> Result<(GroundingDelta, LoadTimings), StorageError> {
        let mut timings = LoadTimings::default();
        // Base relations are loaded before initial evaluation, so live row
        // counts and distinct estimates are available now — replace the
        // construction-time plans (hint-only) with measured ones.
        self.engine.replan(db)?;
        self.engine
            .initial_load_instrumented(db, |stratum, elapsed| {
                let is_supervision = stratum
                    .relations
                    .iter()
                    .all(|r| r.ends_with(EVIDENCE_SUFFIX));
                if is_supervision {
                    timings.supervision += elapsed;
                } else {
                    timings.candidate_extraction += elapsed;
                }
            })?;
        let ground_start = std::time::Instant::now();
        let mut delta = GroundingDelta::default();

        // Variables for every query-relation tuple (sorted relation order —
        // variable ids must be deterministic run to run).
        let mut sorted_qrels: Vec<String> = self.query_relations.iter().cloned().collect();
        sorted_qrels.sort();
        for rel in sorted_qrels {
            // Stream the relation in sorted order, one row group at a time —
            // variable ids are assigned in exactly the order the old
            // materialize-then-sort path produced.
            let schema = db.schema(&rel).ok();
            let state = &mut self.state;
            db.for_each_row_sorted(&rel, &mut |row, _| {
                let label = schema.as_ref().map(|s| s.render(row));
                state.variable(&rel, row, label);
                delta.added_variables += 1;
            })?;
        }

        // Evidence labels (BTreeMap: deterministic tuple order).
        let mut sorted_ev: Vec<(String, String)> = self
            .evidence_of
            .iter()
            .map(|(a, b)| (a.clone(), b.clone()))
            .collect();
        sorted_ev.sort();
        for (ev_rel, q_rel) in sorted_ev {
            let mut by_tuple: std::collections::BTreeMap<Row, (usize, usize)> =
                std::collections::BTreeMap::new();
            db.for_each_row_sorted(&ev_rel, &mut |row, _| {
                let (args, label) = split_evidence_row(row);
                let e = by_tuple.entry(args).or_insert((0, 0));
                if label {
                    e.0 += 1;
                } else {
                    e.1 += 1;
                }
            })?;
            for (args, (pos, neg)) in by_tuple {
                if let Some(label) = majority(pos, neg) {
                    // Evidence may reference tuples the candidate mappings
                    // did not produce; those get variables too so learning
                    // sees every label.
                    let lbl = self.render_label(db, &q_rel, &args);
                    self.state.variable(&q_rel, &args, lbl);
                    if self.state.set_evidence(&q_rel, &args, Some(label)) {
                        delta.evidence_changes += 1;
                    }
                }
            }
        }

        // Ground every factor rule (rows sorted for deterministic factor and
        // weight interning order).
        let no_deltas: AtomDeltas = HashMap::new();
        for i in 0..self.factor_rules.len() {
            delta.rule_evaluations += 1;
            let results =
                self.factor_rules[i]
                    .compiled
                    .eval_ctx(&self.ctx, db, &no_deltas, &|_| Source::Old)?;
            let mut rows: Vec<(Row, i64)> = results.into_iter().collect();
            rows.sort();
            for (grounding, count) in rows {
                if count > 0 {
                    self.apply_grounding_delta(db, i, &grounding, count, &mut delta)?;
                }
            }
        }
        timings.grounding = ground_start.elapsed();
        Ok((delta, timings))
    }

    /// Apply base-table changes: maintain derived relations (counting/DRed),
    /// then maintain variables, evidence, and factor groundings — the ΔV/ΔF
    /// pipeline of §4.1.
    pub fn apply_update(
        &mut self,
        db: &Database,
        changes: Vec<BaseChange>,
    ) -> Result<GroundingDelta, StorageError> {
        self.apply_update_traced(db, changes).map(|(d, _)| d)
    }

    /// Like [`Grounder::apply_update`], but also returns the membership-level
    /// [`MaintenanceResult`] from the storage IVM layer instead of dropping
    /// it — consumers (the serve subscription router) need the per-epoch
    /// appeared/disappeared trace.
    pub fn apply_update_traced(
        &mut self,
        db: &Database,
        changes: Vec<BaseChange>,
    ) -> Result<(GroundingDelta, MaintenanceResult), StorageError> {
        let result = self.engine.apply_update(db, changes)?;
        let mut delta = GroundingDelta::default();
        let mut orphan_candidates: Vec<deepdive_factorgraph::VariableId> = Vec::new();

        // Membership deltas per relation (for factor-rule maintenance).
        let mut deltas: HashMap<String, DeltaRelation> = HashMap::new();
        let mut record = |rel: &String, row: &Row, sign: i64, db: &Database| {
            if let Ok(schema) = db.schema(rel) {
                deltas
                    .entry(rel.clone())
                    .or_insert_with(|| DeltaRelation::new(schema))
                    .add(row.clone(), sign);
            }
        };
        for (rel, rows) in &result.appeared {
            for r in rows {
                record(rel, r, 1, db);
            }
        }
        for (rel, rows) in &result.disappeared {
            for r in rows {
                record(rel, r, -1, db);
            }
        }

        // Variables for changed query-relation tuples (sorted for
        // deterministic variable ids).
        let mut sorted_qrels: Vec<&String> = self.query_relations.iter().collect();
        sorted_qrels.sort();
        for rel in sorted_qrels {
            if let Some(rows) = result.appeared.get(rel) {
                let mut rows = rows.clone();
                rows.sort();
                for row in &rows {
                    let label = self.render_label(db, rel, row);
                    self.state.variable(rel, row, label);
                    delta.added_variables += 1;
                }
            }
            if let Some(rows) = result.disappeared.get(rel) {
                for row in rows {
                    if self.state.remove_variable(rel, row) {
                        delta.removed_variables += 1;
                    }
                }
            }
        }

        // Evidence recomputation for touched tuples (sorted).
        let mut sorted_ev: Vec<(String, String)> = self
            .evidence_of
            .iter()
            .map(|(a, b)| (a.clone(), b.clone()))
            .collect();
        sorted_ev.sort();
        for (ev_rel, q_rel) in sorted_ev {
            let mut touched: std::collections::BTreeSet<Row> = std::collections::BTreeSet::new();
            for source in [&result.appeared, &result.disappeared] {
                if let Some(rows) = source.get(&ev_rel) {
                    for row in rows {
                        touched.insert(split_evidence_row(row).0);
                    }
                }
            }
            for args in touched {
                let label = self.evidence_label(db, &ev_rel, &args)?;
                if label.is_some() {
                    let lbl = self.render_label(db, &q_rel, &args);
                    self.state.variable(&q_rel, &args, lbl);
                }
                if self.state.set_evidence(&q_rel, &args, label) {
                    delta.evidence_changes += 1;
                }
            }
        }

        // Factor-rule maintenance.
        for i in 0..self.factor_rules.len() {
            let fr = &self.factor_rules[i];
            let body_changed = fr
                .rule
                .body
                .iter()
                .any(|l| deltas.contains_key(&l.atom.relation));
            if !body_changed {
                continue;
            }
            let negation_hit = fr
                .rule
                .body
                .iter()
                .any(|l| l.negated && deltas.contains_key(&l.atom.relation));
            let __t = std::time::Instant::now();
            let grounding_deltas = if negation_hit {
                self.recompute_rule_diff(db, i, &mut delta)?
            } else {
                self.counting_rule_delta(db, i, &deltas, &mut delta)?
            };
            if std::env::var("DD_PROFILE").is_ok() {
                eprintln!(
                    "    rule {} eval {:?} -> {} grounding deltas",
                    self.factor_rules[i].rule.name,
                    __t.elapsed(),
                    grounding_deltas.len()
                );
            }
            let mut grounding_deltas = grounding_deltas;
            grounding_deltas.sort();
            for (grounding, count) in grounding_deltas {
                if count > 0 {
                    self.apply_grounding_delta(db, i, &grounding, count, &mut delta)?;
                } else if count < 0 {
                    let rule_name = self.factor_rules[i].rule.name.clone();
                    if let Some(fid) = self.state.remove_grounding(&rule_name, &grounding, -count) {
                        delta.removed_factors += 1;
                        orphan_candidates.extend(self.state.factor_variables(fid));
                    }
                }
            }
        }

        // Garbage-collect variables: a variable dies when its tuple is gone
        // from its relation and no live factor references it.
        for vid in orphan_candidates {
            if self.state.refs(vid) > 0 || self.state.removed_vars.contains(&vid) {
                continue;
            }
            let Some((rel, tuple)) = self.state.var_key.get(&vid).cloned() else {
                continue;
            };
            if !db.contains(&rel, &tuple)? && self.state.remove_variable(&rel, &tuple) {
                delta.removed_variables += 1;
            }
        }
        Ok((delta, result))
    }

    /// Exact counting delta for one factor rule (same per-atom formula as the
    /// storage IVM layer): `Σᵢ New…New Δᵢ Old…Old`, with the db holding NEW.
    fn counting_rule_delta(
        &self,
        db: &Database,
        idx: usize,
        deltas: &HashMap<String, DeltaRelation>,
        delta: &mut GroundingDelta,
    ) -> Result<Vec<(Row, i64)>, StorageError> {
        let fr = &self.factor_rules[idx];
        let mut neg_deltas: HashMap<String, DeltaRelation> = HashMap::new();
        for (rel, d) in deltas {
            let mut nd = DeltaRelation::new(d.schema().clone());
            for (r, c) in d.iter() {
                nd.add(r.clone(), -c);
            }
            neg_deltas.insert(rel.clone(), nd);
        }
        let positions: Vec<usize> = fr
            .rule
            .body
            .iter()
            .enumerate()
            .filter(|(_, l)| !l.negated && deltas.contains_key(&l.atom.relation))
            .map(|(i, _)| i)
            .collect();
        let mut out: HashMap<Row, i64> = HashMap::new();
        for (k, &pos) in positions.iter().enumerate() {
            let pos_rel = &fr.rule.body[pos].atom.relation;
            // Delta-first join order (§4.1 delta-rule shape).
            let (variant, order) = &fr.variants[&pos];
            let later: Vec<usize> = positions[k + 1..].to_vec();
            let mut atom_deltas: AtomDeltas = HashMap::new();
            let mut sources = vec![Source::Old; order.len()];
            for (new_i, &old_i) in order.iter().enumerate() {
                if old_i == pos {
                    atom_deltas.insert(new_i, &deltas[pos_rel]);
                    sources[new_i] = Source::Delta;
                } else if later.contains(&old_i) {
                    atom_deltas.insert(new_i, &neg_deltas[&fr.rule.body[old_i].atom.relation]);
                    sources[new_i] = Source::New; // New ⊎ (−Δ) == Old
                } // else: db as-is == New
            }
            delta.rule_evaluations += 1;
            let contribution = variant.eval_ctx(&self.ctx, db, &atom_deltas, &|i| sources[i])?;
            for (row, c) in contribution {
                *out.entry(row).or_insert(0) += c;
            }
        }
        Ok(out.into_iter().filter(|(_, c)| *c != 0).collect())
    }

    /// Full re-evaluation diff for rules with negation on changed relations.
    fn recompute_rule_diff(
        &self,
        db: &Database,
        idx: usize,
        delta: &mut GroundingDelta,
    ) -> Result<Vec<(Row, i64)>, StorageError> {
        let fr = &self.factor_rules[idx];
        delta.rule_evaluations += 1;
        let fresh = fr
            .compiled
            .eval_ctx(&self.ctx, db, &HashMap::new(), &|_| Source::Old)?;
        let rule_name = &fr.rule.name;
        let mut diffs: Vec<(Row, i64)> = Vec::new();
        // New or changed groundings.
        for (row, new_count) in &fresh {
            let old = self
                .state
                .factor_index
                .get(&(rule_name.clone(), row.clone()))
                .map(|(_, c)| *c)
                .unwrap_or(0);
            if *new_count != old {
                diffs.push((row.clone(), new_count - old));
            }
        }
        // Vanished groundings.
        for ((rname, row), (_, old_count)) in &self.state.factor_index {
            if rname == rule_name && *old_count > 0 && !fresh.contains_key(row) {
                diffs.push((row.clone(), -old_count));
            }
        }
        Ok(diffs)
    }

    /// Create (or bump) a factor for one grounding row, creating argument
    /// variables as needed and resolving the (possibly tied) weight.
    fn apply_grounding_delta(
        &mut self,
        db: &Database,
        idx: usize,
        grounding: &Row,
        count: i64,
        delta: &mut GroundingDelta,
    ) -> Result<(), StorageError> {
        let (rule_name, function, head_spans, weight_col, weight_spec) = {
            let fr = &self.factor_rules[idx];
            (
                fr.rule.name.clone(),
                fr.rule.function,
                fr.head_spans.clone(),
                fr.weight_col,
                fr.rule.weight.clone(),
            )
        };
        let mut args = Vec::with_capacity(head_spans.len());
        for (rel, start, end) in &head_spans {
            let head_row: Row = grounding[*start..*end].to_vec().into_boxed_slice();
            let existed = self.state.lookup_variable(rel, &head_row).is_some();
            let label = self.render_label(db, rel, &head_row);
            let vid: VariableId = self.state.variable(rel, &head_row, label);
            if !existed {
                delta.added_variables += 1;
            }
            args.push(FactorArg::pos(vid));
        }
        let weight = match &weight_spec {
            WeightSpec::Fixed(v) => self
                .state
                .graph
                .weights
                .fixed(format!("rule:{rule_name}"), *v),
            WeightSpec::PerRule => self
                .state
                .graph
                .weights
                .tied(format!("rule:{rule_name}"), 0.0),
            WeightSpec::Tied(_) => {
                let v: &Value = &grounding[weight_col.expect("tied weight column")];
                self.state
                    .graph
                    .weights
                    .tied(format!("{rule_name}:{v}"), 0.0)
            }
        };
        if self
            .state
            .add_grounding(&rule_name, grounding.clone(), count, function, args, weight)
        {
            delta.added_factors += 1;
        }
        Ok(())
    }

    /// Recompute the evidence label for one tuple from its evidence relation
    /// (majority vote; ties and no-labels → unlabeled).
    fn evidence_label(
        &self,
        db: &Database,
        ev_rel: &str,
        args: &Row,
    ) -> Result<Option<bool>, StorageError> {
        let (mut pos, mut neg) = (0usize, 0usize);
        let arity = args.len();
        let key_cols: Vec<usize> = (0..arity).collect();
        let mut matches = Vec::new();
        db.lookup_counted(ev_rel, &key_cols, args, &mut matches)?;
        for (row, c) in matches {
            if c <= 0 {
                continue;
            }
            if row[arity].as_bool().unwrap_or(false) {
                pos += 1;
            } else {
                neg += 1;
            }
        }
        Ok(majority(pos, neg))
    }

    fn render_label(&self, db: &Database, relation: &str, row: &Row) -> Option<String> {
        db.schema(relation).ok().map(|s| s.render(row))
    }

    /// Access to the derivation-rule maintenance engine (diagnostics).
    pub fn engine(&self) -> &IncrementalEngine {
        &self.engine
    }
}

/// Split an evidence row into (args, label).
fn split_evidence_row(row: &Row) -> (Row, bool) {
    let n = row.len();
    let args: Row = row[..n - 1].to_vec().into_boxed_slice();
    let label = row[n - 1].as_bool().unwrap_or(false);
    (args, label)
}

fn majority(pos: usize, neg: usize) -> Option<bool> {
    use std::cmp::Ordering::*;
    match pos.cmp(&neg) {
        Greater => Some(true),
        Less => Some(false),
        Equal => None,
    }
}
