//! `deepdive-grounding`: translation of a DDlog program + relational data
//! into an explicit factor graph (§3.3, Figure 4 of the DeepDive paper), with
//! the incremental ΔV/ΔF maintenance of §4.1.
//!
//! The [`Grounder`] owns the whole story: it compiles factor rules against
//! the database, evaluates derivation rules through the storage layer's
//! incremental engine (counting + DRed), interns one Boolean variable per
//! query-relation tuple, applies evidence labels from `*_Ev` relations, and
//! creates one factor per rule grounding with fixed / per-rule / tied
//! weights.

pub mod grounder;
pub mod state;

pub use grounder::{Grounder, LoadTimings, EVIDENCE_SUFFIX};
pub use state::{FactorKey, GroundingDelta, GroundingState, VarKey};
