//! Grounding state: the live factor graph plus the indexes that make
//! incremental maintenance (ΔV / ΔF, §4.1) possible.

use deepdive_factorgraph::{
    CompiledGraph, FactorArg, FactorFunction, FactorGraph, FactorId, Variable, VariableId, WeightId,
};
use deepdive_storage::Row;
use std::collections::{HashMap, HashSet};

/// Key of one random variable: the tuple it corresponds to.
pub type VarKey = (String, Row);

/// Key of one factor: (rule name, grounding row).
pub type FactorKey = (String, Row);

/// The mutable grounding state. Variables and factors are append-only with
/// tombstones; [`GroundingState::live_graph`] compacts to a fresh
/// [`FactorGraph`] for the sampler.
#[derive(Debug, Default)]
pub struct GroundingState {
    pub graph: FactorGraph,
    /// tuple → variable.
    pub var_index: HashMap<VarKey, VariableId>,
    /// variable → tuple (reverse index, for liveness cleanup).
    pub var_key: HashMap<VariableId, VarKey>,
    /// (rule, grounding row) → (factor, live derivation count).
    pub factor_index: HashMap<FactorKey, (FactorId, i64)>,
    /// Live-factor reference count per variable: a variable whose tuple left
    /// its relation AND whose last factor died is garbage.
    pub var_refs: HashMap<VariableId, i64>,
    pub removed_vars: HashSet<VariableId>,
    pub removed_factors: HashSet<FactorId>,
}

/// Summary of one incremental grounding step — the ΔV and ΔF of §4.1.
#[derive(Debug, Default, Clone)]
pub struct GroundingDelta {
    pub added_variables: usize,
    pub removed_variables: usize,
    pub added_factors: usize,
    pub removed_factors: usize,
    /// Factor-rule body evaluations performed (effort metric).
    pub rule_evaluations: usize,
    /// Evidence flags changed.
    pub evidence_changes: usize,
}

impl GroundingDelta {
    pub fn total(&self) -> usize {
        self.added_variables + self.removed_variables + self.added_factors + self.removed_factors
    }

    pub fn absorb(&mut self, other: &GroundingDelta) {
        self.added_variables += other.added_variables;
        self.removed_variables += other.removed_variables;
        self.added_factors += other.added_factors;
        self.removed_factors += other.removed_factors;
        self.rule_evaluations += other.rule_evaluations;
        self.evidence_changes += other.evidence_changes;
    }
}

impl GroundingState {
    pub fn new() -> Self {
        GroundingState::default()
    }

    /// Get or create the variable for a tuple.
    pub fn variable(&mut self, relation: &str, row: &Row, label: Option<String>) -> VariableId {
        let key = (relation.to_string(), row.clone());
        if let Some(&id) = self.var_index.get(&key) {
            // Tuple re-appeared after removal: revive.
            self.removed_vars.remove(&id);
            return id;
        }
        let mut v = Variable::query();
        v.label = label;
        let id = self.graph.add_variable(v);
        self.var_index.insert(key.clone(), id);
        self.var_key.insert(id, key);
        id
    }

    pub fn lookup_variable(&self, relation: &str, row: &Row) -> Option<VariableId> {
        self.var_index
            .get(&(relation.to_string(), row.clone()))
            .copied()
    }

    /// Tombstone a tuple's variable (and implicitly every factor touching it
    /// — filtered during compaction).
    pub fn remove_variable(&mut self, relation: &str, row: &Row) -> bool {
        if let Some(&id) = self.var_index.get(&(relation.to_string(), row.clone())) {
            self.removed_vars.insert(id)
        } else {
            false
        }
    }

    /// Set or clear the evidence flag of a tuple's variable.
    pub fn set_evidence(&mut self, relation: &str, row: &Row, label: Option<bool>) -> bool {
        let Some(&id) = self.var_index.get(&(relation.to_string(), row.clone())) else {
            return false;
        };
        let v = &mut self.graph.variables[id.index()];
        match label {
            Some(value) => {
                let changed = !v.is_evidence || v.evidence_value != value;
                v.is_evidence = true;
                v.evidence_value = value;
                v.init_value = value;
                changed
            }
            None => {
                let changed = v.is_evidence;
                v.is_evidence = false;
                changed
            }
        }
    }

    /// Bump the derivation count of a grounding; creates its factor on the
    /// 0→positive transition. Returns true if a factor was created/revived.
    pub fn add_grounding(
        &mut self,
        rule: &str,
        grounding: Row,
        count: i64,
        function: FactorFunction,
        args: Vec<FactorArg>,
        weight: WeightId,
    ) -> bool {
        debug_assert!(count > 0);
        let key = (rule.to_string(), grounding);
        match self.factor_index.get_mut(&key) {
            Some((fid, c)) => {
                let was_dead = *c <= 0;
                *c += count;
                if was_dead && *c > 0 {
                    let fid = *fid;
                    self.removed_factors.remove(&fid);
                    self.bump_refs(fid, 1);
                    true
                } else {
                    false
                }
            }
            None => {
                let fid = self.graph.add_factor(function, args, weight);
                self.factor_index.insert(key, (fid, count));
                self.bump_refs(fid, 1);
                true
            }
        }
    }

    /// Decrement the derivation count; tombstones the factor when it reaches
    /// zero. Returns the factor id if the factor died.
    pub fn remove_grounding(
        &mut self,
        rule: &str,
        grounding: &Row,
        count: i64,
    ) -> Option<FactorId> {
        debug_assert!(count > 0);
        let key = (rule.to_string(), grounding.clone());
        if let Some((fid, c)) = self.factor_index.get_mut(&key) {
            *c -= count;
            if *c <= 0 && !self.removed_factors.contains(fid) {
                let fid = *fid;
                self.removed_factors.insert(fid);
                self.bump_refs(fid, -1);
                return Some(fid);
            }
        }
        None
    }

    fn bump_refs(&mut self, fid: FactorId, delta: i64) {
        let args: Vec<VariableId> = self.graph.factors[fid.index()]
            .args
            .iter()
            .map(|a| a.variable)
            .collect();
        for v in args {
            *self.var_refs.entry(v).or_insert(0) += delta;
        }
    }

    /// Argument variables of a factor.
    pub fn factor_variables(&self, fid: FactorId) -> Vec<VariableId> {
        self.graph.factors[fid.index()]
            .args
            .iter()
            .map(|a| a.variable)
            .collect()
    }

    /// Live-factor reference count of a variable.
    pub fn refs(&self, v: VariableId) -> i64 {
        self.var_refs.get(&v).copied().unwrap_or(0)
    }

    pub fn num_live_variables(&self) -> usize {
        self.graph.num_variables() - self.removed_vars.len()
    }

    pub fn num_live_factors(&self) -> usize {
        self.graph.num_factors() - self.removed_factors.len()
    }

    /// Compact into a fresh builder graph: tombstoned variables and factors
    /// (and factors touching tombstoned variables) are dropped; ids are
    /// remapped densely. Returns the compacted graph and the map from live
    /// old variable ids to new ones.
    pub fn live_graph(&self) -> (FactorGraph, HashMap<VariableId, VariableId>) {
        let mut out = FactorGraph::new();
        out.weights = self.graph.weights.clone();
        let mut remap: HashMap<VariableId, VariableId> = HashMap::new();
        for (i, v) in self.graph.variables.iter().enumerate() {
            let old = VariableId::from(i);
            if self.removed_vars.contains(&old) {
                continue;
            }
            let new = out.add_variable(v.clone());
            remap.insert(old, new);
        }
        for (i, f) in self.graph.factors.iter().enumerate() {
            let fid = FactorId::from(i);
            if self.removed_factors.contains(&fid) {
                continue;
            }
            let args: Option<Vec<FactorArg>> = f
                .args
                .iter()
                .map(|a| {
                    remap.get(&a.variable).map(|&nv| FactorArg {
                        variable: nv,
                        positive: a.positive,
                    })
                })
                .collect();
            if let Some(args) = args {
                out.add_factor(f.function, args, f.weight);
            }
        }
        (out, remap)
    }

    /// Compile the live graph for sampling, plus the tuple→compiled-variable
    /// mapping used to read marginals back into the database.
    pub fn compile(&self) -> (CompiledGraph, HashMap<VarKey, VariableId>) {
        let (live, remap) = self.live_graph();
        let compiled = live.compile();
        let mut tuple_to_var = HashMap::new();
        for (key, old) in &self.var_index {
            if let Some(&new) = remap.get(old) {
                tuple_to_var.insert(key.clone(), new);
            }
        }
        (compiled, tuple_to_var)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepdive_storage::row;

    #[test]
    fn variable_interning_is_stable() {
        let mut st = GroundingState::new();
        let a = st.variable("R", &row![1], None);
        let b = st.variable("R", &row![1], None);
        let c = st.variable("R", &row![2], None);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(st.num_live_variables(), 2);
    }

    #[test]
    fn grounding_counts_gate_factor_lifecycle() {
        let mut st = GroundingState::new();
        let v = st.variable("R", &row![1], None);
        let w = st.graph.weights.tied("w", 0.0);
        let created = st.add_grounding(
            "rule",
            row![1],
            1,
            FactorFunction::IsTrue,
            vec![FactorArg::pos(v)],
            w,
        );
        assert!(created);
        // Second derivation of the same grounding: no new factor.
        let created = st.add_grounding(
            "rule",
            row![1],
            1,
            FactorFunction::IsTrue,
            vec![FactorArg::pos(v)],
            w,
        );
        assert!(!created);
        assert_eq!(st.num_live_factors(), 1);
        // Remove one derivation: factor survives; remove the last: it dies.
        assert!(st.remove_grounding("rule", &row![1], 1).is_none());
        assert!(st.remove_grounding("rule", &row![1], 1).is_some());
        assert_eq!(st.num_live_factors(), 0);
    }

    #[test]
    fn evidence_flags_toggle() {
        let mut st = GroundingState::new();
        st.variable("R", &row![1], None);
        assert!(st.set_evidence("R", &row![1], Some(true)));
        assert!(!st.set_evidence("R", &row![1], Some(true)), "no-op change");
        assert!(st.set_evidence("R", &row![1], None));
        assert!(!st.set_evidence("R", &row![9], Some(true)), "unknown tuple");
    }

    #[test]
    fn live_graph_drops_tombstones_and_dangling_factors() {
        let mut st = GroundingState::new();
        let a = st.variable("R", &row![1], None);
        let b = st.variable("R", &row![2], None);
        let w = st.graph.weights.tied("w", 0.0);
        st.add_grounding(
            "r1",
            row![1],
            1,
            FactorFunction::IsTrue,
            vec![FactorArg::pos(a)],
            w,
        );
        st.add_grounding(
            "r2",
            row![1, 2],
            1,
            FactorFunction::Imply,
            vec![FactorArg::pos(a), FactorArg::pos(b)],
            w,
        );
        st.remove_variable("R", &row![1]);
        let (live, remap) = st.live_graph();
        assert_eq!(live.num_variables(), 1);
        // Both factors touched the removed variable.
        assert_eq!(live.num_factors(), 0);
        assert!(remap.contains_key(&b));
        assert!(!remap.contains_key(&a));
    }

    #[test]
    fn revived_variable_reuses_id() {
        let mut st = GroundingState::new();
        let a = st.variable("R", &row![1], None);
        st.remove_variable("R", &row![1]);
        assert_eq!(st.num_live_variables(), 0);
        let b = st.variable("R", &row![1], None);
        assert_eq!(a, b);
        assert_eq!(st.num_live_variables(), 1);
    }
}
