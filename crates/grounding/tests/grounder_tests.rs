//! End-to-end grounding tests over the paper's Figure-3 spouse example.

use deepdive_ddlog::compile;
use deepdive_grounding::Grounder;
use deepdive_storage::{row, BaseChange, Database, Value};

const PROGRAM: &str = r#"
    PersonCandidate(s id, m id).
    Sentence(s id, content text).
    EL(m id, e text).
    Married(e1 text, e2 text).
    MarriedCandidate(m1 id, m2 id).
    MarriedMentions_Ev(m1 id, m2 id, label bool).
    MarriedMentions?(m1 id, m2 id).

    @name("r1")
    MarriedCandidate(m1, m2) :-
        PersonCandidate(s, m1), PersonCandidate(s, m2), m1 < m2.

    @name("s1")
    MarriedMentions_Ev(m1, m2, true) :-
        MarriedCandidate(m1, m2), EL(m1, e1), EL(m2, e2), Married(e1, e2).

    @name("fe1")
    MarriedMentions(m1, m2) :-
        MarriedCandidate(m1, m2),
        PersonCandidate(s, m1), PersonCandidate(s, m2),
        Sentence(s, sent),
        f = phrase(m1, m2, sent)
        weight = f.
"#;

fn setup() -> (Database, Grounder) {
    let mut db = Database::new();
    db.register_udf("phrase", |args: &[Value]| {
        // Toy phrase feature: sentence text itself keys the weight.
        vec![Value::text(format!("phrase={}", args[2]))]
    });
    let ddlog = compile(PROGRAM).unwrap();
    let g = Grounder::new(&mut db, ddlog).unwrap();
    (db, g)
}

fn load_fixture(db: &Database) {
    // Sentence 1: mentions 10, 20 (married pair in the KB).
    db.insert("Sentence", row![Value::Id(1), "and his wife"])
        .unwrap();
    db.insert("PersonCandidate", row![Value::Id(1), Value::Id(10)])
        .unwrap();
    db.insert("PersonCandidate", row![Value::Id(1), Value::Id(20)])
        .unwrap();
    db.insert("EL", row![Value::Id(10), "Barack"]).unwrap();
    db.insert("EL", row![Value::Id(20), "Michelle"]).unwrap();
    db.insert("Married", row!["Barack", "Michelle"]).unwrap();
}

#[test]
fn full_grounding_builds_variables_factors_and_evidence() {
    let (db, mut g) = setup();
    load_fixture(&db);
    let delta = g.initial_load(&db).unwrap();
    // One candidate pair → one variable.
    assert_eq!(db.len("MarriedCandidate").unwrap(), 1);
    assert_eq!(g.state.num_live_variables(), 1);
    assert_eq!(g.state.num_live_factors(), 1);
    assert!(
        delta.evidence_changes >= 1,
        "distant supervision labeled the pair"
    );
    let (compiled, map) = g.state.compile();
    assert_eq!(compiled.num_variables, 1);
    let vid = map[&(
        "MarriedMentions".to_string(),
        row![Value::Id(10), Value::Id(20)],
    )];
    assert!(compiled.is_evidence[vid.index()]);
    assert!(compiled.evidence_value[vid.index()]);
}

#[test]
fn tied_weights_share_across_sentences() {
    let (db, mut g) = setup();
    load_fixture(&db);
    // Second sentence with the same phrase and two new mentions.
    db.insert("Sentence", row![Value::Id(2), "and his wife"])
        .unwrap();
    db.insert("PersonCandidate", row![Value::Id(2), Value::Id(30)])
        .unwrap();
    db.insert("PersonCandidate", row![Value::Id(2), Value::Id(40)])
        .unwrap();
    g.initial_load(&db).unwrap();
    assert_eq!(g.state.num_live_variables(), 2);
    assert_eq!(g.state.num_live_factors(), 2);
    // Both factors share one tied weight (same phrase).
    let w = g
        .state
        .graph
        .weights
        .lookup("fe1:phrase=and his wife")
        .unwrap();
    assert_eq!(g.state.graph.weights.get(w).references, 2);
}

#[test]
fn incremental_matches_full_reground_on_insert() {
    let (db, mut g) = setup();
    load_fixture(&db);
    g.initial_load(&db).unwrap();

    // New document arrives: sentence 3 with mentions 50, 60.
    let changes = vec![
        BaseChange::insert("Sentence", row![Value::Id(3), "divorced from"]),
        BaseChange::insert("PersonCandidate", row![Value::Id(3), Value::Id(50)]),
        BaseChange::insert("PersonCandidate", row![Value::Id(3), Value::Id(60)]),
    ];
    let delta = g.apply_update(&db, changes).unwrap();
    assert_eq!(delta.added_variables, 1);
    assert_eq!(delta.added_factors, 1);
    assert_eq!(g.state.num_live_variables(), 2);
    assert_eq!(g.state.num_live_factors(), 2);

    // Reference: fresh grounder over the same database state.
    let mut db2 = Database::new();
    db2.register_udf("phrase", |args: &[Value]| {
        vec![Value::text(format!("phrase={}", args[2]))]
    });
    let mut g2 = Grounder::new(&mut db2, compile(PROGRAM).unwrap()).unwrap();
    for rel in ["Sentence", "PersonCandidate", "EL", "Married"] {
        for r in db.rows(rel).unwrap() {
            db2.insert(rel, r).unwrap();
        }
    }
    g2.initial_load(&db2).unwrap();
    assert_eq!(g.state.num_live_variables(), g2.state.num_live_variables());
    assert_eq!(g.state.num_live_factors(), g2.state.num_live_factors());
}

#[test]
fn incremental_deletion_retracts_variables_and_factors() {
    let (db, mut g) = setup();
    load_fixture(&db);
    g.initial_load(&db).unwrap();
    assert_eq!(g.state.num_live_factors(), 1);
    // Retract one mention: candidate pair and factor must die.
    let delta = g
        .apply_update(
            &db,
            vec![BaseChange::delete(
                "PersonCandidate",
                row![Value::Id(1), Value::Id(20)],
            )],
        )
        .unwrap();
    assert_eq!(delta.removed_variables, 1);
    assert_eq!(delta.removed_factors, 1);
    assert_eq!(g.state.num_live_variables(), 0);
    assert_eq!(g.state.num_live_factors(), 0);
    let (compiled, _) = g.state.compile();
    assert_eq!(compiled.num_variables, 0);
    assert_eq!(compiled.num_factors, 0);
}

#[test]
fn evidence_updates_flow_incrementally() {
    let (db, mut g) = setup();
    // No KB entry yet: pair is unlabeled.
    db.insert("Sentence", row![Value::Id(1), "and his wife"])
        .unwrap();
    db.insert("PersonCandidate", row![Value::Id(1), Value::Id(10)])
        .unwrap();
    db.insert("PersonCandidate", row![Value::Id(1), Value::Id(20)])
        .unwrap();
    db.insert("EL", row![Value::Id(10), "Barack"]).unwrap();
    db.insert("EL", row![Value::Id(20), "Michelle"]).unwrap();
    g.initial_load(&db).unwrap();
    {
        let (compiled, map) = g.state.compile();
        let vid = map[&(
            "MarriedMentions".to_string(),
            row![Value::Id(10), Value::Id(20)],
        )];
        assert!(!compiled.is_evidence[vid.index()]);
    }
    // KB fact arrives → distant supervision fires → evidence set.
    let delta = g
        .apply_update(
            &db,
            vec![BaseChange::insert("Married", row!["Barack", "Michelle"])],
        )
        .unwrap();
    assert_eq!(delta.evidence_changes, 1);
    {
        let (compiled, map) = g.state.compile();
        let vid = map[&(
            "MarriedMentions".to_string(),
            row![Value::Id(10), Value::Id(20)],
        )];
        assert!(compiled.is_evidence[vid.index()]);
        assert!(compiled.evidence_value[vid.index()]);
    }
    // KB fact retracted → evidence cleared.
    let delta = g
        .apply_update(
            &db,
            vec![BaseChange::delete("Married", row!["Barack", "Michelle"])],
        )
        .unwrap();
    assert_eq!(delta.evidence_changes, 1);
    let (compiled, map) = g.state.compile();
    let vid = map[&(
        "MarriedMentions".to_string(),
        row![Value::Id(10), Value::Id(20)],
    )];
    assert!(!compiled.is_evidence[vid.index()]);
}

#[test]
fn imply_factor_rules_connect_two_variables() {
    let src = r#"
        Pair(a id, b id).
        HasSpouse?(a id, b id).
        @name("sym")
        HasSpouse(a, b) => HasSpouse(b, a) :- Pair(a, b) weight = 5.
    "#;
    let mut db = Database::new();
    let mut g = Grounder::new(&mut db, compile(src).unwrap()).unwrap();
    db.insert("Pair", row![Value::Id(1), Value::Id(2)]).unwrap();
    g.initial_load(&db).unwrap();
    assert_eq!(
        g.state.num_live_variables(),
        2,
        "both direction tuples get variables"
    );
    assert_eq!(g.state.num_live_factors(), 1);
    let (compiled, _) = g.state.compile();
    assert_eq!(compiled.args_of(0).len(), 2);
    // Fixed weight: not learnable.
    let w = g.state.graph.weights.lookup("rule:sym").unwrap();
    assert!(g.state.graph.weights.get(w).fixed);
    assert_eq!(g.state.graph.weights.value(w), 5.0);
}

#[test]
fn duplicate_derivations_do_not_duplicate_factors() {
    // Same grounding row derivable through two facts → one factor with
    // derivation count 2; deleting one keeps the factor alive.
    let src = r#"
        Seen(m id, s id).
        Flagged?(m id).
        @name("fe")
        Flagged(m) :- Seen(m, s) weight = ?.
    "#;
    let mut db = Database::new();
    let mut g = Grounder::new(&mut db, compile(src).unwrap()).unwrap();
    db.insert("Seen", row![Value::Id(1), Value::Id(100)])
        .unwrap();
    db.insert("Seen", row![Value::Id(1), Value::Id(200)])
        .unwrap();
    g.initial_load(&db).unwrap();
    // Grounding head row is just (m): both derivations share it.
    assert_eq!(g.state.num_live_factors(), 1);
    g.apply_update(
        &db,
        vec![BaseChange::delete(
            "Seen",
            row![Value::Id(1), Value::Id(100)],
        )],
    )
    .unwrap();
    assert_eq!(g.state.num_live_factors(), 1, "still one derivation left");
    g.apply_update(
        &db,
        vec![BaseChange::delete(
            "Seen",
            row![Value::Id(1), Value::Id(200)],
        )],
    )
    .unwrap();
    assert_eq!(g.state.num_live_factors(), 0);
}
