//! Materials science (§6.3 of the paper): build the "handbook of
//! semiconductor materials and their properties" that — per the paper —
//! does not exist, from research abstracts.
//!
//! ```sh
//! cargo run --release --example materials_science
//! ```

use deepdive_core::apps::{MaterialsApp, MaterialsAppConfig};
use deepdive_core::{threshold_sweep, RunConfig};
use deepdive_corpus::MaterialsConfig;
use deepdive_sampler::{GibbsOptions, LearnOptions};
use std::collections::BTreeSet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut app = MaterialsApp::build(MaterialsAppConfig {
        corpus: MaterialsConfig {
            num_docs: 250,
            ..Default::default()
        },
        run: RunConfig {
            learn: LearnOptions {
                epochs: 120,
                ..Default::default()
            },
            inference: GibbsOptions {
                burn_in: 100,
                samples: 1200,
                clamp_evidence: true,
                ..Default::default()
            },
            ..Default::default()
        },
        ..Default::default()
    })?;

    let result = app.run()?;
    println!(
        "graph: {} variables / {} factors; seed handbook covered {} pairs",
        result.num_variables,
        result.num_factors,
        app.dd.db.len("Handbook")?
    );

    println!("\nExtracted handbook (p >= 0.9), first 15 rows:");
    for (key, p) in app
        .entity_predictions(&result)
        .iter()
        .filter(|(_, p)| *p >= 0.9)
        .take(15)
    {
        let (f, prop) = key.split_once('|').unwrap();
        println!("  {f:<8} {prop:<22} p={p:.3}");
    }

    let q = app.evaluate(&result, 0.9);
    println!(
        "\nquality vs planted truth: P={:.3} R={:.3} F1={:.3}",
        q.precision(),
        q.recall(),
        q.f1()
    );

    // The §3.4 trade-off: lowering the threshold buys recall at the cost of
    // precision — engineers pick per application.
    let truth: BTreeSet<String> = app.truth_keys();
    let preds = app.entity_predictions(&result);
    println!("\nthreshold sweep:");
    for pt in threshold_sweep(&preds, &truth, &[0.95, 0.9, 0.7, 0.5]) {
        println!(
            "  p>={:.2}  P={:.3} R={:.3} F1={:.3}  ({} rows)",
            pt.threshold, pt.precision, pt.recall, pt.f1, pt.extracted
        );
    }
    Ok(())
}
