//! Incremental knowledge-base construction (§4.1): documents and KB facts
//! arrive over time; DeepDive maintains the derived relations (counting +
//! DRed), the factor graph (ΔV/ΔF delta rules), and the output database —
//! without re-grounding from scratch.
//!
//! ```sh
//! cargo run --release --example incremental_updates
//! ```

use deepdive_core::apps::{SpouseApp, SpouseAppConfig};
use deepdive_core::RunConfig;
use deepdive_corpus::SpouseConfig;
use deepdive_sampler::{GibbsOptions, LearnOptions};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One planted universe, 240 documents; the first 200 are available at
    // load time, the remaining 40 stream in later. Ground truth (the recall
    // denominator) covers ALL 240 documents, so recall GROWS as the stream
    // delivers the sentences that express the missing pairs.
    let corpus_cfg = SpouseConfig {
        num_docs: 240,
        ..Default::default()
    };
    let full = deepdive_corpus::spouse::generate(&corpus_cfg);
    let mut initial = full.clone();
    initial.documents.truncate(200);
    let late_docs: Vec<_> = full.documents[200..].to_vec();

    let mut app = SpouseApp::build_with_corpus(
        SpouseAppConfig {
            corpus: corpus_cfg,
            run: RunConfig {
                learn: LearnOptions {
                    epochs: 80,
                    ..Default::default()
                },
                inference: GibbsOptions {
                    burn_in: 60,
                    samples: 600,
                    clamp_evidence: true,
                    ..Default::default()
                },
                compute_calibration: false,
                ..Default::default()
            },
            ..Default::default()
        },
        initial,
    )?;
    // Evaluate against the FULL universe's expressed pairs throughout.
    app.corpus.expressed_married = full.expressed_married.clone();

    // Initial load + first run.
    let t0 = Instant::now();
    let result = app.run()?;
    let q0 = app.evaluate(&result, 0.7);
    println!(
        "initial run over 200/240 docs: {:?}  ({} vars / {} factors)  P={:.3} R={:.3} F1={:.3}",
        t0.elapsed(),
        result.num_variables,
        result.num_factors,
        q0.precision(),
        q0.recall(),
        q0.f1()
    );

    // The remaining 40 documents arrive.
    let mut changes = Vec::new();
    for doc in &late_docs {
        changes.extend(app.document_changes(&doc.text));
    }
    println!(
        "\n40 new documents arrive: {} base-tuple changes",
        changes.len()
    );

    // Incremental developer iteration: delta-maintain relations, grounding,
    // then re-learn (warm-started from the stored weights) and re-infer.
    let t1 = Instant::now();
    let result = app.dd.update(changes)?;
    println!(
        "incremental update: {:?}  (ΔV +{} −{}, ΔF +{} −{}, {} rule evals)",
        t1.elapsed(),
        result.grounding_delta.added_variables,
        result.grounding_delta.removed_variables,
        result.grounding_delta.added_factors,
        result.grounding_delta.removed_factors,
        result.grounding_delta.rule_evaluations,
    );
    println!(
        "graph now: {} vars / {} factors / {} evidence",
        result.num_variables, result.num_factors, result.num_evidence
    );

    // The output database reflects the new documents: recall rises.
    let q1 = app.evaluate(&result, 0.7);
    println!(
        "quality after update: P={:.3} R={:.3} F1={:.3}  (recall {:+.3})",
        q1.precision(),
        q1.recall(),
        q1.f1(),
        q1.recall() - q0.recall()
    );

    // Retraction: a source is withdrawn (e.g. a document found to be
    // erroneous); DRed retracts everything only it supported.
    let doc = late_docs[0].text.clone();
    let retractions: Vec<_> = app
        .document_changes(&doc)
        .into_iter()
        .map(|ch| deepdive_storage::BaseChange::delete(ch.relation, ch.row))
        .collect();
    // (document_changes assigned FRESH ids above, so delete the originals:
    // in a real deployment the loader records the ids it inserted. Here we
    // simply demonstrate the API on the re-inserted rows.)
    let t2 = Instant::now();
    app.dd.grounder.apply_update(&app.dd.db, retractions)?;
    println!("\nretraction processed in {:?}", t2.elapsed());
    println!(
        "graph after retraction: {} vars / {} factors",
        app.dd.grounder.state.num_live_variables(),
        app.dd.grounder.state.num_live_factors()
    );
    Ok(())
}
