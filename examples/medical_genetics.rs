//! Medical genetics (§6.1 of the paper): build the `(gene, phenotype)`
//! database a doctor would consult instead of "asking Doctor Google".
//!
//! ```sh
//! cargo run --release --example medical_genetics
//! ```

use deepdive_core::apps::{GeneticsApp, GeneticsAppConfig};
use deepdive_core::{render_calibration, RunConfig};
use deepdive_corpus::GeneticsConfig;
use deepdive_sampler::{GibbsOptions, LearnOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut app = GeneticsApp::build(GeneticsAppConfig {
        corpus: GeneticsConfig {
            num_docs: 300,
            ..Default::default()
        },
        run: RunConfig {
            learn: LearnOptions {
                epochs: 120,
                ..Default::default()
            },
            inference: GibbsOptions {
                burn_in: 100,
                samples: 1500,
                clamp_evidence: true,
                ..Default::default()
            },
            ..Default::default()
        },
        ..Default::default()
    })?;

    let result = app.run()?;
    println!(
        "graph: {} variables / {} factors; {} distant-supervision labels",
        result.num_variables, result.num_factors, result.num_evidence
    );
    println!(
        "phases: candidates {:?}, supervision {:?}, learning+inference {:?}",
        result.timings.candidate_extraction,
        result.timings.supervision,
        result.timings.learning_inference()
    );

    // The aspirational database (gene, phenotype), OMIM-style.
    let preds = app.entity_predictions(&result);
    println!("\nExtracted gene–phenotype table (p >= 0.9), first 15 rows:");
    let mut shown = 0;
    for (key, p) in preds.iter().filter(|(_, p)| *p >= 0.9) {
        let (g, ph) = key.split_once('|').unwrap();
        println!("  regulates({g}, {ph})  p={p:.3}");
        shown += 1;
        if shown >= 15 {
            break;
        }
    }

    let q = app.evaluate(&result, 0.9);
    println!(
        "\nquality vs planted truth: P={:.3} R={:.3} F1={:.3}",
        q.precision(),
        q.recall(),
        q.f1()
    );
    println!(
        "(the KB covered only {} of {} true associations — the rest were \
         learned from text)",
        app.corpus.kb.len(),
        app.corpus.associations.len()
    );

    if let Some(cal) = &result.calibration {
        println!("\nFigure-5 calibration plot over held-out labels:");
        print!("{}", render_calibration(cal));
    }
    Ok(())
}
