//! Quickstart: the paper's Figure-3 deployment in miniature.
//!
//! Builds a DeepDive app for the `HasSpouse` relation from a handful of raw
//! sentences, supervises it distantly from a one-fact knowledge base, and
//! prints the extracted aspirational table with marginal probabilities.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use deepdive_core::{DeepDive, RunConfig};
use deepdive_nlp::{Pipeline, SpanKind};
use deepdive_sampler::{GibbsOptions, LearnOptions};
use deepdive_storage::{row, Value};

const PROGRAM: &str = r#"
    # Schemas. `?` marks the query relation: its tuples become Boolean
    # random variables (§3.3 of the paper).
    Sentence(s id, content text).
    Mention(s id, m id, mtext text).
    MarriedCandidate(m1 id, m2 id).
    EL(m id, e text).
    Married(e1 text, e2 text).
    MarriedMentions_Ev(m1 id, m2 id, label bool).
    MarriedMentions?(m1 id, m2 id).

    # (R1) candidate mapping: every same-sentence person pair.
    MarriedCandidate(m1, m2) :-
        Mention(s, m1, t1), Mention(s, m2, t2), m1 < m2.

    # (S1) distant supervision from the incomplete Married KB.
    MarriedMentions_Ev(m1, m2, true) :-
        MarriedCandidate(m1, m2), EL(m1, e1), EL(m2, e2), Married(e1, e2).

    # (FE1) the phrase feature with weight tying (Ex. 3.2).
    MarriedMentions(m1, m2) :-
        MarriedCandidate(m1, m2),
        Mention(s, m1, t1), Mention(s, m2, t2),
        Sentence(s, sent),
        f = f_phrase(sent, t1, t2)
        weight = f.
"#;

const CORPUS: &[&str] = &[
    "Barack Obama and his wife Michelle Obama attended the dinner.",
    "John Smith and his wife Mary Smith bought a house.",
    "David Miller and his wife Sarah Miller hosted the gala.",
    "Robert Johnson praised Linda Johnson during the interview.",
    "Malia Obama and Sasha Obama attended the state dinner.",
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut dd = DeepDive::builder(PROGRAM)
        .standard_features()
        .config(RunConfig {
            threshold: 0.8,
            holdout_fraction: 0.0,
            learn: LearnOptions {
                epochs: 120,
                ..Default::default()
            },
            inference: GibbsOptions {
                burn_in: 100,
                samples: 2000,
                clamp_evidence: true,
                ..Default::default()
            },
            compute_calibration: false,
            ..Default::default()
        })
        .build()?;

    // Phase 0: NLP preprocessing fills the base relations.
    let pipeline = Pipeline::default();
    let mut mention_names = std::collections::HashMap::new();
    let mut m_id = 0u64;
    for (s_id, text) in CORPUS.iter().enumerate() {
        let doc = pipeline.process(s_id as u64, text);
        for sent in &doc.sentences {
            dd.insert("Sentence", row![Value::Id(s_id as u64), sent.text.as_str()])?;
            for span in sent.spans_of(SpanKind::Person) {
                dd.insert(
                    "Mention",
                    row![Value::Id(s_id as u64), Value::Id(m_id), span.text.as_str()],
                )?;
                dd.insert("EL", row![Value::Id(m_id), span.text.as_str()])?;
                mention_names.insert(m_id, span.text.clone());
                m_id += 1;
            }
        }
    }
    // The (incomplete) knowledge base: ONE known married couple.
    dd.insert("Married", row!["Barack Obama", "Michelle Obama"])?;
    dd.insert("Married", row!["Michelle Obama", "Barack Obama"])?;

    // Run: candidates → supervision → grounding → learning → inference.
    let result = dd.run()?;
    println!(
        "factor graph: {} variables, {} factors, {} evidence",
        result.num_variables, result.num_factors, result.num_evidence
    );
    println!("\nOutput aspirational table (p >= 0.8):");
    for (pair, p) in result.output("MarriedMentions", 0.8) {
        let a = &mention_names[&pair[0].as_id().unwrap()];
        let b = &mention_names[&pair[1].as_id().unwrap()];
        println!("  HasSpouse({a}, {b})  p={p:.3}");
    }
    println!("\nLearned feature weights:");
    for w in result.top_weights(5) {
        println!("  {:+.3}  (seen {}x)  {}", w.value, w.references, w.key);
    }
    println!(
        "\nNote: \"and his wife\" was learned from ONE supervised pair and \
         generalized to the Smith and Miller couples — the KB never mentioned \
         them. The Johnson pair (no marriage phrase) and the Obama daughters \
         stay below threshold."
    );
    Ok(())
}
