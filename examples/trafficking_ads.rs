//! Fighting human trafficking (§6.4 of the paper): extract structured
//! `(ad, price, city, phone)` records from classified ads, then compute the
//! movement warning sign the paper describes — "a sex worker who posts from
//! multiple cities in relatively rapid succession may be moved from place to
//! place by traffickers".
//!
//! ```sh
//! cargo run --release --example trafficking_ads
//! ```

use deepdive_core::apps::{AdsApp, AdsAppConfig};
use deepdive_core::RunConfig;
use deepdive_corpus::AdsConfig;
use deepdive_nlp::{tokenize, Gazetteer};
use deepdive_sampler::{GibbsOptions, LearnOptions};
use std::collections::BTreeMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut app = AdsApp::build(AdsAppConfig {
        corpus: AdsConfig {
            num_ads: 600,
            ..Default::default()
        },
        run: RunConfig {
            learn: LearnOptions {
                epochs: 120,
                ..Default::default()
            },
            inference: GibbsOptions {
                burn_in: 100,
                samples: 1200,
                clamp_evidence: true,
                ..Default::default()
            },
            ..Default::default()
        },
        ..Default::default()
    })?;

    let result = app.run()?;
    let q = app.evaluate(&result, 0.7);
    println!(
        "price extraction over {} ads: P={:.3} R={:.3} F1={:.3}",
        app.corpus.documents.len(),
        q.precision(),
        q.recall(),
        q.f1()
    );

    // Aggregate price statistics (the paper: "Using price data from the
    // advertisements alone, we can compute aggregate statistics and analyses
    // about sex commerce").
    let prices: Vec<i64> = app
        .predictions(&result)
        .into_iter()
        .filter(|(_, p)| *p >= 0.7)
        .filter_map(|(k, _)| k.split_once('|').and_then(|(_, v)| v.parse().ok()))
        .collect();
    if !prices.is_empty() {
        let mean = prices.iter().sum::<i64>() as f64 / prices.len() as f64;
        println!("extracted {} prices; mean = ${mean:.0}", prices.len());
    }

    // Movement analysis from extracted (phone, city) co-occurrences:
    // workers posting from 3+ cities are flagged.
    let city_gaz = Gazetteer::from_phrases(deepdive_corpus::names::CITIES.iter().copied());
    let mut cities_by_phone: BTreeMap<String, std::collections::BTreeSet<String>> = BTreeMap::new();
    for doc in &app.corpus.documents {
        let toks = tokenize(&doc.text);
        let phones = deepdive_nlp::spot_phones(&toks);
        let lowered: Vec<String> = toks.iter().map(|t| t.text.to_lowercase()).collect();
        let mut i = 0;
        let mut found_cities = Vec::new();
        while i < lowered.len() {
            if let Some(len) = city_gaz.longest_match(&lowered[i..]) {
                found_cities.push(lowered[i..i + len].join(" "));
                i += len;
            } else {
                i += 1;
            }
        }
        for phone in &phones {
            for c in &found_cities {
                cities_by_phone
                    .entry(phone.text.clone())
                    .or_default()
                    .insert(c.clone());
            }
        }
    }
    let flagged: Vec<(&String, usize)> = cities_by_phone
        .iter()
        .filter(|(_, cs)| cs.len() >= 3)
        .map(|(p, cs)| (p, cs.len()))
        .collect();
    println!(
        "\nmovement warning signs: {} phone numbers posted from 3+ cities \
         (corpus planted {} moved workers):",
        flagged.len(),
        app.corpus.moved_workers.len()
    );
    for (phone, n) in flagged.iter().take(10) {
        println!("  {phone}  — {n} distinct cities");
    }
    Ok(())
}
