//! The improvement iteration loop (Figure 1 and §5 of the paper): a
//! DeepDive engineer repeatedly runs the system, produces an error
//! analysis, fixes the largest failure bucket, and reruns.
//!
//! Each iteration below is one of the repairs §5.2 enumerates: add a
//! feature function, add a distant-supervision rule, add a prior. Quality
//! climbs monotonically — the paper's central engineering claim.
//!
//! ```sh
//! cargo run --release --example developer_loop
//! ```

use deepdive_core::apps::{FeatureSet, SpouseApp, SpouseAppConfig, SupervisionMode};
use deepdive_core::error_analysis::{analyze, ErrorAnalysisConfig};
use deepdive_core::RunConfig;
use deepdive_corpus::SpouseConfig;
use deepdive_sampler::{GibbsOptions, LearnOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let corpus_cfg = SpouseConfig {
        num_docs: 250,
        ..Default::default()
    };
    let run = RunConfig {
        learn: LearnOptions {
            epochs: 100,
            ..Default::default()
        },
        inference: GibbsOptions {
            burn_in: 80,
            samples: 1000,
            clamp_evidence: true,
            ..Default::default()
        },
        compute_calibration: false,
        ..Default::default()
    };

    // The engineer's iterations, in the order §5.2's failure analysis
    // would suggest them.
    let iterations: Vec<(&str, SpouseAppConfig)> = vec![
        (
            "1: phrase feature only, positive supervision only",
            SpouseAppConfig {
                features: FeatureSet::phrase_only(),
                negative_supervision: false,
                negative_prior: None,
                ..base(&corpus_cfg, &run)
            },
        ),
        (
            "2: + negative supervision from the Siblings relation",
            SpouseAppConfig {
                features: FeatureSet::phrase_only(),
                negative_prior: None,
                ..base(&corpus_cfg, &run)
            },
        ),
        (
            "3: + negative prior on unsupported candidates",
            SpouseAppConfig {
                features: FeatureSet::phrase_only(),
                ..base(&corpus_cfg, &run)
            },
        ),
        (
            "4: + word/distance/window feature templates",
            SpouseAppConfig {
                features: FeatureSet::all(),
                ..base(&corpus_cfg, &run)
            },
        ),
    ];

    println!("iteration                                              P      R      F1");
    for (desc, cfg) in iterations {
        let mut app = SpouseApp::build(cfg)?;
        let result = app.run()?;
        let q = app.evaluate(&result, 0.5);
        println!(
            "{desc:<52} {:.3}  {:.3}  {:.3}",
            q.precision(),
            q.recall(),
            q.f1()
        );

        // The error-analysis document for the final iteration.
        if desc.starts_with('4') {
            let preds = app.entity_predictions(&result);
            let truth = app.truth_keys();
            let ea = analyze(
                &preds,
                &truth,
                &result.weights,
                "spouse-v4",
                &ErrorAnalysisConfig {
                    threshold: 0.5,
                    ..Default::default()
                },
                &|key| {
                    // Failure-mode bucketing: tag each false positive.
                    if key.split('|').count() != 2 {
                        "malformed pair".into()
                    } else {
                        "co-occurrence without marriage cue".into()
                    }
                },
            );
            println!("\n{}", ea.render());
        }
    }
    Ok(())
}

fn base(corpus: &SpouseConfig, run: &RunConfig) -> SpouseAppConfig {
    SpouseAppConfig {
        corpus: corpus.clone(),
        run: run.clone(),
        features: FeatureSet::all(),
        supervision: SupervisionMode::Distant,
        negative_supervision: true,
        negative_prior: Some(-0.7),
    }
}
