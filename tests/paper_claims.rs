//! Fast sanity checks of the paper's qualitative claims (full-scale versions
//! live in the `reproduce` binary; see EXPERIMENTS.md).

use deepdive_bench::experiments::chain_graph;
use deepdive_core::apps::{regex_baseline_extract, SpouseApp, SpouseAppConfig, SupervisionMode};
use deepdive_core::{Quality, RunConfig};
use deepdive_corpus::{AdsConfig, SpouseConfig};
use deepdive_sampler::{
    parallel_gibbs, GibbsOptions, LearnOptions, NumaStrategy, ParallelGibbsOptions, Topology,
};
use std::collections::BTreeSet;

fn fast_run() -> RunConfig {
    RunConfig {
        learn: LearnOptions {
            epochs: 50,
            ..Default::default()
        },
        inference: GibbsOptions {
            burn_in: 40,
            samples: 300,
            clamp_evidence: true,
            ..Default::default()
        },
        compute_calibration: false,
        ..Default::default()
    }
}

/// §4.2 / E4: NUMA-aware execution avoids the remote-access charges the
/// shared chain pays, and is faster under the simulated topology.
#[test]
fn numa_aware_beats_shared_chain() {
    let g = deepdive_bench::experiments::chain_graph_layout(80, 10, 40, true);
    let c = g.compile();
    let weights = g.weights.values();
    let mk = |strategy| ParallelGibbsOptions {
        topology: Topology::new(4, 1, 600),
        strategy,
        burn_in: 0,
        samples: 30,
        seed: 2,
        clamp_evidence: false,
    };
    let aware = parallel_gibbs(&c, &weights, &mk(NumaStrategy::NumaAware));
    let shared = parallel_gibbs(&c, &weights, &mk(NumaStrategy::SharedChain));
    assert_eq!(aware.remote_accesses, 0);
    assert!(shared.remote_accesses > 0);
    assert!(
        aware.sweeps_per_sec(c.num_variables) > shared.sweeps_per_sec(c.num_variables),
        "aware {} vs shared {}",
        aware.sweeps_per_sec(c.num_variables),
        shared.sweeps_per_sec(c.num_variables)
    );
}

/// §5.3 / E9: stacked deterministic rules show strictly diminishing returns.
#[test]
fn regex_rules_have_diminishing_returns() {
    let corpus = deepdive_corpus::ads::generate(&AdsConfig {
        num_ads: 300,
        ..Default::default()
    });
    let truth: BTreeSet<String> = corpus
        .truth
        .iter()
        .filter_map(|t| t.price.map(|p| format!("{}|{p}", t.ad_id)))
        .collect();
    let f1s: Vec<f64> = (1..=4)
        .map(|k| Quality::compare(&regex_baseline_extract(&corpus, k), &truth).f1())
        .collect();
    let gains: Vec<f64> = (0..4)
        .map(|k| if k == 0 { f1s[0] } else { f1s[k] - f1s[k - 1] })
        .collect();
    for w in gains.windows(2) {
        assert!(w[1] < w[0], "productivity must shrink: {gains:?}");
    }
}

/// §5.3 / E7: distant supervision beats a small manual-label budget.
#[test]
fn distant_supervision_beats_small_manual_budget() {
    let corpus_cfg = SpouseConfig {
        num_docs: 80,
        ..Default::default()
    };
    let corpus = deepdive_corpus::spouse::generate(&corpus_cfg);

    let distant_f1 = {
        let mut app = SpouseApp::build_with_corpus(
            SpouseAppConfig {
                corpus: corpus_cfg.clone(),
                run: fast_run(),
                ..Default::default()
            },
            corpus.clone(),
        )
        .unwrap();
        let r = app.run().unwrap();
        app.evaluate(&r, 0.7).f1()
    };
    let manual_f1 = {
        let mut app = SpouseApp::build_with_corpus(
            SpouseAppConfig {
                corpus: corpus_cfg,
                run: fast_run(),
                supervision: SupervisionMode::Manual {
                    num_labels: 15,
                    noise: 0.02,
                },
                ..Default::default()
            },
            corpus,
        )
        .unwrap();
        let r = app.run().unwrap();
        app.evaluate(&r, 0.7).f1()
    };
    assert!(
        distant_f1 > manual_f1,
        "distant {distant_f1:.3} should beat 15 manual labels {manual_f1:.3}"
    );
}

/// §5.2 bug class 1: OCR noise breaks candidate generation, and the
/// candidate-recall diagnostic localizes the failure (no feature or
/// supervision fix can recover a candidate that was never generated).
#[test]
fn ocr_noise_shows_up_as_candidate_recall_loss() {
    let clean = SpouseApp::build(SpouseAppConfig {
        corpus: SpouseConfig {
            num_docs: 120,
            ..Default::default()
        },
        run: fast_run(),
        ..Default::default()
    })
    .unwrap();
    clean.dd.grounder.state.num_live_variables(); // silence unused path
    let mut clean_app = clean;
    clean_app
        .dd
        .grounder
        .initial_load(&clean_app.dd.db)
        .unwrap();
    let clean_recall = clean_app.candidate_recall();

    let mut noisy_app = SpouseApp::build(SpouseAppConfig {
        corpus: SpouseConfig {
            num_docs: 120,
            typo_rate: 0.9,
            ..Default::default()
        },
        run: fast_run(),
        ..Default::default()
    })
    .unwrap();
    noisy_app
        .dd
        .grounder
        .initial_load(&noisy_app.dd.db)
        .unwrap();
    let noisy_recall = noisy_app.candidate_recall();
    println!("candidate recall: clean {clean_recall:.3}, OCR-noisy {noisy_recall:.3}");
    assert!(clean_recall > 0.8, "clean candidate recall {clean_recall}");
    assert!(
        noisy_recall < clean_recall - 0.05,
        "OCR noise must cost candidate recall: {noisy_recall} vs {clean_recall}"
    );
}

/// §3.4: lowering the threshold trades precision for recall.
#[test]
fn threshold_monotonicity() {
    let mut app = SpouseApp::build(SpouseAppConfig {
        corpus: SpouseConfig {
            num_docs: 80,
            ..Default::default()
        },
        run: fast_run(),
        ..Default::default()
    })
    .unwrap();
    let result = app.run().unwrap();
    let hi = app.evaluate(&result, 0.9);
    let lo = app.evaluate(&result, 0.3);
    assert!(
        lo.recall() >= hi.recall(),
        "recall must not drop as threshold falls"
    );
}

/// §4.2 / E3-adjacent: the lock-free sequential scan outperforms the
/// GraphLab-style locking engine on the same graph (single worker count).
#[test]
fn sequential_scan_beats_locking_sampler() {
    use deepdive_sampler::{GraphLabOptions, GraphLabStyleSampler};
    let g = chain_graph(60, 10, 300);
    let c = g.compile();
    let weights = g.weights.values();
    let sweeps = 60;

    let t0 = std::time::Instant::now();
    let mut s = deepdive_sampler::GibbsSampler::new(&c, 1, false);
    let mut world = deepdive_factorgraph::initial_world(&c);
    for _ in 0..sweeps {
        s.sweep(&weights, &mut world);
    }
    let scan = t0.elapsed();

    let gl = GraphLabStyleSampler::new(&c);
    let t1 = std::time::Instant::now();
    gl.run(
        &weights,
        &GraphLabOptions {
            workers: 1,
            burn_in: 0,
            samples: sweeps,
            seed: 1,
            clamp_evidence: false,
        },
    );
    let locked = t1.elapsed();
    assert!(
        locked > scan,
        "locking engine should be slower: scan {scan:?} vs locked {locked:?}"
    );
}
