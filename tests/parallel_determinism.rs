//! Determinism guarantees of the partitioned execution core, end to end:
//!
//! * the spouse pipeline grounds the same variables/factors and reproduces
//!   its marginals exactly run-to-run at any thread count;
//! * a recursive DRed program maintains identical state sequentially and
//!   in parallel;
//! * partitioned multi-chain Gibbs is seeded-deterministic.

use deepdive_core::apps::{SpouseApp, SpouseAppConfig};
use deepdive_core::{RunConfig, RunResult};
use deepdive_corpus::SpouseConfig;
use deepdive_sampler::{parallel_marginals, GibbsOptions, LearnOptions};
use deepdive_storage::{
    row, Atom, BaseChange, Database, ExecutionContext, IncrementalEngine, Literal, Program, Row,
    Rule, Schema, StratifiedProgram, Term, ValueType,
};
use std::sync::Arc;

fn spouse_run(threads: usize) -> (SpouseApp, RunResult) {
    let mut app = SpouseApp::build(SpouseAppConfig {
        corpus: SpouseConfig {
            num_docs: 50,
            ..Default::default()
        },
        run: RunConfig {
            learn: LearnOptions {
                epochs: 60,
                ..Default::default()
            },
            inference: GibbsOptions {
                burn_in: 50,
                samples: 400,
                clamp_evidence: true,
                ..Default::default()
            },
            compute_calibration: false,
            threads,
            ..Default::default()
        },
        ..Default::default()
    })
    .expect("build spouse app");
    let result = app.run().expect("run spouse app");
    (app, result)
}

#[test]
fn spouse_pipeline_grounds_identically_at_any_thread_count() {
    let (seq_app, seq) = spouse_run(1);
    let (_, par) = spouse_run(4);

    // Grounding is bit-identical: same variables, factors, evidence, and
    // the same derivation effort (per-rule counts survive sharding).
    assert_eq!(seq.num_variables, par.num_variables);
    assert_eq!(seq.num_factors, par.num_factors);
    assert_eq!(seq.num_evidence, par.num_evidence);
    assert_eq!(
        seq.grounding_delta.added_variables,
        par.grounding_delta.added_variables
    );
    assert_eq!(
        seq.grounding_delta.added_factors,
        par.grounding_delta.added_factors
    );
    assert_eq!(
        seq.grounding_delta.evidence_changes,
        par.grounding_delta.evidence_changes
    );

    // Same tuples get marginals.
    let mut seq_keys: Vec<_> = seq.marginals.keys().cloned().collect();
    let mut par_keys: Vec<_> = par.marginals.keys().cloned().collect();
    seq_keys.sort();
    par_keys.sort();
    assert_eq!(seq_keys, par_keys);

    // With learning held fixed, parallel chains estimate the same posterior
    // as the sequential sweep over the pipeline's actual factor graph.
    let (graph, _) = seq_app.dd.grounder.state.compile();
    let weights = seq_app.dd.grounder.state.graph.weights.values();
    let opts = GibbsOptions {
        burn_in: 80,
        samples: 2_000,
        clamp_evidence: true,
        ..Default::default()
    };
    let seq_marg = parallel_marginals(&graph, &weights, &opts, 1);
    let par_marg = parallel_marginals(&graph, &weights, &opts, 4);
    let mut total_diff = 0.0;
    let mut queries = 0usize;
    for v in 0..graph.num_variables {
        if graph.is_evidence[v] {
            continue;
        }
        let d = (seq_marg.probability(v) - par_marg.probability(v)).abs();
        assert!(
            d < 0.2,
            "var {v}: seq {} vs par {}",
            seq_marg.probability(v),
            par_marg.probability(v)
        );
        total_diff += d;
        queries += 1;
    }
    let mean_diff = total_diff / queries.max(1) as f64;
    assert!(mean_diff < 0.03, "mean marginal divergence {mean_diff}");
}

#[test]
fn spouse_pipeline_is_reproducible_per_thread_count() {
    for threads in [1usize, 4] {
        let (_, a) = spouse_run(threads);
        let (_, b) = spouse_run(threads);
        let mut keys: Vec<_> = a.marginals.keys().cloned().collect();
        keys.sort();
        for key in &keys {
            assert_eq!(
                a.marginals[key].to_bits(),
                b.marginals[key].to_bits(),
                "threads={threads}: {key:?} not reproducible"
            );
        }
    }
}

fn tc_db(n: i64) -> Database {
    let db = Database::new();
    db.create_relation(
        Schema::build("edge")
            .col("a", ValueType::Int)
            .col("b", ValueType::Int)
            .finish(),
    )
    .unwrap();
    db.create_relation(
        Schema::build("path")
            .col("a", ValueType::Int)
            .col("b", ValueType::Int)
            .finish(),
    )
    .unwrap();
    for a in 0..n {
        db.insert("edge", row![a, (a + 1) % n]).unwrap();
        db.insert("edge", row![a, (a + 4) % n]).unwrap();
    }
    db
}

fn tc_program() -> Program {
    Program::new(vec![
        Rule::new(
            "base",
            Atom::new("path", vec![Term::var("a"), Term::var("b")]),
            vec![Literal::pos(Atom::new(
                "edge",
                vec![Term::var("a"), Term::var("b")],
            ))],
        ),
        Rule::new(
            "step",
            Atom::new("path", vec![Term::var("a"), Term::var("c")]),
            vec![
                Literal::pos(Atom::new("path", vec![Term::var("a"), Term::var("b")])),
                Literal::pos(Atom::new("edge", vec![Term::var("b"), Term::var("c")])),
            ],
        ),
    ])
}

type MaintenanceSnapshot = (Vec<(Row, i64)>, Vec<(String, Vec<Row>)>);

#[test]
fn recursive_dred_maintenance_matches_sequential() {
    let run = |threads: usize| -> MaintenanceSnapshot {
        let db = tc_db(14);
        let engine = IncrementalEngine::with_context(
            StratifiedProgram::new(tc_program(), &db).unwrap(),
            Arc::new(ExecutionContext::new(threads)),
        );
        engine.initial_load(&db).unwrap();
        let result = engine
            .apply_update(
                &db,
                vec![
                    BaseChange::delete("edge", row![3i64, 4i64]),
                    BaseChange::delete("edge", row![7i64, 11i64]),
                    BaseChange::insert("edge", row![3i64, 9i64]),
                ],
            )
            .unwrap();
        let mut rows = db.rows_counted("path").unwrap();
        rows.sort();
        let mut disappeared: Vec<(String, Vec<Row>)> = result
            .disappeared
            .into_iter()
            .map(|(rel, mut rs)| {
                rs.sort();
                (rel, rs)
            })
            .collect();
        disappeared.sort();
        (rows, disappeared)
    };
    let sequential = run(1);
    for threads in [2usize, 4, 8] {
        assert_eq!(run(threads), sequential, "threads={threads}");
    }
}

#[test]
fn multi_chain_gibbs_is_seeded_deterministic() {
    use deepdive_factorgraph::{FactorArg, FactorFunction, FactorGraph, Variable};
    let mut g = FactorGraph::new();
    let vs: Vec<_> = (0..8).map(|_| g.add_variable(Variable::query())).collect();
    let w = g.weights.tied("s", 0.9);
    for pair in vs.windows(2) {
        g.add_factor(
            FactorFunction::Imply,
            vec![FactorArg::pos(pair[0]), FactorArg::pos(pair[1])],
            w,
        );
    }
    let c = g.compile();
    let weights = g.weights.values();
    let opts = GibbsOptions {
        burn_in: 25,
        samples: 333,
        seed: 0xC0FFEE,
        ..Default::default()
    };
    for threads in [2usize, 4, 8] {
        let a = parallel_marginals(&c, &weights, &opts, threads);
        let b = parallel_marginals(&c, &weights, &opts, threads);
        assert_eq!(a.true_counts, b.true_counts, "threads={threads}");
        assert_eq!(a.samples, opts.samples as u64);
    }
    // Different seeds genuinely decorrelate the chains.
    let alt = parallel_marginals(
        &c,
        &weights,
        &GibbsOptions {
            seed: 0xBEEF,
            ..opts.clone()
        },
        4,
    );
    let base = parallel_marginals(&c, &weights, &opts, 4);
    assert_ne!(alt.true_counts, base.true_counts);
}
