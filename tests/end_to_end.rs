//! Cross-crate integration tests: the full DeepDive pipeline, end to end,
//! over every domain application.

use deepdive_core::apps::{
    AdsApp, AdsAppConfig, GeneticsApp, GeneticsAppConfig, MaterialsApp, MaterialsAppConfig,
    SpouseApp, SpouseAppConfig,
};
use deepdive_core::{u_shape_score, RunConfig};
use deepdive_corpus::{AdsConfig, GeneticsConfig, MaterialsConfig, SpouseConfig};
use deepdive_sampler::{GibbsOptions, LearnOptions};

fn fast_run() -> RunConfig {
    RunConfig {
        learn: LearnOptions {
            epochs: 60,
            ..Default::default()
        },
        inference: GibbsOptions {
            burn_in: 50,
            samples: 400,
            clamp_evidence: true,
            ..Default::default()
        },
        ..Default::default()
    }
}

#[test]
fn all_four_domains_beat_half_f1() {
    let spouse = {
        let mut app = SpouseApp::build(SpouseAppConfig {
            corpus: SpouseConfig {
                num_docs: 80,
                ..Default::default()
            },
            run: fast_run(),
            ..Default::default()
        })
        .unwrap();
        let r = app.run().unwrap();
        app.evaluate(&r, 0.7).f1()
    };
    let genetics = {
        let mut app = GeneticsApp::build(GeneticsAppConfig {
            corpus: GeneticsConfig {
                num_docs: 80,
                ..Default::default()
            },
            run: fast_run(),
            ..Default::default()
        })
        .unwrap();
        let r = app.run().unwrap();
        app.evaluate(&r, 0.7).f1()
    };
    let ads = {
        let mut app = AdsApp::build(AdsAppConfig {
            corpus: AdsConfig {
                num_ads: 150,
                ..Default::default()
            },
            run: fast_run(),
            ..Default::default()
        })
        .unwrap();
        let r = app.run().unwrap();
        app.evaluate(&r, 0.7).f1()
    };
    let materials = {
        let mut app = MaterialsApp::build(MaterialsAppConfig {
            corpus: MaterialsConfig {
                num_docs: 80,
                ..Default::default()
            },
            run: fast_run(),
            ..Default::default()
        })
        .unwrap();
        let r = app.run().unwrap();
        app.evaluate(&r, 0.7).f1()
    };
    println!(
        "F1 — spouse {spouse:.3}, genetics {genetics:.3}, ads {ads:.3}, materials {materials:.3}"
    );
    for (name, f1) in [
        ("spouse", spouse),
        ("genetics", genetics),
        ("ads", ads),
        ("materials", materials),
    ] {
        assert!(f1 > 0.5, "{name} F1 {f1}");
    }
}

#[test]
fn pipeline_is_deterministic_across_runs() {
    let build = || {
        let mut app = SpouseApp::build(SpouseAppConfig {
            corpus: SpouseConfig {
                num_docs: 50,
                ..Default::default()
            },
            run: fast_run(),
            ..Default::default()
        })
        .unwrap();
        let r = app.run().unwrap();
        let mut preds = app.entity_predictions(&r);
        preds.sort_by(|a, b| a.0.cmp(&b.0));
        preds
    };
    let a = build();
    let b = build();
    assert_eq!(a.len(), b.len());
    for ((ka, pa), (kb, pb)) in a.iter().zip(&b) {
        assert_eq!(ka, kb);
        assert!((pa - pb).abs() < 1e-12, "{ka}: {pa} vs {pb}");
    }
}

#[test]
fn run_result_surfaces_all_artifacts() {
    let mut app = SpouseApp::build(SpouseAppConfig {
        corpus: SpouseConfig {
            num_docs: 60,
            ..Default::default()
        },
        run: fast_run(),
        ..Default::default()
    })
    .unwrap();
    let result = app.run().unwrap();

    // Marginals are probabilities keyed by tuple.
    assert!(!result.marginals.is_empty());
    for p in result.marginals.values() {
        assert!((0.0..=1.0).contains(p));
    }
    // Holdout carries labels + predictions for calibration.
    assert!(!result.holdout.is_empty());
    // Figure-5 artifacts exist and the training histogram leans U-shaped.
    let cal = result.calibration.as_ref().expect("calibration");
    assert_eq!(cal.test_histogram.len(), 10);
    assert!(u_shape_score(&cal.train_histogram) > 0.4);
    // Weight summaries carry tying keys and observation counts (§5.2).
    assert!(result
        .weights
        .iter()
        .any(|w| w.key.starts_with("fe_") && w.references > 0));
    // Phase timings populated.
    assert!(result.timings.total() > std::time::Duration::ZERO);
}

#[test]
fn output_threshold_controls_table_size() {
    let mut app = SpouseApp::build(SpouseAppConfig {
        corpus: SpouseConfig {
            num_docs: 60,
            ..Default::default()
        },
        run: fast_run(),
        ..Default::default()
    })
    .unwrap();
    let result = app.run().unwrap();
    let strict = result.output("MarriedMentions", 0.95).len();
    let lax = result.output("MarriedMentions", 0.1).len();
    assert!(lax >= strict);
    assert!(lax > 0);
}
