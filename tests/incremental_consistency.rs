//! Incremental grounding must be indistinguishable from re-grounding from
//! scratch — across document additions, retractions, and KB changes.

use deepdive_core::apps::{SpouseApp, SpouseAppConfig};
use deepdive_core::RunConfig;
use deepdive_corpus::SpouseConfig;
use deepdive_sampler::{GibbsOptions, LearnOptions};
use deepdive_storage::{row, BaseChange};

fn app_config(num_docs: usize) -> SpouseAppConfig {
    SpouseAppConfig {
        corpus: SpouseConfig {
            num_docs,
            ..Default::default()
        },
        run: RunConfig {
            learn: LearnOptions {
                epochs: 30,
                ..Default::default()
            },
            inference: GibbsOptions {
                burn_in: 30,
                samples: 200,
                clamp_evidence: true,
                ..Default::default()
            },
            compute_calibration: false,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Incremental app (base docs + delta docs via apply_update) must match a
/// fresh app grounded over everything at once.
#[test]
fn incremental_document_addition_matches_fresh_ground() {
    let mut incr = SpouseApp::build(app_config(40)).unwrap();
    incr.dd.grounder.initial_load(&incr.dd.db).unwrap();

    let extra = deepdive_corpus::spouse::generate(&SpouseConfig {
        num_docs: 5,
        seed: 0xD0C5,
        ..Default::default()
    });
    for doc in &extra.documents.clone() {
        let changes = incr.document_changes(&doc.text);
        incr.dd.grounder.apply_update(&incr.dd.db, changes).unwrap();
    }

    // Fresh app over the combined corpus.
    let mut fresh = SpouseApp::build(app_config(40)).unwrap();
    for doc in &extra.documents.clone() {
        for ch in fresh.document_changes(&doc.text) {
            fresh.dd.db.insert(&ch.relation, ch.row).unwrap();
        }
    }
    fresh.dd.grounder.initial_load(&fresh.dd.db).unwrap();

    assert_eq!(
        incr.dd.grounder.state.num_live_variables(),
        fresh.dd.grounder.state.num_live_variables(),
        "variable counts diverge"
    );
    assert_eq!(
        incr.dd.grounder.state.num_live_factors(),
        fresh.dd.grounder.state.num_live_factors(),
        "factor counts diverge"
    );
    // Same database contents for every derived relation.
    for rel in ["MarriedCandidate", "MarriedMentions_Ev"] {
        assert_eq!(
            incr.dd.db.rows(rel).unwrap(),
            fresh.dd.db.rows(rel).unwrap(),
            "{rel}"
        );
    }
}

/// Adding then retracting documents returns the graph to its original shape.
#[test]
fn document_retraction_roundtrips() {
    let mut app = SpouseApp::build(app_config(40)).unwrap();
    app.dd.grounder.initial_load(&app.dd.db).unwrap();
    let vars0 = app.dd.grounder.state.num_live_variables();
    let factors0 = app.dd.grounder.state.num_live_factors();

    let extra = deepdive_corpus::spouse::generate(&SpouseConfig {
        num_docs: 3,
        seed: 0xD0C7,
        ..Default::default()
    });
    let mut all_changes = Vec::new();
    for doc in &extra.documents.clone() {
        all_changes.extend(app.document_changes(&doc.text));
    }
    app.dd
        .grounder
        .apply_update(&app.dd.db, all_changes.clone())
        .unwrap();
    assert!(app.dd.grounder.state.num_live_variables() >= vars0);

    // Retract everything we added.
    let retractions: Vec<BaseChange> = all_changes
        .into_iter()
        .map(|ch| BaseChange::delete(ch.relation, ch.row))
        .collect();
    app.dd
        .grounder
        .apply_update(&app.dd.db, retractions)
        .unwrap();
    assert_eq!(
        app.dd.grounder.state.num_live_variables(),
        vars0,
        "variables leak"
    );
    assert_eq!(
        app.dd.grounder.state.num_live_factors(),
        factors0,
        "factors leak"
    );
}

/// KB facts arriving incrementally flip evidence labels in place and a
/// subsequent run consumes them.
#[test]
fn kb_updates_change_learning_evidence() {
    let mut cfg = app_config(60);
    // Start with an empty KB and no negative rule: no distant labels at all.
    cfg.corpus.kb_fraction = 0.0;
    cfg.negative_supervision = false;
    let mut app = SpouseApp::build(cfg).unwrap();
    let r0 = app.run().unwrap();
    assert_eq!(r0.num_evidence, 0, "empty KB should label nothing");

    // Deliver the full marriage KB incrementally.
    let mut changes = Vec::new();
    for (a, b) in app.corpus.married.clone() {
        changes.push(BaseChange::insert("Married", row![a.as_str(), b.as_str()]));
        changes.push(BaseChange::insert("Married", row![b.as_str(), a.as_str()]));
    }
    let r1 = app.dd.update(changes).unwrap();
    assert!(r1.num_evidence > 0, "KB arrival must create evidence");
    assert!(r1.grounding_delta.evidence_changes > 0);
}
